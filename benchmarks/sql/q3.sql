-- TPC-H Q3-shaped shipping priority (see accordion_tpch::queries::q3).
SELECT l_orderkey, o_orderdate,
       sum(l_extendedprice * (1.0 - l_discount)) AS revenue
FROM lineitem
  INNER JOIN orders ON l_orderkey = o_orderkey
  INNER JOIN customer ON o_custkey = c_custkey
WHERE l_shipdate > DATE '1995-03-15'
  AND o_orderdate < DATE '1995-03-15'
  AND c_mktsegment = 'BUILDING'
GROUP BY l_orderkey, o_orderdate
ORDER BY revenue DESC, l_orderkey
LIMIT 10;
