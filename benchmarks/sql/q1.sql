-- TPC-H Q1-shaped pricing summary (see accordion_tpch::queries::q1).
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1.0 - l_discount)) AS sum_disc_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus;
