-- TPC-H Q6-shaped forecast revenue (see accordion_tpch::queries::q6).
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24.0;
