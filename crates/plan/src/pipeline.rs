//! Pipeline splitting (paper Fig 6).
//!
//! Each task executes its fragment as a set of **pipelines**: maximal runs
//! of operators that stream pages without buffering between them. A
//! fragment is split at its *pipeline breakers*:
//!
//! * every [`PhysicalNode::LocalExchange`] — the producing side becomes its
//!   own pipeline terminated by an [`OperatorSpec::LocalSink`], and the
//!   consuming pipeline starts with an [`OperatorSpec::LocalSource`];
//! * every hash-join build side — it becomes a pipeline terminated by
//!   [`OperatorSpec::HashJoinBuild`], which materializes the hash table the
//!   probe pipeline's [`OperatorSpec::HashJoinProbe`] reads.
//!
//! Pipelines are emitted producers-first, so executing them in order always
//! satisfies intra-task data dependencies. The last pipeline ends with
//! [`OperatorSpec::Output`]: it feeds the task's output buffer.

use accordion_common::{AccordionError, PipelineId, Result, StageId};
use accordion_data::schema::Schema;
use accordion_data::sort::SortKey;
use accordion_expr::agg::AggSpec;
use accordion_expr::scalar::Expr;

use crate::fragment::PlanFragment;
use crate::physical::{Partitioning, PhysicalNode, SourceRole};

/// One operator slot of a pipeline, fully describing what the executor
/// instantiates. Specs carry the output schemas the operators cannot infer
/// from input pages alone (needed e.g. when the input is empty).
#[derive(Debug, Clone)]
pub enum OperatorSpec {
    /// Source: streams the task's assigned splits of a base table.
    TableScan {
        table: String,
        projection: Vec<usize>,
    },
    /// Source: streams pages produced by a child stage.
    ExchangeSource {
        child_stage: StageId,
    },
    /// Source: drains partition pages of an intra-task local exchange.
    LocalSource {
        exchange: usize,
    },
    Filter {
        predicate: Expr,
    },
    Project {
        exprs: Vec<(Expr, String)>,
    },
    PartialAggregate {
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
        output_schema: Schema,
    },
    FinalAggregate {
        group_count: usize,
        aggs: Vec<AggSpec>,
        output_schema: Schema,
    },
    /// Sink: consumes the build side of hash join `join` into a hash table.
    HashJoinBuild {
        join: usize,
        keys: Vec<usize>,
    },
    /// Streams probe rows against the hash table built by `HashJoinBuild`.
    HashJoinProbe {
        join: usize,
        keys: Vec<usize>,
        output_schema: Schema,
    },
    TopN {
        keys: Vec<SortKey>,
        n: usize,
        schema: Schema,
    },
    Sort {
        keys: Vec<SortKey>,
    },
    Limit {
        n: usize,
    },
    /// Sink: pushes pages into local exchange `exchange`.
    LocalSink {
        exchange: usize,
        partitioning: Partitioning,
    },
    /// Sink: pushes pages into the task's output buffer.
    Output,
}

impl OperatorSpec {
    pub fn name(&self) -> &'static str {
        match self {
            OperatorSpec::TableScan { .. } => "TableScan",
            OperatorSpec::ExchangeSource { .. } => "ExchangeSource",
            OperatorSpec::LocalSource { .. } => "LocalSource",
            OperatorSpec::Filter { .. } => "Filter",
            OperatorSpec::Project { .. } => "Project",
            OperatorSpec::PartialAggregate { .. } => "PartialAggregate",
            OperatorSpec::FinalAggregate { .. } => "FinalAggregate",
            OperatorSpec::HashJoinBuild { .. } => "HashJoinBuild",
            OperatorSpec::HashJoinProbe { .. } => "HashJoinProbe",
            OperatorSpec::TopN { .. } => "TopN",
            OperatorSpec::Sort { .. } => "Sort",
            OperatorSpec::Limit { .. } => "Limit",
            OperatorSpec::LocalSink { .. } => "LocalSink",
            OperatorSpec::Output => "Output",
        }
    }

    /// True for the operators that begin a pipeline.
    pub fn is_source(&self) -> bool {
        matches!(
            self,
            OperatorSpec::TableScan { .. }
                | OperatorSpec::ExchangeSource { .. }
                | OperatorSpec::LocalSource { .. }
        )
    }

    /// True for the operators that terminate a pipeline.
    pub fn is_sink(&self) -> bool {
        matches!(
            self,
            OperatorSpec::HashJoinBuild { .. }
                | OperatorSpec::LocalSink { .. }
                | OperatorSpec::Output
        )
    }
}

/// One pipeline of a task: `operators[0]` is a source, the last operator is
/// a sink, everything between streams pages.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    pub id: PipelineId,
    pub operators: Vec<OperatorSpec>,
}

impl PipelineSpec {
    /// Where this pipeline's pages come from.
    pub fn source_role(&self) -> SourceRole {
        match self.operators.first() {
            Some(OperatorSpec::TableScan { .. }) => SourceRole::TableScan,
            Some(OperatorSpec::LocalSource { .. }) => SourceRole::LocalExchange,
            _ => SourceRole::RemoteExchange,
        }
    }

    /// True when this pipeline feeds the task output buffer.
    pub fn is_output(&self) -> bool {
        matches!(self.operators.last(), Some(OperatorSpec::Output))
    }

    /// Operator names in order — convenient for structural assertions.
    pub fn operator_names(&self) -> Vec<&'static str> {
        self.operators.iter().map(|o| o.name()).collect()
    }
}

/// Splits a fragment into its pipelines at local exchanges and hash-join
/// build sides. Producer pipelines precede their consumers; the final
/// pipeline carries [`OperatorSpec::Output`].
pub fn split_pipelines(fragment: &PlanFragment) -> Result<Vec<PipelineSpec>> {
    let mut splitter = Splitter {
        pipelines: Vec::new(),
        exchanges: 0,
        joins: 0,
    };
    let mut ops = splitter.build(&fragment.root)?;
    ops.push(OperatorSpec::Output);
    splitter.pipelines.push(ops);
    Ok(splitter
        .pipelines
        .into_iter()
        .enumerate()
        .map(|(i, operators)| PipelineSpec {
            id: PipelineId(i as u32),
            operators,
        })
        .collect())
}

struct Splitter {
    /// Completed producer pipelines, in execution order.
    pipelines: Vec<Vec<OperatorSpec>>,
    exchanges: usize,
    joins: usize,
}

impl Splitter {
    /// Returns the operator prefix of the pipeline `node` belongs to,
    /// pushing any producer pipelines it depends on.
    fn build(&mut self, node: &PhysicalNode) -> Result<Vec<OperatorSpec>> {
        match node {
            PhysicalNode::TableScan {
                table, projection, ..
            } => Ok(vec![OperatorSpec::TableScan {
                table: table.clone(),
                projection: projection.clone(),
            }]),
            PhysicalNode::RemoteSource { child_stage, .. } => {
                Ok(vec![OperatorSpec::ExchangeSource {
                    child_stage: *child_stage,
                }])
            }
            PhysicalNode::LocalExchange {
                input,
                partitioning,
            } => {
                let exchange = self.exchanges;
                self.exchanges += 1;
                let mut producer = self.build(input)?;
                producer.push(OperatorSpec::LocalSink {
                    exchange,
                    partitioning: partitioning.clone(),
                });
                self.pipelines.push(producer);
                Ok(vec![OperatorSpec::LocalSource { exchange }])
            }
            PhysicalNode::HashJoin {
                probe, build, on, ..
            } => {
                let join = self.joins;
                self.joins += 1;
                let mut build_ops = self.build(build)?;
                build_ops.push(OperatorSpec::HashJoinBuild {
                    join,
                    keys: on.iter().map(|&(_, b)| b).collect(),
                });
                self.pipelines.push(build_ops);
                let mut probe_ops = self.build(probe)?;
                probe_ops.push(OperatorSpec::HashJoinProbe {
                    join,
                    keys: on.iter().map(|&(p, _)| p).collect(),
                    output_schema: node.schema(),
                });
                Ok(probe_ops)
            }
            PhysicalNode::Filter { input, predicate } => {
                let mut ops = self.build(input)?;
                ops.push(OperatorSpec::Filter {
                    predicate: predicate.clone(),
                });
                Ok(ops)
            }
            PhysicalNode::Project { input, exprs } => {
                let mut ops = self.build(input)?;
                ops.push(OperatorSpec::Project {
                    exprs: exprs.clone(),
                });
                Ok(ops)
            }
            PhysicalNode::PartialAggregate {
                input,
                group_by,
                aggs,
            } => {
                let output_schema = node.schema();
                let mut ops = self.build(input)?;
                ops.push(OperatorSpec::PartialAggregate {
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                    output_schema,
                });
                Ok(ops)
            }
            PhysicalNode::FinalAggregate {
                input,
                group_count,
                aggs,
            } => {
                let output_schema = node.schema();
                let mut ops = self.build(input)?;
                ops.push(OperatorSpec::FinalAggregate {
                    group_count: *group_count,
                    aggs: aggs.clone(),
                    output_schema,
                });
                Ok(ops)
            }
            PhysicalNode::Sort { input, keys } => {
                let mut ops = self.build(input)?;
                ops.push(OperatorSpec::Sort { keys: keys.clone() });
                Ok(ops)
            }
            PhysicalNode::TopN { input, keys, n } => {
                let schema = node.schema();
                let mut ops = self.build(input)?;
                ops.push(OperatorSpec::TopN {
                    keys: keys.clone(),
                    n: *n,
                    schema,
                });
                Ok(ops)
            }
            PhysicalNode::Limit { input, n } => {
                let mut ops = self.build(input)?;
                ops.push(OperatorSpec::Limit { n: *n });
                Ok(ops)
            }
            PhysicalNode::Exchange { .. } => Err(AccordionError::Plan(
                "fragment contains an uncut Exchange — run StageTree::build first".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{StageKind, StageTree};
    use crate::logical::JoinType;
    use accordion_data::schema::{Field, Schema};
    use accordion_data::types::DataType;
    use std::sync::Arc;

    fn scan(name: &str) -> Arc<PhysicalNode> {
        Arc::new(PhysicalNode::TableScan {
            table: name.into(),
            table_schema: Schema::shared(vec![Field::new("a", DataType::Int64)]),
            projection: vec![0],
        })
    }

    fn fragment_of(root: Arc<PhysicalNode>) -> PlanFragment {
        PlanFragment {
            stage: accordion_common::StageId(0),
            root,
            parallelism: 1,
            kind: StageKind::Output,
            child_stages: vec![],
            output_partitioning: Partitioning::Single,
            elastic_bounds: None,
        }
    }

    #[test]
    fn streaming_fragment_is_one_pipeline() {
        let root = Arc::new(PhysicalNode::Filter {
            input: scan("t"),
            predicate: Expr::gt(Expr::col(0), Expr::lit_i64(0)),
        });
        let pipelines = split_pipelines(&fragment_of(root)).unwrap();
        assert_eq!(pipelines.len(), 1);
        assert_eq!(
            pipelines[0].operator_names(),
            vec!["TableScan", "Filter", "Output"]
        );
        assert_eq!(pipelines[0].source_role(), SourceRole::TableScan);
        assert!(pipelines[0].is_output());
    }

    #[test]
    fn local_exchange_breaks_pipeline() {
        let root = Arc::new(PhysicalNode::Sort {
            input: Arc::new(PhysicalNode::LocalExchange {
                input: scan("t"),
                partitioning: Partitioning::Single,
            }),
            keys: vec![SortKey::asc(0)],
        });
        let pipelines = split_pipelines(&fragment_of(root)).unwrap();
        assert_eq!(pipelines.len(), 2);
        assert_eq!(
            pipelines[0].operator_names(),
            vec!["TableScan", "LocalSink"]
        );
        assert_eq!(
            pipelines[1].operator_names(),
            vec!["LocalSource", "Sort", "Output"]
        );
        assert_eq!(pipelines[1].source_role(), SourceRole::LocalExchange);
        assert!(!pipelines[0].is_output());
    }

    #[test]
    fn join_build_side_is_its_own_pipeline() {
        let root = Arc::new(PhysicalNode::HashJoin {
            probe: scan("probe"),
            build: scan("build"),
            on: vec![(0, 0)],
            join_type: JoinType::Inner,
        });
        let pipelines = split_pipelines(&fragment_of(root)).unwrap();
        assert_eq!(pipelines.len(), 2);
        assert_eq!(
            pipelines[0].operator_names(),
            vec!["TableScan", "HashJoinBuild"]
        );
        assert_eq!(
            pipelines[1].operator_names(),
            vec!["TableScan", "HashJoinProbe", "Output"]
        );
    }

    #[test]
    fn uncut_exchange_is_rejected() {
        let root = Arc::new(PhysicalNode::Exchange {
            input: scan("t"),
            partitioning: Partitioning::Single,
            input_parallelism: 2,
        });
        assert!(split_pipelines(&fragment_of(root)).is_err());
    }

    #[test]
    fn agg_stage_splits_like_fig6() {
        // Build the final-agg fragment the optimizer produces, via the real
        // fragmenter, and check it splits into the two pipelines of Fig 6.
        use accordion_expr::agg::{AggKind, AggSpec};
        let partial = Arc::new(PhysicalNode::PartialAggregate {
            input: scan("t"),
            group_by: vec![0],
            aggs: vec![AggSpec::new(
                AggKind::Count,
                Expr::col(0),
                DataType::Int64,
                "c",
            )],
        });
        let root = Arc::new(PhysicalNode::FinalAggregate {
            input: Arc::new(PhysicalNode::LocalExchange {
                input: Arc::new(PhysicalNode::Exchange {
                    input: partial,
                    partitioning: Partitioning::Single,
                    input_parallelism: 2,
                }),
                partitioning: Partitioning::Single,
            }),
            group_count: 1,
            aggs: vec![AggSpec::new(
                AggKind::Count,
                Expr::col(0),
                DataType::Int64,
                "c",
            )],
        });
        let tree = StageTree::build(root).unwrap();
        let pipelines = split_pipelines(tree.root()).unwrap();
        assert_eq!(pipelines.len(), 2);
        assert_eq!(
            pipelines[0].operator_names(),
            vec!["ExchangeSource", "LocalSink"]
        );
        assert_eq!(
            pipelines[1].operator_names(),
            vec!["LocalSource", "FinalAggregate", "Output"]
        );
        assert_eq!(pipelines[0].source_role(), SourceRole::RemoteExchange);
    }
}
