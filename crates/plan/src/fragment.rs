//! Stage fragmentation (paper Fig 4).
//!
//! The physical plan is cut at every [`PhysicalNode::Exchange`] into a tree
//! of [`PlanFragment`]s: each fragment is the unit of distributed scheduling
//! (a *stage*), runs `parallelism` tasks, and streams its output — shaped by
//! `output_partitioning` — into the parent stage's tasks. Inside each
//! fragment the cut point is replaced by a [`PhysicalNode::RemoteSource`]
//! leaf naming the child stage.
//!
//! Stage numbering follows the paper's Figure 4: the root/output stage is
//! stage 0, child stages are numbered in depth-first discovery order.

use std::fmt;
use std::sync::Arc;

use accordion_common::{AccordionError, Result, StageId};
use accordion_data::schema::Schema;

use crate::physical::{Partitioning, PhysicalNode};

/// Role of a stage in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// The root stage: produces the query result at parallelism 1.
    Output,
    /// A leaf-side stage containing at least one table scan; the elastic
    /// stages whose DOP the paper tunes at runtime.
    Source,
    /// An interior stage fed only by remote exchanges.
    Intermediate,
}

/// Runtime DOP bounds of an elastic Source stage: the range the elasticity
/// controller may retune the stage's task count within (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DopBounds {
    pub min: u32,
    pub max: u32,
}

impl DopBounds {
    pub fn new(min: u32, max: u32) -> Self {
        let min = min.max(1);
        DopBounds {
            min,
            max: max.max(min),
        }
    }

    /// Clamps a candidate DOP into the bounds.
    pub fn clamp(&self, dop: u32) -> u32 {
        dop.clamp(self.min, self.max)
    }
}

/// Largest default runtime DOP for elastic stages whose planned parallelism
/// is smaller (the controller may still be handed wider bounds explicitly
/// via [`StageTree::set_elastic_bounds`]).
pub const DEFAULT_MAX_ELASTIC_DOP: u32 = 8;

/// One stage: a connected piece of the physical plan between exchanges.
#[derive(Debug, Clone)]
pub struct PlanFragment {
    pub stage: StageId,
    /// Fragment-local plan; `Exchange` cut points appear as `RemoteSource`.
    pub root: Arc<PhysicalNode>,
    /// Number of tasks this stage runs (fixed at planning time for now).
    pub parallelism: u32,
    pub kind: StageKind,
    /// Stages feeding this one, in the order their `RemoteSource` leaves
    /// appear in `root`.
    pub child_stages: Vec<StageId>,
    /// How this stage's tasks partition their output for the parent stage
    /// (`Single` for the root: the coordinator reads one result stream).
    pub output_partitioning: Partitioning,
    /// Runtime DOP bounds when this stage is eligible for intra-query
    /// re-parallelization: a Source stage scanning exactly one table with no
    /// child exchanges (so a task set can grow or shrink between splits
    /// without replaying remote inputs). `None` pins the planned DOP.
    pub elastic_bounds: Option<DopBounds>,
}

impl PlanFragment {
    /// Output schema of the fragment.
    pub fn schema(&self) -> Schema {
        self.root.schema()
    }

    pub fn is_output(&self) -> bool {
        self.kind == StageKind::Output
    }
}

/// The fragmented plan: stage 0 is the output stage.
#[derive(Debug, Clone)]
pub struct StageTree {
    fragments: Vec<PlanFragment>,
}

impl StageTree {
    /// Cuts `root` at its exchanges. The root fragment always runs at
    /// parallelism 1 (the optimizer gathers distributed plans first).
    pub fn build(root: Arc<PhysicalNode>) -> Result<StageTree> {
        let mut cutter = Cutter {
            next_id: 1,
            fragments: Vec::new(),
        };
        cutter.cut_fragment(StageId(0), &root, 1, Partitioning::Single)?;
        cutter.fragments.sort_by_key(|f| f.stage);
        // Ids are dense by construction; double-check before handing the
        // tree to the executor, which indexes stage outputs by id.
        for (i, f) in cutter.fragments.iter().enumerate() {
            if f.stage.0 as usize != i {
                return Err(AccordionError::Internal(format!(
                    "non-dense stage numbering: slot {i} holds {}",
                    f.stage
                )));
            }
        }
        Ok(StageTree {
            fragments: cutter.fragments,
        })
    }

    /// The output fragment (stage 0).
    pub fn root(&self) -> &PlanFragment {
        &self.fragments[0]
    }

    pub fn fragment(&self, stage: StageId) -> Result<&PlanFragment> {
        self.fragments
            .get(stage.0 as usize)
            .ok_or_else(|| AccordionError::Plan(format!("unknown stage {stage}")))
    }

    pub fn fragments(&self) -> &[PlanFragment] {
        &self.fragments
    }

    /// Overrides the runtime DOP bounds of an elastic stage (e.g. to widen
    /// or pin the range the elasticity controller may use). Errors when the
    /// stage is unknown or not elastic-eligible.
    pub fn set_elastic_bounds(&mut self, stage: StageId, bounds: DopBounds) -> Result<()> {
        let f = self
            .fragments
            .get_mut(stage.0 as usize)
            .ok_or_else(|| AccordionError::Plan(format!("unknown stage {stage}")))?;
        if f.elastic_bounds.is_none() {
            return Err(AccordionError::Plan(format!(
                "stage {stage} is not elastic-eligible"
            )));
        }
        f.elastic_bounds = Some(bounds);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Stages in a valid execution order: every stage appears after all of
    /// its children. (A parent's id is always smaller than its children's —
    /// ids are allocated while cutting the parent — so descending id order
    /// is such an order.)
    pub fn execution_order(&self) -> Vec<StageId> {
        let mut ids: Vec<StageId> = self.fragments.iter().map(|f| f.stage).collect();
        ids.sort_by(|a, b| b.cmp(a));
        ids
    }

    /// Multi-fragment EXPLAIN rendering.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for f in &self.fragments {
            let elastic = match f.elastic_bounds {
                Some(b) => format!(" elastic[{}..={}]", b.min, b.max),
                None => String::new(),
            };
            out.push_str(&format!(
                "Stage {} [{:?}] x{}{} → {}\n",
                f.stage.0, f.kind, f.parallelism, elastic, f.output_partitioning
            ));
            for line in f.root.display().lines() {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out
    }
}

impl fmt::Display for StageTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

struct Cutter {
    next_id: u32,
    fragments: Vec<PlanFragment>,
}

impl Cutter {
    fn cut_fragment(
        &mut self,
        stage: StageId,
        root: &Arc<PhysicalNode>,
        parallelism: u32,
        output_partitioning: Partitioning,
    ) -> Result<()> {
        let mut child_stages = Vec::new();
        let stripped = self.strip(root, &mut child_stages)?;
        let kind = if stage.0 == 0 {
            StageKind::Output
        } else if stripped.contains_scan() {
            StageKind::Source
        } else {
            StageKind::Intermediate
        };
        // A stage is runtime-elastic when growing/shrinking its task set
        // between splits cannot lose or duplicate work: it scans exactly one
        // table (so the unconsumed SplitSet remainder is a single queue) and
        // has no child exchanges (whose buffers a late-spawned task could
        // not replay).
        let parallelism = parallelism.max(1);
        let elastic_bounds =
            (kind == StageKind::Source && child_stages.is_empty() && stripped.scan_count() == 1)
                .then(|| DopBounds::new(1, parallelism.max(DEFAULT_MAX_ELASTIC_DOP)));
        self.fragments.push(PlanFragment {
            stage,
            root: stripped,
            parallelism,
            kind,
            child_stages,
            output_partitioning,
            elastic_bounds,
        });
        Ok(())
    }

    /// Rebuilds `node` with every `Exchange` replaced by a `RemoteSource`,
    /// recursively fragmenting the subtree below each cut.
    fn strip(
        &mut self,
        node: &Arc<PhysicalNode>,
        child_stages: &mut Vec<StageId>,
    ) -> Result<Arc<PhysicalNode>> {
        match node.as_ref() {
            PhysicalNode::Exchange {
                input,
                partitioning,
                input_parallelism,
            } => {
                let child_stage = StageId(self.next_id);
                self.next_id += 1;
                child_stages.push(child_stage);
                let schema = input.schema();
                self.cut_fragment(child_stage, input, *input_parallelism, partitioning.clone())?;
                Ok(Arc::new(PhysicalNode::RemoteSource {
                    child_stage,
                    schema,
                }))
            }
            PhysicalNode::RemoteSource { .. } => Err(AccordionError::Plan(
                "plan already fragmented: unexpected RemoteSource".into(),
            )),
            PhysicalNode::TableScan { .. } => Ok(node.clone()),
            PhysicalNode::Filter { input, predicate } => Ok(Arc::new(PhysicalNode::Filter {
                input: self.strip(input, child_stages)?,
                predicate: predicate.clone(),
            })),
            PhysicalNode::Project { input, exprs } => Ok(Arc::new(PhysicalNode::Project {
                input: self.strip(input, child_stages)?,
                exprs: exprs.clone(),
            })),
            PhysicalNode::PartialAggregate {
                input,
                group_by,
                aggs,
            } => Ok(Arc::new(PhysicalNode::PartialAggregate {
                input: self.strip(input, child_stages)?,
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            })),
            PhysicalNode::FinalAggregate {
                input,
                group_count,
                aggs,
            } => Ok(Arc::new(PhysicalNode::FinalAggregate {
                input: self.strip(input, child_stages)?,
                group_count: *group_count,
                aggs: aggs.clone(),
            })),
            PhysicalNode::HashJoin {
                probe,
                build,
                on,
                join_type,
            } => Ok(Arc::new(PhysicalNode::HashJoin {
                probe: self.strip(probe, child_stages)?,
                build: self.strip(build, child_stages)?,
                on: on.clone(),
                join_type: *join_type,
            })),
            PhysicalNode::LocalExchange {
                input,
                partitioning,
            } => Ok(Arc::new(PhysicalNode::LocalExchange {
                input: self.strip(input, child_stages)?,
                partitioning: partitioning.clone(),
            })),
            PhysicalNode::Sort { input, keys } => Ok(Arc::new(PhysicalNode::Sort {
                input: self.strip(input, child_stages)?,
                keys: keys.clone(),
            })),
            PhysicalNode::TopN { input, keys, n } => Ok(Arc::new(PhysicalNode::TopN {
                input: self.strip(input, child_stages)?,
                keys: keys.clone(),
                n: *n,
            })),
            PhysicalNode::Limit { input, n } => Ok(Arc::new(PhysicalNode::Limit {
                input: self.strip(input, child_stages)?,
                n: *n,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::schema::{Field, Schema};
    use accordion_data::types::DataType;

    fn scan() -> Arc<PhysicalNode> {
        Arc::new(PhysicalNode::TableScan {
            table: "t".into(),
            table_schema: Schema::shared(vec![Field::new("a", DataType::Int64)]),
            projection: vec![0],
        })
    }

    #[test]
    fn unfragmented_plan_is_one_output_stage() {
        let tree = StageTree::build(scan()).unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.root().kind, StageKind::Output);
        assert!(tree.root().child_stages.is_empty());
        assert_eq!(tree.execution_order(), vec![StageId(0)]);
    }

    #[test]
    fn exchange_cuts_into_two_stages() {
        let plan = Arc::new(PhysicalNode::Exchange {
            input: scan(),
            partitioning: Partitioning::Single,
            input_parallelism: 3,
        });
        let tree = StageTree::build(plan).unwrap();
        assert_eq!(tree.len(), 2);
        let root = tree.root();
        assert_eq!(root.parallelism, 1);
        assert_eq!(root.child_stages, vec![StageId(1)]);
        assert!(matches!(
            root.root.as_ref(),
            PhysicalNode::RemoteSource { child_stage, .. } if *child_stage == StageId(1)
        ));
        let child = tree.fragment(StageId(1)).unwrap();
        assert_eq!(child.kind, StageKind::Source);
        assert_eq!(child.parallelism, 3);
        assert_eq!(child.output_partitioning, Partitioning::Single);
        // Children execute before parents.
        assert_eq!(tree.execution_order(), vec![StageId(1), StageId(0)]);
    }

    #[test]
    fn nested_exchanges_number_depth_first() {
        // Exchange(Exchange(scan)) → stages 0,1,2 with 2 the innermost.
        let plan = Arc::new(PhysicalNode::Exchange {
            input: Arc::new(PhysicalNode::Exchange {
                input: scan(),
                partitioning: Partitioning::Single,
                input_parallelism: 4,
            }),
            partitioning: Partitioning::Single,
            input_parallelism: 1,
        });
        let tree = StageTree::build(plan).unwrap();
        assert_eq!(tree.len(), 3);
        assert_eq!(
            tree.fragment(StageId(1)).unwrap().kind,
            StageKind::Intermediate
        );
        assert_eq!(tree.fragment(StageId(2)).unwrap().kind, StageKind::Source);
        assert_eq!(tree.fragment(StageId(2)).unwrap().parallelism, 4);
        assert_eq!(
            tree.execution_order(),
            vec![StageId(2), StageId(1), StageId(0)]
        );
    }

    #[test]
    fn refragmenting_errors() {
        let plan = Arc::new(PhysicalNode::RemoteSource {
            child_stage: StageId(1),
            schema: Schema::empty(),
        });
        assert!(StageTree::build(plan).is_err());
    }
}
