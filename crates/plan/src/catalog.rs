//! Name-to-schema resolution for plan construction.
//!
//! The planner (and above it the SQL analyzer) only needs to turn a table
//! *name* into a canonical name plus a [`Schema`] — it never touches rows or
//! splits. The [`Catalog`] trait captures exactly that, so plans can be
//! built against any metadata source: the storage layer's registry of real
//! tables (`accordion_storage::catalog::Catalog` implements this trait), a
//! schema-only catalog like `accordion_tpch`'s table definitions, or an
//! in-memory [`MemoryCatalog`] in tests.
//!
//! [`Schema`]: accordion_data::schema::Schema

use std::collections::BTreeMap;

use accordion_common::{AccordionError, Result};
use accordion_data::schema::SchemaRef;

/// Resolved reference to a table: the canonical (registered) name and the
/// table's schema.
#[derive(Debug, Clone)]
pub struct TableRef {
    pub name: String,
    pub schema: SchemaRef,
}

/// Table name → schema resolution. Lookups are case-insensitive, matching
/// common SQL engines.
pub trait Catalog {
    /// Resolves a table by name, returning its canonical name and schema.
    fn table(&self, name: &str) -> Result<TableRef>;

    /// Names of all resolvable tables, sorted — used by diagnostics
    /// ("unknown table" suggestions) and by `SHOW TABLES`.
    fn table_names(&self) -> Vec<String>;
}

/// The error every [`Catalog`] implementation should raise for an unknown
/// table, so diagnostics stay uniform across metadata sources.
pub fn unknown_table(name: &str) -> AccordionError {
    AccordionError::Analysis(format!("table '{name}' does not exist"))
}

/// The storage layer's table registry resolves through its metadata.
impl Catalog for accordion_storage::catalog::Catalog {
    fn table(&self, name: &str) -> Result<TableRef> {
        let meta = self.get(name)?;
        Ok(TableRef {
            name: meta.name.clone(),
            schema: meta.schema.clone(),
        })
    }

    fn table_names(&self) -> Vec<String> {
        accordion_storage::catalog::Catalog::table_names(self)
    }
}

/// Schema-only in-memory catalog: enough to parse, analyze and plan queries
/// without any table data behind them.
#[derive(Debug, Clone, Default)]
pub struct MemoryCatalog {
    tables: BTreeMap<String, TableRef>,
}

impl MemoryCatalog {
    pub fn new() -> Self {
        MemoryCatalog::default()
    }

    /// Registers (or replaces) a table schema under a case-insensitive name.
    pub fn register(&mut self, name: impl Into<String>, schema: SchemaRef) {
        let name = name.into();
        self.tables
            .insert(name.to_ascii_lowercase(), TableRef { name, schema });
    }
}

impl Catalog for MemoryCatalog {
    fn table(&self, name: &str) -> Result<TableRef> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| unknown_table(name))
    }

    fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::schema::{Field, Schema};
    use accordion_data::types::DataType;

    #[test]
    fn memory_catalog_resolves_case_insensitively() {
        let mut c = MemoryCatalog::new();
        c.register(
            "Lineitem",
            Schema::shared(vec![Field::new("l_orderkey", DataType::Int64)]),
        );
        let t = c.table("LINEITEM").unwrap();
        assert_eq!(t.name, "Lineitem");
        assert_eq!(t.schema.len(), 1);
        assert!(c.table("orders").is_err());
        assert_eq!(c.table_names(), vec!["lineitem"]);
    }

    #[test]
    fn storage_catalog_implements_the_trait() {
        use accordion_storage::catalog::{Catalog as StorageCatalog, TableMeta};
        let sc = StorageCatalog::new();
        sc.register(TableMeta {
            name: "t".into(),
            schema: Schema::shared(vec![Field::new("x", DataType::Int64)]),
            splits: Default::default(),
        });
        let dyn_catalog: &dyn Catalog = &sc;
        assert_eq!(dyn_catalog.table("T").unwrap().name, "t");
        assert_eq!(dyn_catalog.table_names(), vec!["t"]);
    }
}
