//! Query planning for the Accordion IQRE engine.
//!
//! The crate follows the paper's Presto-derived pipeline (§2):
//!
//! 1. A [`logical::LogicalPlan`] is built (by the SQL front-end or the
//!    [`builder::LogicalPlanBuilder`] API).
//! 2. The [`optimizer`] applies rewrite rules (predicate pushdown, two-stage
//!    aggregation, broadcast-vs-partitioned join selection, optional elastic
//!    shuffle-stage insertion §4.6) and lowers to a [`physical::PhysicalNode`]
//!    tree containing explicit **Exchange** and **LocalExchange** nodes.
//! 3. The [`fragment`] module cuts the physical plan at Exchange nodes into a
//!    stage tree ([`fragment::StageTree`], paper Fig 4) of plan fragments.
//! 4. The [`pipeline`] module rewrites each fragment into pipelines (paper
//!    Fig 6) by splitting at the pipeline breakers — local exchanges and the
//!    hash-join build side.
//!
//! The output of this crate is *descriptive*: operator **specs** that the
//! `accordion-exec` crate instantiates into running operators/drivers.

pub mod builder;
pub mod catalog;
pub mod fragment;
pub mod logical;
pub mod optimizer;
pub mod physical;
pub mod pipeline;

pub use builder::LogicalPlanBuilder;
pub use catalog::{Catalog, MemoryCatalog, TableRef};
pub use fragment::{PlanFragment, StageKind, StageTree};
pub use logical::{JoinType, LogicalPlan};
pub use optimizer::{Optimizer, OptimizerConfig};
pub use physical::{Partitioning, PhysicalNode, SourceRole};
pub use pipeline::{split_pipelines, OperatorSpec, PipelineSpec};
