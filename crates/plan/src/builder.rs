//! Fluent logical plan builder with name-based column resolution.
//!
//! Used directly by the TPC-H query definitions and by the SQL analyzer.
//! Column references can be given by name (`col("l_orderkey")`); the builder
//! resolves them against the current output schema.

use std::sync::Arc;

use accordion_common::{AccordionError, Result};
use accordion_data::schema::Schema;
use accordion_data::sort::SortKey;
use accordion_data::types::DataType;
use accordion_expr::agg::{AggKind, AggSpec};
use accordion_expr::scalar::Expr;

use crate::catalog::Catalog;
use crate::logical::{JoinType, LogicalPlan};

/// Fluent builder over [`LogicalPlan`].
#[derive(Debug, Clone)]
pub struct LogicalPlanBuilder {
    plan: Arc<LogicalPlan>,
}

impl LogicalPlanBuilder {
    /// Starts from a full table scan. Any [`Catalog`] implementation works:
    /// the storage registry, a schema-only catalog, or a test fixture.
    pub fn scan(catalog: &dyn Catalog, table: &str) -> Result<Self> {
        let t = catalog.table(table)?;
        let projection: Vec<usize> = (0..t.schema.len()).collect();
        Ok(LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::TableScan {
                table: t.name,
                table_schema: t.schema,
                projection,
            }),
        })
    }

    /// Starts from an existing plan.
    pub fn from_plan(plan: Arc<LogicalPlan>) -> Self {
        LogicalPlanBuilder { plan }
    }

    /// Current output schema.
    pub fn schema(&self) -> Schema {
        self.plan.schema()
    }

    /// Resolves a column name to its index in the current schema.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.schema()
            .index_of(name)
            .ok_or_else(|| AccordionError::Analysis(format!("unknown column '{name}'")))
    }

    /// A column-reference expression by name.
    pub fn col(&self, name: &str) -> Result<Expr> {
        Ok(Expr::Column(self.column_index(name)?))
    }

    /// Data type of a named column.
    pub fn col_type(&self, name: &str) -> Result<DataType> {
        Ok(self.schema().field(self.column_index(name)?).data_type)
    }

    /// Adds a filter node.
    pub fn filter(self, predicate: Expr) -> Result<Self> {
        let plan = Arc::new(LogicalPlan::Filter {
            input: self.plan,
            predicate,
        });
        plan.validate()?;
        Ok(LogicalPlanBuilder { plan })
    }

    /// Adds a projection node computing `exprs`.
    pub fn project(self, exprs: Vec<(Expr, &str)>) -> Result<Self> {
        let plan = Arc::new(LogicalPlan::Project {
            input: self.plan,
            exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
        });
        plan.validate()?;
        Ok(LogicalPlanBuilder { plan })
    }

    /// Keeps only the named columns (in the given order).
    pub fn select(self, names: &[&str]) -> Result<Self> {
        let exprs: Vec<(Expr, &str)> = names
            .iter()
            .map(|n| Ok((self.col(n)?, *n)))
            .collect::<Result<_>>()?;
        self.project(exprs)
    }

    /// Inner equi-join on named key pairs `(left_name, right_name)`.
    pub fn join(self, right: LogicalPlanBuilder, keys: &[(&str, &str)]) -> Result<Self> {
        let on: Vec<(usize, usize)> = keys
            .iter()
            .map(|(l, r)| Ok((self.column_index(l)?, right.column_index(r)?)))
            .collect::<Result<_>>()?;
        let plan = Arc::new(LogicalPlan::Join {
            left: self.plan,
            right: right.plan,
            on,
            join_type: JoinType::Inner,
        });
        plan.validate()?;
        Ok(LogicalPlanBuilder { plan })
    }

    /// Cross join.
    pub fn cross_join(self, right: LogicalPlanBuilder) -> Result<Self> {
        let plan = Arc::new(LogicalPlan::Join {
            left: self.plan,
            right: right.plan,
            on: vec![],
            join_type: JoinType::Cross,
        });
        plan.validate()?;
        Ok(LogicalPlanBuilder { plan })
    }

    /// Group-by aggregation with named group columns.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggSpec>) -> Result<Self> {
        let group: Vec<usize> = group_by
            .iter()
            .map(|n| self.column_index(n))
            .collect::<Result<_>>()?;
        let plan = Arc::new(LogicalPlan::Aggregate {
            input: self.plan,
            group_by: group,
            aggs,
        });
        plan.validate()?;
        Ok(LogicalPlanBuilder { plan })
    }

    /// Convenience: builds an [`AggSpec`] for `kind(column_name)`.
    pub fn agg(&self, kind: AggKind, column: &str, out_name: &str) -> Result<AggSpec> {
        Ok(AggSpec::new(
            kind,
            self.col(column)?,
            self.col_type(column)?,
            out_name,
        ))
    }

    /// Convenience: `kind(expr)` with an explicit input type.
    pub fn agg_expr(
        &self,
        kind: AggKind,
        expr: Expr,
        input_type: DataType,
        out_name: &str,
    ) -> AggSpec {
        AggSpec::new(kind, expr, input_type, out_name)
    }

    /// ORDER BY (named columns) + LIMIT.
    pub fn top_n(self, keys: &[(&str, bool)], n: usize) -> Result<Self> {
        let sort_keys: Vec<SortKey> = keys
            .iter()
            .map(|(name, desc)| {
                Ok(SortKey {
                    column: self.column_index(name)?,
                    descending: *desc,
                })
            })
            .collect::<Result<_>>()?;
        let plan = Arc::new(LogicalPlan::TopN {
            input: self.plan,
            keys: sort_keys,
            n,
        });
        plan.validate()?;
        Ok(LogicalPlanBuilder { plan })
    }

    /// LIMIT without ordering.
    pub fn limit(self, n: usize) -> Result<Self> {
        Ok(LogicalPlanBuilder {
            plan: Arc::new(LogicalPlan::Limit {
                input: self.plan,
                n,
            }),
        })
    }

    /// Finalizes the plan.
    pub fn build(self) -> Arc<LogicalPlan> {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::page::DataPage;
    use accordion_data::schema::Field;
    use accordion_data::types::Value;
    use accordion_storage::catalog::Catalog as StorageCatalog;
    use accordion_storage::table::{PartitioningScheme, TableBuilder};

    fn catalog() -> StorageCatalog {
        let c = StorageCatalog::new();
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
        ]);
        let mut b = TableBuilder::new("items", schema, 8);
        for i in 0..10 {
            b.push_row(vec![
                Value::Int64(i),
                Value::Utf8(format!("item{i}")),
                Value::Float64(i as f64),
            ]);
        }
        b.register(&c, PartitioningScheme::new(1, 1), 0);

        let schema = Schema::shared(vec![
            Field::new("item_id", DataType::Int64),
            Field::new("qty", DataType::Int64),
        ]);
        let mut b = TableBuilder::new("sales", schema, 8);
        for i in 0..10 {
            b.push_row(vec![Value::Int64(i % 5), Value::Int64(i)]);
        }
        b.register(&c, PartitioningScheme::new(1, 1), 0);
        c
    }

    #[test]
    fn scan_select_filter() {
        let c = catalog();
        let b = LogicalPlanBuilder::scan(&c, "items").unwrap();
        let pred = Expr::gt(b.col("price").unwrap(), Expr::lit_f64(3.0));
        let plan = b
            .filter(pred)
            .unwrap()
            .select(&["name", "price"])
            .unwrap()
            .build();
        let s = plan.schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(0).name, "name");
        plan.validate().unwrap();
    }

    #[test]
    fn join_by_names() {
        let c = catalog();
        let items = LogicalPlanBuilder::scan(&c, "items").unwrap();
        let sales = LogicalPlanBuilder::scan(&c, "sales").unwrap();
        let joined = items.join(sales, &[("id", "item_id")]).unwrap();
        assert_eq!(joined.schema().len(), 5);
        assert_eq!(joined.column_index("qty").unwrap(), 4);
    }

    #[test]
    fn aggregate_with_helper() {
        let c = catalog();
        let b = LogicalPlanBuilder::scan(&c, "sales").unwrap();
        let sum = b.agg(AggKind::Sum, "qty", "total_qty").unwrap();
        let plan = b.aggregate(&["item_id"], vec![sum]).unwrap();
        let s = plan.schema();
        assert_eq!(s.field(0).name, "item_id");
        assert_eq!(s.field(1).name, "total_qty");
        assert_eq!(s.field(1).data_type, DataType::Int64);
    }

    #[test]
    fn top_n_by_name() {
        let c = catalog();
        let plan = LogicalPlanBuilder::scan(&c, "items")
            .unwrap()
            .top_n(&[("price", true)], 3)
            .unwrap()
            .build();
        match plan.as_ref() {
            LogicalPlan::TopN { keys, n, .. } => {
                assert_eq!(*n, 3);
                assert_eq!(keys[0].column, 2);
                assert!(keys[0].descending);
            }
            _ => panic!("expected TopN"),
        }
    }

    #[test]
    fn unknown_names_error() {
        let c = catalog();
        let b = LogicalPlanBuilder::scan(&c, "items").unwrap();
        assert!(b.col("nope").is_err());
        assert!(b.clone().select(&["nope"]).is_err());
        assert!(LogicalPlanBuilder::scan(&c, "missing_table").is_err());
    }

    #[test]
    fn cross_join_schema() {
        let c = catalog();
        let items = LogicalPlanBuilder::scan(&c, "items").unwrap();
        let sales = LogicalPlanBuilder::scan(&c, "sales").unwrap();
        let x = items.cross_join(sales).unwrap();
        assert_eq!(x.schema().len(), 5);
    }

    // Silence unused import warning for DataPage in this test module.
    #[allow(dead_code)]
    fn _unused(_: Option<DataPage>) {}
}
