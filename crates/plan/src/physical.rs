//! Physical query plans.
//!
//! The optimizer lowers a [`crate::logical::LogicalPlan`] into a
//! [`PhysicalNode`] tree with **explicit data movement**: [`Exchange`] nodes
//! mark task-to-task (network) shuffles and are the cut points for stage
//! fragmentation (paper Fig 4); [`LocalExchange`] nodes mark driver-to-driver
//! redistribution inside one task and are the cut points for pipeline
//! splitting (paper Fig 6).
//!
//! Aggregation is always represented in the paper's two-phase form
//! ([`PhysicalNode::PartialAggregate`] / [`PhysicalNode::FinalAggregate`]):
//! the partial phase runs in the scan-side stage at elastic parallelism, the
//! final phase merges serialized partial states at parallelism 1 (§4.1).
//!
//! [`Exchange`]: PhysicalNode::Exchange
//! [`LocalExchange`]: PhysicalNode::LocalExchange

use std::fmt;
use std::sync::Arc;

use accordion_common::StageId;
use accordion_data::schema::{Field, Schema, SchemaRef};
use accordion_data::sort::SortKey;
use accordion_data::types::DataType;
use accordion_expr::agg::AggSpec;
use accordion_expr::scalar::Expr;

use crate::logical::JoinType;

/// How the producing side of an exchange partitions its output pages across
/// the consuming side's tasks (or drivers, for a local exchange).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitioning {
    /// All pages flow to a single consumer (gather).
    Single,
    /// Rows are hash-partitioned on key columns into `partitions` buckets.
    Hash { keys: Vec<usize>, partitions: u32 },
    /// Pages are dealt round-robin across `partitions` consumers.
    RoundRobin { partitions: u32 },
}

impl Partitioning {
    /// Number of output partitions produced under this scheme.
    pub fn partition_count(&self) -> u32 {
        match self {
            Partitioning::Single => 1,
            Partitioning::Hash { partitions, .. } | Partitioning::RoundRobin { partitions } => {
                *partitions
            }
        }
    }
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partitioning::Single => write!(f, "single"),
            Partitioning::Hash { keys, partitions } => {
                write!(f, "hash{keys:?}x{partitions}")
            }
            Partitioning::RoundRobin { partitions } => write!(f, "rr x{partitions}"),
        }
    }
}

/// How a pipeline's source operator obtains its pages. Determines whether a
/// driver of that pipeline holds splits (scan pipelines are the elastic ones
/// in the paper — their drivers can be added/removed between splits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceRole {
    /// Reads base-table splits.
    TableScan,
    /// Pulls pages produced by an upstream stage (remote exchange client).
    RemoteExchange,
    /// Pulls pages from a local exchange inside the same task.
    LocalExchange,
}

/// A physical plan node. Children are `Arc`-shared, like logical plans.
#[derive(Debug, Clone)]
pub enum PhysicalNode {
    /// Scan of a catalog table with column projection. The leaf of every
    /// source stage; its splits are assigned to tasks by the scheduler.
    TableScan {
        table: String,
        table_schema: SchemaRef,
        projection: Vec<usize>,
    },
    /// Row filter.
    Filter {
        input: Arc<PhysicalNode>,
        predicate: Expr,
    },
    /// Column computation / projection.
    Project {
        input: Arc<PhysicalNode>,
        exprs: Vec<(Expr, String)>,
    },
    /// Partial (scan-side) phase of a two-phase aggregation. Output layout:
    /// group columns first, then the flattened serialized partial state of
    /// each aggregate (see [`AggSpec::partial_state_types`]).
    PartialAggregate {
        input: Arc<PhysicalNode>,
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
    },
    /// Final (merge) phase of a two-phase aggregation; consumes the partial
    /// layout. Its input's first `group_count` columns are group keys.
    FinalAggregate {
        input: Arc<PhysicalNode>,
        group_count: usize,
        aggs: Vec<AggSpec>,
    },
    /// Hash join: `build` is fully consumed into a hash table (the pipeline
    /// breaker, paper Fig 6), then `probe` streams through.
    HashJoin {
        probe: Arc<PhysicalNode>,
        build: Arc<PhysicalNode>,
        /// Pairs of (probe column, build column) equi-join keys.
        on: Vec<(usize, usize)>,
        join_type: JoinType,
    },
    /// Task-to-task (network) shuffle. Stage fragmentation cuts here.
    /// `input_parallelism` records the producing stage's DOP, fixed at
    /// optimization time (later PRs make this elastic at runtime).
    Exchange {
        input: Arc<PhysicalNode>,
        partitioning: Partitioning,
        input_parallelism: u32,
    },
    /// Driver-to-driver redistribution inside one task. Pipeline splitting
    /// cuts here.
    LocalExchange {
        input: Arc<PhysicalNode>,
        partitioning: Partitioning,
    },
    /// Placeholder leaf created by stage fragmentation where an [`Exchange`]
    /// was cut: pages arrive from `child_stage`'s task output buffers.
    ///
    /// [`Exchange`]: PhysicalNode::Exchange
    RemoteSource {
        child_stage: StageId,
        schema: Schema,
    },
    /// Full sort (ORDER BY without LIMIT).
    Sort {
        input: Arc<PhysicalNode>,
        keys: Vec<SortKey>,
    },
    /// ORDER BY + LIMIT, kept as a bounded heap at execution time.
    TopN {
        input: Arc<PhysicalNode>,
        keys: Vec<SortKey>,
        n: usize,
    },
    /// Plain LIMIT.
    Limit { input: Arc<PhysicalNode>, n: usize },
}

impl PhysicalNode {
    /// Output schema of this node.
    pub fn schema(&self) -> Schema {
        match self {
            PhysicalNode::TableScan {
                table_schema,
                projection,
                ..
            } => table_schema.project(projection),
            PhysicalNode::Filter { input, .. } => input.schema(),
            PhysicalNode::Project { input, exprs } => {
                let in_schema = input.schema();
                Schema::new(
                    exprs
                        .iter()
                        .map(|(e, name)| {
                            let dt = e.data_type(&in_schema).unwrap_or(DataType::Int64);
                            Field::new(name.clone(), dt)
                        })
                        .collect(),
                )
            }
            PhysicalNode::PartialAggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema();
                let mut fields: Vec<Field> = group_by
                    .iter()
                    .map(|&i| in_schema.field(i).clone())
                    .collect();
                for a in aggs {
                    for (i, dt) in a.partial_state_types().into_iter().enumerate() {
                        fields.push(Field::new(format!("{}#p{i}", a.name), dt));
                    }
                }
                Schema::new(fields)
            }
            PhysicalNode::FinalAggregate {
                input,
                group_count,
                aggs,
            } => {
                let in_schema = input.schema();
                let mut fields: Vec<Field> = (0..*group_count)
                    .map(|i| in_schema.field(i).clone())
                    .collect();
                fields.extend(
                    aggs.iter()
                        .map(|a| Field::new(a.name.clone(), a.output_type())),
                );
                Schema::new(fields)
            }
            PhysicalNode::HashJoin { probe, build, .. } => probe.schema().join(&build.schema()),
            PhysicalNode::Exchange { input, .. }
            | PhysicalNode::LocalExchange { input, .. }
            | PhysicalNode::Sort { input, .. }
            | PhysicalNode::TopN { input, .. }
            | PhysicalNode::Limit { input, .. } => input.schema(),
            PhysicalNode::RemoteSource { schema, .. } => schema.clone(),
        }
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&Arc<PhysicalNode>> {
        match self {
            PhysicalNode::TableScan { .. } | PhysicalNode::RemoteSource { .. } => vec![],
            PhysicalNode::Filter { input, .. }
            | PhysicalNode::Project { input, .. }
            | PhysicalNode::PartialAggregate { input, .. }
            | PhysicalNode::FinalAggregate { input, .. }
            | PhysicalNode::Exchange { input, .. }
            | PhysicalNode::LocalExchange { input, .. }
            | PhysicalNode::Sort { input, .. }
            | PhysicalNode::TopN { input, .. }
            | PhysicalNode::Limit { input, .. } => vec![input],
            PhysicalNode::HashJoin { probe, build, .. } => vec![probe, build],
        }
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut dyn FnMut(&PhysicalNode)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Number of nodes in the subtree.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// True if the subtree contains a [`PhysicalNode::TableScan`].
    pub fn contains_scan(&self) -> bool {
        self.scan_count() > 0
    }

    /// Number of [`PhysicalNode::TableScan`] leaves in the subtree (elastic
    /// eligibility: a stage feeding from one split queue has exactly one).
    pub fn scan_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |node| {
            if matches!(node, PhysicalNode::TableScan { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Names of the tables scanned in the subtree, in visit order. An
    /// elastic Source stage has exactly one — the table whose `SplitSet`
    /// backs the stage's shared split queue.
    pub fn scan_tables(&self) -> Vec<String> {
        let mut tables = Vec::new();
        self.visit(&mut |node| {
            if let PhysicalNode::TableScan { table, .. } = node {
                tables.push(table.clone());
            }
        });
        tables
    }

    /// One-word operator name (display / test assertions).
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalNode::TableScan { .. } => "TableScan",
            PhysicalNode::Filter { .. } => "Filter",
            PhysicalNode::Project { .. } => "Project",
            PhysicalNode::PartialAggregate { .. } => "PartialAggregate",
            PhysicalNode::FinalAggregate { .. } => "FinalAggregate",
            PhysicalNode::HashJoin { .. } => "HashJoin",
            PhysicalNode::Exchange { .. } => "Exchange",
            PhysicalNode::LocalExchange { .. } => "LocalExchange",
            PhysicalNode::RemoteSource { .. } => "RemoteSource",
            PhysicalNode::Sort { .. } => "Sort",
            PhysicalNode::TopN { .. } => "TopN",
            PhysicalNode::Limit { .. } => "Limit",
        }
    }

    /// Multi-line indented plan rendering (EXPLAIN-style).
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            PhysicalNode::TableScan {
                table, projection, ..
            } => out.push_str(&format!("{pad}TableScan: {table} cols={projection:?}\n")),
            PhysicalNode::Filter { input, .. } => {
                out.push_str(&format!("{pad}Filter\n"));
                input.fmt_indent(out, indent + 1);
            }
            PhysicalNode::Project { input, exprs } => {
                let names: Vec<&str> = exprs.iter().map(|(_, n)| n.as_str()).collect();
                out.push_str(&format!("{pad}Project: {names:?}\n"));
                input.fmt_indent(out, indent + 1);
            }
            PhysicalNode::PartialAggregate {
                input,
                group_by,
                aggs,
            } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                out.push_str(&format!(
                    "{pad}PartialAggregate: group={group_by:?} aggs={names:?}\n"
                ));
                input.fmt_indent(out, indent + 1);
            }
            PhysicalNode::FinalAggregate {
                input,
                group_count,
                aggs,
            } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                out.push_str(&format!(
                    "{pad}FinalAggregate: groups={group_count} aggs={names:?}\n"
                ));
                input.fmt_indent(out, indent + 1);
            }
            PhysicalNode::HashJoin {
                probe,
                build,
                on,
                join_type,
            } => {
                out.push_str(&format!("{pad}HashJoin[{join_type:?}]: on={on:?}\n"));
                probe.fmt_indent(out, indent + 1);
                build.fmt_indent(out, indent + 1);
            }
            PhysicalNode::Exchange {
                input,
                partitioning,
                input_parallelism,
            } => {
                out.push_str(&format!(
                    "{pad}Exchange[{partitioning}] from x{input_parallelism}\n"
                ));
                input.fmt_indent(out, indent + 1);
            }
            PhysicalNode::LocalExchange {
                input,
                partitioning,
            } => {
                out.push_str(&format!("{pad}LocalExchange[{partitioning}]\n"));
                input.fmt_indent(out, indent + 1);
            }
            PhysicalNode::RemoteSource { child_stage, .. } => {
                out.push_str(&format!("{pad}RemoteSource: {child_stage}\n"));
            }
            PhysicalNode::Sort { input, keys } => {
                let cols: Vec<usize> = keys.iter().map(|k| k.column).collect();
                out.push_str(&format!("{pad}Sort: keys={cols:?}\n"));
                input.fmt_indent(out, indent + 1);
            }
            PhysicalNode::TopN { input, keys, n } => {
                let cols: Vec<usize> = keys.iter().map(|k| k.column).collect();
                out.push_str(&format!("{pad}TopN: n={n} keys={cols:?}\n"));
                input.fmt_indent(out, indent + 1);
            }
            PhysicalNode::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit: {n}\n"));
                input.fmt_indent(out, indent + 1);
            }
        }
    }
}

impl fmt::Display for PhysicalNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_expr::agg::AggKind;

    fn scan() -> Arc<PhysicalNode> {
        Arc::new(PhysicalNode::TableScan {
            table: "t".into(),
            table_schema: Schema::shared(vec![
                Field::new("k", DataType::Utf8),
                Field::new("v", DataType::Int64),
            ]),
            projection: vec![0, 1],
        })
    }

    #[test]
    fn partial_schema_flattens_avg_state() {
        let p = PhysicalNode::PartialAggregate {
            input: scan(),
            group_by: vec![0],
            aggs: vec![AggSpec::new(
                AggKind::Avg,
                Expr::col(1),
                DataType::Int64,
                "a",
            )],
        };
        let s = p.schema();
        // group key + (sum, count) partial columns.
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(0).name, "k");
        assert_eq!(s.field(1).data_type, DataType::Float64);
        assert_eq!(s.field(2).data_type, DataType::Int64);
    }

    #[test]
    fn final_schema_recovers_output_names() {
        let partial = Arc::new(PhysicalNode::PartialAggregate {
            input: scan(),
            group_by: vec![0],
            aggs: vec![AggSpec::new(
                AggKind::Avg,
                Expr::col(1),
                DataType::Int64,
                "a",
            )],
        });
        let fin = PhysicalNode::FinalAggregate {
            input: partial,
            group_count: 1,
            aggs: vec![AggSpec::new(
                AggKind::Avg,
                Expr::col(1),
                DataType::Int64,
                "a",
            )],
        };
        let s = fin.schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(0).name, "k");
        assert_eq!(s.field(1).name, "a");
        assert_eq!(s.field(1).data_type, DataType::Float64);
    }

    #[test]
    fn partitioning_counts() {
        assert_eq!(Partitioning::Single.partition_count(), 1);
        assert_eq!(
            Partitioning::Hash {
                keys: vec![0],
                partitions: 4
            }
            .partition_count(),
            4
        );
        assert_eq!(
            Partitioning::RoundRobin { partitions: 3 }.partition_count(),
            3
        );
    }

    #[test]
    fn traversal_and_display() {
        let plan = PhysicalNode::Exchange {
            input: Arc::new(PhysicalNode::Filter {
                input: scan(),
                predicate: Expr::gt(Expr::col(1), Expr::lit_i64(0)),
            }),
            partitioning: Partitioning::Single,
            input_parallelism: 4,
        };
        assert_eq!(plan.node_count(), 3);
        assert!(plan.contains_scan());
        let text = plan.display();
        assert!(text.contains("Exchange[single] from x4"));
        assert!(text.contains("TableScan"));
    }
}
