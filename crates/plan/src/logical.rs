//! Logical query plans.
//!
//! Expressions reference input columns positionally; names are carried in
//! the per-node output [`Schema`] so front-ends can resolve identifiers.

use std::fmt;
use std::sync::Arc;

use accordion_common::{AccordionError, Result};
use accordion_data::schema::{Field, Schema, SchemaRef};
use accordion_data::sort::SortKey;
use accordion_data::types::DataType;
use accordion_expr::agg::AggSpec;
use accordion_expr::scalar::Expr;

/// Join type. The evaluation workload uses inner equi-joins; cross joins are
/// kept because the paper lists the cross-join operator as stateful (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    Cross,
}

/// A logical plan node. Children are `Arc`-shared.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan of a catalog table, with optional column projection.
    TableScan {
        table: String,
        /// Full table schema.
        table_schema: SchemaRef,
        /// Indices of the projected columns (into `table_schema`).
        projection: Vec<usize>,
    },
    /// Row filter.
    Filter {
        input: Arc<LogicalPlan>,
        predicate: Expr,
    },
    /// Column computation / projection.
    Project {
        input: Arc<LogicalPlan>,
        exprs: Vec<(Expr, String)>,
    },
    /// Group-by aggregation (split into partial/final by the optimizer).
    Aggregate {
        input: Arc<LogicalPlan>,
        /// Group-by columns (indices into input schema).
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
    },
    /// Equi-join (`on` pairs left/right key column indices) or cross join.
    Join {
        left: Arc<LogicalPlan>,
        right: Arc<LogicalPlan>,
        on: Vec<(usize, usize)>,
        join_type: JoinType,
    },
    /// ORDER BY + LIMIT.
    TopN {
        input: Arc<LogicalPlan>,
        keys: Vec<SortKey>,
        n: usize,
    },
    /// Plain LIMIT.
    Limit { input: Arc<LogicalPlan>, n: usize },
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::TableScan {
                table_schema,
                projection,
                ..
            } => table_schema.project(projection),
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema();
                Schema::new(
                    exprs
                        .iter()
                        .map(|(e, name)| {
                            let dt = e.data_type(&in_schema).unwrap_or(DataType::Int64);
                            Field::new(name.clone(), dt)
                        })
                        .collect(),
                )
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema();
                let mut fields: Vec<Field> = group_by
                    .iter()
                    .map(|&i| in_schema.field(i).clone())
                    .collect();
                fields.extend(
                    aggs.iter()
                        .map(|a| Field::new(a.name.clone(), a.output_type())),
                );
                Schema::new(fields)
            }
            LogicalPlan::Join { left, right, .. } => left.schema().join(&right.schema()),
            LogicalPlan::TopN { input, .. } | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&Arc<LogicalPlan>> {
        match self {
            LogicalPlan::TableScan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::TopN { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Names of all base tables scanned by the plan (with duplicates for
    /// self-joins), in scan order.
    pub fn scanned_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |n| {
            if let LogicalPlan::TableScan { table, .. } = n {
                out.push(table.clone());
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut dyn FnMut(&LogicalPlan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Number of nodes in the plan.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Validates expression/column references against child schemas.
    pub fn validate(&self) -> Result<()> {
        match self {
            LogicalPlan::TableScan {
                table_schema,
                projection,
                ..
            } => {
                for &i in projection {
                    if i >= table_schema.len() {
                        return Err(AccordionError::Plan(format!(
                            "scan projection #{i} out of range"
                        )));
                    }
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                input.validate()?;
                let schema = input.schema();
                predicate.data_type(&schema)?;
                check_refs(predicate, &schema)?;
            }
            LogicalPlan::Project { input, exprs } => {
                input.validate()?;
                let schema = input.schema();
                for (e, _) in exprs {
                    e.data_type(&schema)?;
                    check_refs(e, &schema)?;
                }
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                input.validate()?;
                let schema = input.schema();
                for &g in group_by {
                    if g >= schema.len() {
                        return Err(AccordionError::Plan(format!(
                            "group-by column #{g} out of range"
                        )));
                    }
                }
                for a in aggs {
                    if let Some(e) = &a.input {
                        check_refs(e, &schema)?;
                    }
                }
            }
            LogicalPlan::Join {
                left, right, on, ..
            } => {
                left.validate()?;
                right.validate()?;
                let (ls, rs) = (left.schema(), right.schema());
                for &(l, r) in on {
                    if l >= ls.len() || r >= rs.len() {
                        return Err(AccordionError::Plan(format!(
                            "join key ({l},{r}) out of range"
                        )));
                    }
                    let lt = ls.field(l).data_type;
                    let rt = rs.field(r).data_type;
                    if lt != rt && !(lt.is_numeric() && rt.is_numeric()) {
                        return Err(AccordionError::Plan(format!(
                            "join key type mismatch: {lt} vs {rt}"
                        )));
                    }
                }
            }
            LogicalPlan::TopN { input, keys, .. } => {
                input.validate()?;
                let schema = input.schema();
                for k in keys {
                    if k.column >= schema.len() {
                        return Err(AccordionError::Plan(format!(
                            "sort column #{} out of range",
                            k.column
                        )));
                    }
                }
            }
            LogicalPlan::Limit { input, .. } => input.validate()?,
        }
        Ok(())
    }

    /// Multi-line indented plan rendering (EXPLAIN-style).
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::TableScan {
                table, projection, ..
            } => {
                out.push_str(&format!("{pad}TableScan: {table} cols={projection:?}\n"));
            }
            LogicalPlan::Filter { input, .. } => {
                out.push_str(&format!("{pad}Filter\n"));
                input.fmt_indent(out, indent + 1);
            }
            LogicalPlan::Project { input, exprs } => {
                let names: Vec<&str> = exprs.iter().map(|(_, n)| n.as_str()).collect();
                out.push_str(&format!("{pad}Project: {names:?}\n"));
                input.fmt_indent(out, indent + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let names: Vec<&str> = aggs.iter().map(|a| a.name.as_str()).collect();
                out.push_str(&format!(
                    "{pad}Aggregate: group={group_by:?} aggs={names:?}\n"
                ));
                input.fmt_indent(out, indent + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                join_type,
            } => {
                out.push_str(&format!("{pad}Join[{join_type:?}]: on={on:?}\n"));
                left.fmt_indent(out, indent + 1);
                right.fmt_indent(out, indent + 1);
            }
            LogicalPlan::TopN { input, keys, n } => {
                let cols: Vec<usize> = keys.iter().map(|k| k.column).collect();
                out.push_str(&format!("{pad}TopN: n={n} keys={cols:?}\n"));
                input.fmt_indent(out, indent + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit: {n}\n"));
                input.fmt_indent(out, indent + 1);
            }
        }
    }
}

fn check_refs(e: &Expr, schema: &Schema) -> Result<()> {
    for c in e.referenced_columns() {
        if c >= schema.len() {
            return Err(AccordionError::Plan(format!(
                "expression references column #{c}, schema has {}",
                schema.len()
            )));
        }
    }
    Ok(())
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_expr::agg::AggKind;

    fn scan() -> Arc<LogicalPlan> {
        let schema = Schema::shared(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Float64),
            Field::new("c", DataType::Utf8),
        ]);
        Arc::new(LogicalPlan::TableScan {
            table: "t".into(),
            table_schema: schema,
            projection: vec![0, 1, 2],
        })
    }

    #[test]
    fn scan_schema_projects() {
        let s = LogicalPlan::TableScan {
            table: "t".into(),
            table_schema: Schema::shared(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Float64),
            ]),
            projection: vec![1],
        };
        assert_eq!(s.schema().len(), 1);
        assert_eq!(s.schema().field(0).name, "b");
    }

    #[test]
    fn aggregate_schema() {
        let agg = LogicalPlan::Aggregate {
            input: scan(),
            group_by: vec![2],
            aggs: vec![AggSpec::new(
                AggKind::Sum,
                Expr::col(1),
                DataType::Float64,
                "total",
            )],
        };
        let s = agg.schema();
        assert_eq!(s.field(0).name, "c");
        assert_eq!(s.field(1).name, "total");
        assert_eq!(s.field(1).data_type, DataType::Float64);
        agg.validate().unwrap();
    }

    #[test]
    fn join_schema_concatenates() {
        let j = LogicalPlan::Join {
            left: scan(),
            right: scan(),
            on: vec![(0, 0)],
            join_type: JoinType::Inner,
        };
        assert_eq!(j.schema().len(), 6);
        j.validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_refs() {
        let f = LogicalPlan::Filter {
            input: scan(),
            predicate: Expr::gt(Expr::col(9), Expr::lit_i64(0)),
        };
        assert!(f.validate().is_err());
        let j = LogicalPlan::Join {
            left: scan(),
            right: scan(),
            on: vec![(0, 2)],
            join_type: JoinType::Inner,
        };
        assert!(j.validate().is_err(), "int vs utf8 join key");
    }

    #[test]
    fn traversal_and_display() {
        let plan = LogicalPlan::TopN {
            input: Arc::new(LogicalPlan::Filter {
                input: scan(),
                predicate: Expr::gt(Expr::col(0), Expr::lit_i64(1)),
            }),
            keys: vec![SortKey::desc(1)],
            n: 10,
        };
        assert_eq!(plan.node_count(), 3);
        assert_eq!(plan.scanned_tables(), vec!["t"]);
        let text = plan.display();
        assert!(text.contains("TopN"));
        assert!(text.contains("TableScan"));
    }
}
