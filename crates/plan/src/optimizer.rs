//! Logical rewrites and physical lowering.
//!
//! The optimizer performs the rewrites Accordion inherits from Presto (§2):
//!
//! * **Predicate pushdown** — filters move below projections (by inlining
//!   the projected expressions into the predicate) and below aggregations
//!   (when they only reference group keys), so they run in the scan-side
//!   stage where parallelism is elastic.
//! * **Two-stage aggregation** — every `Aggregate` becomes a
//!   [`PhysicalNode::PartialAggregate`] at the scan stage's parallelism, a
//!   [`PhysicalNode::Exchange`] hash-partitioned on the group keys across
//!   `merge_parallelism` merge tasks (gathering instead for global
//!   aggregates or `merge_parallelism == 1`), a
//!   [`PhysicalNode::LocalExchange`] and a [`PhysicalNode::FinalAggregate`]
//!   (paper §4.1: partial-aggregate state is reconstructible, so the
//!   scan-side stage can grow/shrink mid-query while the final stages stay
//!   fixed).
//! * **TopN / Limit splitting** — each distributed task keeps its local
//!   top-N (or first-N) rows, and a single final task merges them.
//! * **Physical lowering** with explicit exchanges: the plan that leaves
//!   this module contains every data movement as a node, ready for stage
//!   fragmentation ([`crate::fragment`]) and pipeline splitting
//!   ([`crate::pipeline`]).

use std::sync::Arc;

use accordion_common::Result;
use accordion_expr::scalar::Expr;

use crate::logical::LogicalPlan;
use crate::physical::{Partitioning, PhysicalNode};

/// Tuning knobs for the optimizer. Rule toggles exist so structural planner
/// tests can isolate a single rewrite.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Parallelism (task count) of source stages — the stages the cluster
    /// elasticity controller retunes at runtime.
    pub scan_parallelism: u32,
    /// Parallelism of the final-aggregate merge stage. When > 1 (and the
    /// aggregation has group keys), the partial→final exchange routes by
    /// `Partitioning::Hash{group keys}` across that many merge tasks instead
    /// of gathering to a single task; global aggregates always gather.
    pub merge_parallelism: u32,
    /// Enables filter pushdown through projections and aggregations.
    pub predicate_pushdown: bool,
    /// Splits aggregations into partial/final phases across an exchange.
    /// When disabled, the input is gathered first and both phases run
    /// back-to-back in the single merge stage.
    pub two_stage_aggregation: bool,
    /// Keeps a per-task TopN/Limit below the gather exchange.
    pub topn_pushdown: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            scan_parallelism: 4,
            merge_parallelism: 2,
            predicate_pushdown: true,
            two_stage_aggregation: true,
            topn_pushdown: true,
        }
    }
}

impl OptimizerConfig {
    /// Everything runs in one task — handy for golden tests that assert
    /// exact row order without a final sort.
    pub fn serial() -> Self {
        OptimizerConfig {
            scan_parallelism: 1,
            merge_parallelism: 1,
            ..OptimizerConfig::default()
        }
    }

    pub fn with_parallelism(mut self, dop: u32) -> Self {
        assert!(dop > 0, "parallelism must be positive");
        self.scan_parallelism = dop;
        self
    }

    pub fn with_merge_parallelism(mut self, dop: u32) -> Self {
        assert!(dop > 0, "parallelism must be positive");
        self.merge_parallelism = dop;
        self
    }
}

/// The rule-based optimizer + physical lowering pass.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    config: OptimizerConfig,
}

impl Optimizer {
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer { config }
    }

    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Runs logical rewrites, then lowers to a physical plan whose root
    /// always produces a single output partition (the coordinator's result).
    ///
    /// Plan **structure** is DOP-independent: even at planned parallelism 1
    /// the scan side is cut into its own Source stage (and TopN/Limit keep
    /// their local/final split), so the runtime elasticity controller can
    /// grow a stage planned at DOP 1 without changing what any operator
    /// computes — parallelism is a runtime property, not a plan property.
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<Arc<PhysicalNode>> {
        plan.validate()?;
        let rewritten = self.rewrite_logical(plan);
        let (root, parallelism) = self.lower(&rewritten)?;
        Ok(if parallelism > 1 || root_stage_contains_scan(&root) {
            Arc::new(PhysicalNode::Exchange {
                input: root,
                partitioning: Partitioning::Single,
                input_parallelism: parallelism,
            })
        } else {
            root
        })
    }

    /// Logical-to-logical rewrites (currently: predicate pushdown). Public
    /// so planner tests can assert on the rewritten tree in isolation.
    pub fn rewrite_logical(&self, plan: &LogicalPlan) -> Arc<LogicalPlan> {
        if self.config.predicate_pushdown {
            pushdown_predicates(plan)
        } else {
            Arc::new(plan.clone())
        }
    }

    /// Lowers a (rewritten) logical plan. Returns the physical subtree plus
    /// the parallelism its output is produced at.
    fn lower(&self, plan: &LogicalPlan) -> Result<(Arc<PhysicalNode>, u32)> {
        let dop = self.config.scan_parallelism.max(1);
        Ok(match plan {
            LogicalPlan::TableScan {
                table,
                table_schema,
                projection,
            } => (
                Arc::new(PhysicalNode::TableScan {
                    table: table.clone(),
                    table_schema: table_schema.clone(),
                    projection: projection.clone(),
                }),
                dop,
            ),
            LogicalPlan::Filter { input, predicate } => {
                let (child, dist) = self.lower(input)?;
                (
                    Arc::new(PhysicalNode::Filter {
                        input: child,
                        predicate: predicate.clone(),
                    }),
                    dist,
                )
            }
            LogicalPlan::Project { input, exprs } => {
                let (child, dist) = self.lower(input)?;
                (
                    Arc::new(PhysicalNode::Project {
                        input: child,
                        exprs: exprs.clone(),
                    }),
                    dist,
                )
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (child, dist) = self.lower(input)?;
                if self.config.two_stage_aggregation {
                    // partial (parallel) → partitioned exchange → local
                    // exchange → final. With group keys and
                    // `merge_parallelism > 1` the exchange hash-partitions
                    // the partial states on the group-key columns (the first
                    // `group_by.len()` columns of the partial output), so
                    // every row of one group lands in the same merge task
                    // and the final phase runs distributed. Global
                    // aggregates have nothing to hash on and gather.
                    let merge_dop = if group_by.is_empty() {
                        1
                    } else {
                        self.config.merge_parallelism.max(1)
                    };
                    let partitioning = if merge_dop > 1 {
                        Partitioning::Hash {
                            keys: (0..group_by.len()).collect(),
                            partitions: merge_dop,
                        }
                    } else {
                        Partitioning::Single
                    };
                    let partial = Arc::new(PhysicalNode::PartialAggregate {
                        input: child,
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    });
                    let exchange = Arc::new(PhysicalNode::Exchange {
                        input: partial,
                        partitioning,
                        input_parallelism: dist,
                    });
                    let local = Arc::new(PhysicalNode::LocalExchange {
                        input: exchange,
                        partitioning: Partitioning::Single,
                    });
                    let node = Arc::new(PhysicalNode::FinalAggregate {
                        input: local,
                        group_count: group_by.len(),
                        aggs: aggs.clone(),
                    });
                    (node, merge_dop)
                } else {
                    // Gather raw rows, then run both phases back-to-back.
                    let gathered = gather_if_distributed(child, dist);
                    let partial = Arc::new(PhysicalNode::PartialAggregate {
                        input: gathered,
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    });
                    let node = Arc::new(PhysicalNode::FinalAggregate {
                        input: partial,
                        group_count: group_by.len(),
                        aggs: aggs.clone(),
                    });
                    (node, 1)
                }
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                join_type,
            } => {
                let (probe, probe_dist) = self.lower(left)?;
                let (build, build_dist) = self.lower(right)?;
                // Broadcast join: the build side is gathered into a single
                // partition which every probe task reads in full. Always a
                // stage boundary (even at build dist 1), so the build scan
                // stays independently elastic at runtime.
                let build = Arc::new(PhysicalNode::Exchange {
                    input: build,
                    partitioning: Partitioning::Single,
                    input_parallelism: build_dist,
                });
                (
                    Arc::new(PhysicalNode::HashJoin {
                        probe,
                        build,
                        on: on.clone(),
                        join_type: *join_type,
                    }),
                    probe_dist,
                )
            }
            LogicalPlan::TopN { input, keys, n } => {
                // Always the local/final split, even at dist 1: each task
                // keeps its local top-N and a single final task merges —
                // the structure stays correct when the elasticity
                // controller grows the producing stage mid-query.
                let (child, dist) = self.lower(input)?;
                let inner: Arc<PhysicalNode> = if self.config.topn_pushdown {
                    Arc::new(PhysicalNode::TopN {
                        input: child,
                        keys: keys.clone(),
                        n: *n,
                    })
                } else {
                    child
                };
                let exchange = Arc::new(PhysicalNode::Exchange {
                    input: inner,
                    partitioning: Partitioning::Single,
                    input_parallelism: dist,
                });
                (
                    Arc::new(PhysicalNode::TopN {
                        input: exchange,
                        keys: keys.clone(),
                        n: *n,
                    }),
                    1,
                )
            }
            LogicalPlan::Limit { input, n } => {
                // Like TopN: always split, so a grown task set's per-task
                // first-N rows still merge to an exact global LIMIT.
                let (child, dist) = self.lower(input)?;
                let inner: Arc<PhysicalNode> = if self.config.topn_pushdown {
                    Arc::new(PhysicalNode::Limit {
                        input: child,
                        n: *n,
                    })
                } else {
                    child
                };
                let exchange = Arc::new(PhysicalNode::Exchange {
                    input: inner,
                    partitioning: Partitioning::Single,
                    input_parallelism: dist,
                });
                (
                    Arc::new(PhysicalNode::Limit {
                        input: exchange,
                        n: *n,
                    }),
                    1,
                )
            }
        })
    }
}

/// True when the root-stage slice of `node` (the subtree above any
/// `Exchange`) still contains a `TableScan` — fragmenting such a plan would
/// put a scan in the output stage, denying it runtime elasticity.
fn root_stage_contains_scan(node: &PhysicalNode) -> bool {
    match node {
        PhysicalNode::Exchange { .. } => false,
        PhysicalNode::TableScan { .. } => true,
        other => other.children().iter().any(|c| root_stage_contains_scan(c)),
    }
}

fn gather_if_distributed(node: Arc<PhysicalNode>, dist: u32) -> Arc<PhysicalNode> {
    if dist > 1 {
        Arc::new(PhysicalNode::Exchange {
            input: node,
            partitioning: Partitioning::Single,
            input_parallelism: dist,
        })
    } else {
        node
    }
}

/// Rewrites the plan bottom-up, sinking every filter as far down as it can
/// legally go.
pub fn pushdown_predicates(plan: &LogicalPlan) -> Arc<LogicalPlan> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = pushdown_predicates(input);
            push_filter(input, predicate.clone())
        }
        LogicalPlan::TableScan { .. } => Arc::new(plan.clone()),
        LogicalPlan::Project { input, exprs } => Arc::new(LogicalPlan::Project {
            input: pushdown_predicates(input),
            exprs: exprs.clone(),
        }),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => Arc::new(LogicalPlan::Aggregate {
            input: pushdown_predicates(input),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        }),
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => Arc::new(LogicalPlan::Join {
            left: pushdown_predicates(left),
            right: pushdown_predicates(right),
            on: on.clone(),
            join_type: *join_type,
        }),
        LogicalPlan::TopN { input, keys, n } => Arc::new(LogicalPlan::TopN {
            input: pushdown_predicates(input),
            keys: keys.clone(),
            n: *n,
        }),
        LogicalPlan::Limit { input, n } => Arc::new(LogicalPlan::Limit {
            input: pushdown_predicates(input),
            n: *n,
        }),
    }
}

/// Pushes one filter predicate into `input` as deep as legality allows.
fn push_filter(input: Arc<LogicalPlan>, predicate: Expr) -> Arc<LogicalPlan> {
    match input.as_ref() {
        // Adjacent filters combine into one conjunction, which keeps
        // pushing through whatever the inner filter sat on.
        LogicalPlan::Filter {
            input: inner,
            predicate: inner_pred,
        } => push_filter(inner.clone(), Expr::and(inner_pred.clone(), predicate)),
        // A filter above a projection becomes a filter below it with the
        // projected expressions inlined (all our expressions are pure).
        LogicalPlan::Project {
            input: inner,
            exprs,
        } => {
            let inlined = substitute_columns(&predicate, exprs);
            Arc::new(LogicalPlan::Project {
                input: push_filter(inner.clone(), inlined),
                exprs: exprs.clone(),
            })
        }
        // A filter that only references group keys commutes with the
        // aggregation (dropping a group's rows before aggregating equals
        // dropping the finished group).
        LogicalPlan::Aggregate {
            input: inner,
            group_by,
            aggs,
        } if predicate
            .referenced_columns()
            .iter()
            .all(|&c| c < group_by.len()) =>
        {
            let remapped = predicate.remap_columns(&|i| group_by[i]);
            Arc::new(LogicalPlan::Aggregate {
                input: push_filter(inner.clone(), remapped),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            })
        }
        // TopN/Limit change cardinality — a filter must not cross them.
        _ => Arc::new(LogicalPlan::Filter { input, predicate }),
    }
}

/// Replaces every `Column(i)` in `e` with the `i`-th projected expression.
fn substitute_columns(e: &Expr, bindings: &[(Expr, String)]) -> Expr {
    match e {
        Expr::Column(i) => bindings[*i].0.clone(),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Arc::new(substitute_columns(left, bindings)),
            op: *op,
            right: Arc::new(substitute_columns(right, bindings)),
        },
        Expr::Not(x) => Expr::Not(Arc::new(substitute_columns(x, bindings))),
        Expr::Between { expr, low, high } => Expr::Between {
            expr: Arc::new(substitute_columns(expr, bindings)),
            low: Arc::new(substitute_columns(low, bindings)),
            high: Arc::new(substitute_columns(high, bindings)),
        },
        Expr::InList { expr, list } => Expr::InList {
            expr: Arc::new(substitute_columns(expr, bindings)),
            list: list.clone(),
        },
        Expr::Like { expr, pattern } => Expr::Like {
            expr: Arc::new(substitute_columns(expr, bindings)),
            pattern: pattern.clone(),
        },
        Expr::Case {
            branches,
            otherwise,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| {
                    (
                        substitute_columns(c, bindings),
                        substitute_columns(v, bindings),
                    )
                })
                .collect(),
            otherwise: otherwise
                .as_ref()
                .map(|x| Arc::new(substitute_columns(x, bindings))),
        },
        Expr::ExtractYear(x) => Expr::ExtractYear(Arc::new(substitute_columns(x, bindings))),
        Expr::IsNull(x) => Expr::IsNull(Arc::new(substitute_columns(x, bindings))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::schema::{Field, Schema};
    use accordion_data::types::DataType;
    use accordion_expr::agg::{AggKind, AggSpec};

    fn scan() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::TableScan {
            table: "t".into(),
            table_schema: Schema::shared(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
            ]),
            projection: vec![0, 1],
        })
    }

    #[test]
    fn filter_sinks_below_project() {
        // Filter(a2 > 3, Project(a*2 as a2)) → Project(Filter(a*2 > 3)).
        let plan = LogicalPlan::Filter {
            input: Arc::new(LogicalPlan::Project {
                input: scan(),
                exprs: vec![(Expr::mul(Expr::col(0), Expr::lit_i64(2)), "a2".into())],
            }),
            predicate: Expr::gt(Expr::col(0), Expr::lit_i64(3)),
        };
        let rewritten = pushdown_predicates(&plan);
        match rewritten.as_ref() {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Filter { predicate, .. } => {
                    // The predicate now references the scan column directly.
                    assert_eq!(predicate.referenced_columns(), vec![0]);
                }
                other => panic!("expected Filter under Project, got {other}"),
            },
            other => panic!("expected Project at root, got {other}"),
        }
        rewritten.validate().unwrap();
    }

    #[test]
    fn adjacent_filters_combine() {
        let plan = LogicalPlan::Filter {
            input: Arc::new(LogicalPlan::Filter {
                input: scan(),
                predicate: Expr::gt(Expr::col(0), Expr::lit_i64(0)),
            }),
            predicate: Expr::lt(Expr::col(1), Expr::lit_i64(9)),
        };
        let rewritten = pushdown_predicates(&plan);
        assert_eq!(rewritten.node_count(), 2, "one filter remains: {rewritten}");
        rewritten.validate().unwrap();
    }

    #[test]
    fn group_key_filter_sinks_below_aggregate() {
        let agg = Arc::new(LogicalPlan::Aggregate {
            input: scan(),
            group_by: vec![1],
            aggs: vec![AggSpec::new(
                AggKind::Sum,
                Expr::col(0),
                DataType::Int64,
                "s",
            )],
        });
        let plan = LogicalPlan::Filter {
            input: agg,
            predicate: Expr::gt(Expr::col(0), Expr::lit_i64(5)), // group key "b"
        };
        let rewritten = pushdown_predicates(&plan);
        match rewritten.as_ref() {
            LogicalPlan::Aggregate { input, .. } => match input.as_ref() {
                LogicalPlan::Filter { predicate, .. } => {
                    assert_eq!(predicate.referenced_columns(), vec![1], "remapped to b");
                }
                other => panic!("expected Filter under Aggregate, got {other}"),
            },
            other => panic!("expected Aggregate at root, got {other}"),
        }
    }

    #[test]
    fn agg_output_filter_stays_above() {
        let agg = Arc::new(LogicalPlan::Aggregate {
            input: scan(),
            group_by: vec![1],
            aggs: vec![AggSpec::new(
                AggKind::Sum,
                Expr::col(0),
                DataType::Int64,
                "s",
            )],
        });
        let plan = LogicalPlan::Filter {
            input: agg,
            predicate: Expr::gt(Expr::col(1), Expr::lit_i64(5)), // references SUM
        };
        let rewritten = pushdown_predicates(&plan);
        assert!(matches!(rewritten.as_ref(), LogicalPlan::Filter { .. }));
    }

    #[test]
    fn lowering_wraps_distributed_root_in_gather() {
        let opt = Optimizer::new(OptimizerConfig::default().with_parallelism(4));
        let phys = opt.optimize(&scan()).unwrap();
        match phys.as_ref() {
            PhysicalNode::Exchange {
                partitioning,
                input_parallelism,
                ..
            } => {
                assert_eq!(*partitioning, Partitioning::Single);
                assert_eq!(*input_parallelism, 4);
            }
            other => panic!("expected gather Exchange at root, got {}", other.name()),
        }
    }

    #[test]
    fn serial_plan_still_cuts_the_source_stage() {
        // Even at planned DOP 1 the scan sits below a gather exchange: the
        // Source stage must exist as a unit of runtime re-parallelization,
        // whatever parallelism it was planned at.
        let opt = Optimizer::new(OptimizerConfig::serial());
        let phys = opt.optimize(&scan()).unwrap();
        match phys.as_ref() {
            PhysicalNode::Exchange {
                input,
                partitioning,
                input_parallelism,
            } => {
                assert_eq!(*partitioning, Partitioning::Single);
                assert_eq!(*input_parallelism, 1);
                assert!(matches!(input.as_ref(), PhysicalNode::TableScan { .. }));
            }
            other => panic!("expected gather Exchange at root, got {}", other.name()),
        }
    }

    #[test]
    fn grouped_aggregate_merges_via_hash_partitioning() {
        let opt = Optimizer::new(
            OptimizerConfig::default()
                .with_parallelism(4)
                .with_merge_parallelism(3),
        );
        let agg = LogicalPlan::Aggregate {
            input: scan(),
            group_by: vec![1],
            aggs: vec![AggSpec::new(
                AggKind::Sum,
                Expr::col(0),
                DataType::Int64,
                "s",
            )],
        };
        let phys = opt.optimize(&agg).unwrap();
        // Root gathers the 3 merge tasks; below it the partial→final
        // exchange hash-partitions on the group-key column.
        let mut hash_exchanges = Vec::new();
        phys.visit(&mut |n| {
            if let PhysicalNode::Exchange {
                partitioning: Partitioning::Hash { keys, partitions },
                ..
            } = n
            {
                hash_exchanges.push((keys.clone(), *partitions));
            }
        });
        assert_eq!(hash_exchanges, vec![(vec![0], 3)]);
        match phys.as_ref() {
            PhysicalNode::Exchange {
                partitioning,
                input_parallelism,
                ..
            } => {
                assert_eq!(*partitioning, Partitioning::Single);
                assert_eq!(*input_parallelism, 3, "root gathers the merge tasks");
            }
            other => panic!("expected gather Exchange at root, got {}", other.name()),
        }
    }

    #[test]
    fn global_aggregate_still_gathers() {
        let opt = Optimizer::new(OptimizerConfig::default().with_parallelism(4));
        let agg = LogicalPlan::Aggregate {
            input: scan(),
            group_by: vec![],
            aggs: vec![AggSpec::new(
                AggKind::Sum,
                Expr::col(0),
                DataType::Int64,
                "s",
            )],
        };
        let phys = opt.optimize(&agg).unwrap();
        phys.visit(&mut |n| {
            if let PhysicalNode::Exchange { partitioning, .. } = n {
                assert_eq!(
                    *partitioning,
                    Partitioning::Single,
                    "no group keys to hash on"
                );
            }
        });
    }

    #[test]
    fn single_stage_aggregation_when_disabled() {
        let cfg = OptimizerConfig {
            two_stage_aggregation: false,
            ..OptimizerConfig::default()
        };
        let opt = Optimizer::new(cfg);
        let agg = LogicalPlan::Aggregate {
            input: scan(),
            group_by: vec![1],
            aggs: vec![AggSpec::new(
                AggKind::Sum,
                Expr::col(0),
                DataType::Int64,
                "s",
            )],
        };
        let phys = opt.optimize(&agg).unwrap();
        // Final directly over Partial — exactly one Exchange (the gather
        // below the partial phase), no LocalExchange.
        let mut names = Vec::new();
        phys.visit(&mut |n| names.push(n.name()));
        assert_eq!(
            names,
            vec![
                "FinalAggregate",
                "PartialAggregate",
                "Exchange",
                "TableScan"
            ]
        );
    }
}
