//! Structural planner tests: two-stage aggregation shape, fragment cutting,
//! and pipeline splitting, driven through the public
//! `LogicalPlanBuilder → Optimizer → StageTree → split_pipelines` API.

use std::sync::Arc;

use accordion_common::StageId;
use accordion_data::schema::{Field, Schema};
use accordion_data::types::{DataType, Value};
use accordion_expr::agg::AggKind;
use accordion_expr::scalar::Expr;
use accordion_plan::fragment::{DopBounds, StageKind, StageTree};
use accordion_plan::optimizer::{Optimizer, OptimizerConfig};
use accordion_plan::physical::{Partitioning, PhysicalNode, SourceRole};
use accordion_plan::pipeline::split_pipelines;
use accordion_plan::LogicalPlanBuilder;
use accordion_storage::catalog::Catalog;
use accordion_storage::table::{PartitioningScheme, TableBuilder};

fn catalog() -> Catalog {
    let c = Catalog::new();
    let schema = Schema::shared(vec![
        Field::new("k", DataType::Utf8),
        Field::new("v", DataType::Int64),
    ]);
    let mut b = TableBuilder::new("t", schema, 8);
    for i in 0..20 {
        b.push_row(vec![Value::Utf8(format!("g{}", i % 4)), Value::Int64(i)]);
    }
    b.register(&c, PartitioningScheme::new(2, 2), 0);
    c
}

/// scan → filter → group-by → top-n at DOP 5, the paper's canonical shape.
fn agg_sort_tree(dop: u32) -> StageTree {
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "t").unwrap();
    let pred = Expr::gt(b.col("v").unwrap(), Expr::lit_i64(2));
    let b = b.filter(pred).unwrap();
    let sum = b.agg(AggKind::Sum, "v", "total").unwrap();
    let logical = b
        .aggregate(&["k"], vec![sum])
        .unwrap()
        .top_n(&[("total", true)], 3)
        .unwrap()
        .build();
    let optimizer = Optimizer::new(OptimizerConfig::default().with_parallelism(dop));
    let physical = optimizer.optimize(&logical).unwrap();
    StageTree::build(physical).unwrap()
}

#[test]
fn two_stage_agg_has_parallel_partial_and_hash_partitioned_final() {
    let tree = agg_sort_tree(5);
    assert_eq!(tree.len(), 3, "scan stage, hash merge stage, output stage");

    let source = tree.fragment(StageId(2)).unwrap();
    assert_eq!(source.kind, StageKind::Source);
    assert_eq!(source.parallelism, 5, "partial phase keeps the scan DOP");
    // The partial→final exchange hash-partitions the group key across the
    // merge tasks instead of gathering to a single task.
    assert_eq!(
        source.output_partitioning,
        Partitioning::Hash {
            keys: vec![0],
            partitions: 2
        }
    );
    // Source fragment shape: PartialAggregate over Filter over TableScan.
    let mut names = Vec::new();
    source.root.visit(&mut |n| names.push(n.name()));
    assert_eq!(names, vec!["PartialAggregate", "Filter", "TableScan"]);
    // The partial output layout is group key + serialized SUM state.
    let partial_schema = source.schema();
    assert_eq!(partial_schema.len(), 2);
    assert_eq!(partial_schema.field(0).name, "k");
    assert_eq!(partial_schema.field(1).data_type, DataType::Int64);

    let merge = tree.fragment(StageId(1)).unwrap();
    assert_eq!(merge.kind, StageKind::Intermediate);
    assert_eq!(merge.parallelism, 2, "final phase runs distributed");
    let mut names = Vec::new();
    merge.root.visit(&mut |n| names.push(n.name()));
    assert_eq!(
        names,
        vec!["TopN", "FinalAggregate", "LocalExchange", "RemoteSource"],
        "per-task TopN pushed into the merge stage"
    );

    let output = tree.root();
    assert_eq!(output.kind, StageKind::Output);
    assert_eq!(output.parallelism, 1);
    let mut names = Vec::new();
    output.root.visit(&mut |n| names.push(n.name()));
    assert_eq!(names, vec!["TopN", "RemoteSource"]);
}

#[test]
fn fragment_cutting_yields_expected_stage_tree_shape() {
    let tree = agg_sort_tree(3);
    // Two cuts: output ← merge ← source, a chain of single-child stages.
    assert_eq!(tree.len(), 3);
    assert_eq!(tree.root().child_stages, vec![StageId(1)]);
    assert_eq!(
        tree.fragment(StageId(1)).unwrap().child_stages,
        vec![StageId(2)]
    );
    assert!(tree.fragment(StageId(2)).unwrap().child_stages.is_empty());
    assert_eq!(
        tree.execution_order(),
        vec![StageId(2), StageId(1), StageId(0)]
    );
    // The final stage's query-facing schema: group key + SUM output.
    let schema = tree.root().schema();
    assert_eq!(schema.field(0).name, "k");
    assert_eq!(schema.field(1).name, "total");
    assert_eq!(schema.field(1).data_type, DataType::Int64);
    // Display renders one block per stage.
    let text = tree.display();
    assert!(text.contains("Stage 0"));
    assert!(text.contains("Stage 1"));
    assert!(text.contains("Stage 2"));
}

#[test]
fn pipeline_splitting_breaks_at_local_exchange() {
    let tree = agg_sort_tree(4);

    // Merge stage: the local exchange splits it into the two pipelines of
    // paper Fig 6 — exchange client feeding the local exchange, and the
    // final-aggregation pipeline draining it.
    let merge_pipelines = split_pipelines(tree.fragment(StageId(1)).unwrap()).unwrap();
    assert_eq!(merge_pipelines.len(), 2);
    assert_eq!(
        merge_pipelines[0].operator_names(),
        vec!["ExchangeSource", "LocalSink"]
    );
    assert_eq!(
        merge_pipelines[1].operator_names(),
        vec!["LocalSource", "FinalAggregate", "TopN", "Output"]
    );
    assert_eq!(merge_pipelines[0].source_role(), SourceRole::RemoteExchange);
    assert_eq!(merge_pipelines[1].source_role(), SourceRole::LocalExchange);
    assert!(merge_pipelines[1].is_output());
    assert!(!merge_pipelines[0].is_output());

    // Output stage: one streaming pipeline merging the distributed TopNs.
    let output_pipelines = split_pipelines(tree.root()).unwrap();
    assert_eq!(output_pipelines.len(), 1);
    assert_eq!(
        output_pipelines[0].operator_names(),
        vec!["ExchangeSource", "TopN", "Output"]
    );

    // Source stage: one streaming pipeline, no breakers.
    let source_pipelines = split_pipelines(tree.fragment(StageId(2)).unwrap()).unwrap();
    assert_eq!(source_pipelines.len(), 1);
    assert_eq!(
        source_pipelines[0].operator_names(),
        vec!["TableScan", "Filter", "PartialAggregate", "Output"]
    );
    assert_eq!(source_pipelines[0].source_role(), SourceRole::TableScan);
}

#[test]
fn serial_aggregation_still_splits_stages() {
    // Even at scan DOP 1 the two-phase rewrite keeps partial and final in
    // separate stages — the boundary the runtime controller re-parallelizes.
    let tree = agg_sort_tree(1);
    assert_eq!(tree.len(), 3);
    assert_eq!(tree.fragment(StageId(2)).unwrap().parallelism, 1);
}

#[test]
fn single_scan_source_stages_are_elastic_eligible() {
    let tree = agg_sort_tree(4);
    // The scan-side stage gets runtime DOP bounds; the merge and output
    // stages (no scans / stage 0) stay pinned.
    let source = tree.fragment(StageId(2)).unwrap();
    assert_eq!(source.elastic_bounds, Some(DopBounds::new(1, 8)));
    assert_eq!(tree.fragment(StageId(1)).unwrap().elastic_bounds, None);
    assert_eq!(tree.root().elastic_bounds, None);
    // Bounds never shrink below the planned DOP.
    let wide = agg_sort_tree(16);
    let source = wide.fragment(StageId(2)).unwrap();
    assert_eq!(source.elastic_bounds, Some(DopBounds::new(1, 16)));
    // Bounds are overridable (and rejected on non-eligible stages).
    let mut tree = agg_sort_tree(4);
    tree.set_elastic_bounds(StageId(2), DopBounds::new(2, 4))
        .unwrap();
    assert_eq!(
        tree.fragment(StageId(2)).unwrap().elastic_bounds,
        Some(DopBounds::new(2, 4))
    );
    assert!(tree
        .set_elastic_bounds(StageId(0), DopBounds::new(1, 2))
        .is_err());
}

#[test]
fn broadcast_probe_stage_is_not_elastic_eligible() {
    // A probe-side Source stage reads the build side through a child
    // exchange; a task spawned mid-query could not replay that buffer, so
    // the stage must not advertise elasticity.
    let c = catalog();
    let schema = Schema::shared(vec![
        Field::new("k2", DataType::Utf8),
        Field::new("w", DataType::Int64),
    ]);
    let mut b = TableBuilder::new("dim2", schema, 8);
    b.push_row(vec![Value::Utf8("g0".into()), Value::Int64(1)]);
    b.register(&c, PartitioningScheme::new(2, 1), 0);

    let fact = LogicalPlanBuilder::scan(&c, "t").unwrap();
    let dim = LogicalPlanBuilder::scan(&c, "dim2").unwrap();
    let logical = fact.join(dim, &[("k", "k2")]).unwrap().build();
    let optimizer = Optimizer::new(OptimizerConfig::default().with_parallelism(3));
    let tree = StageTree::build(optimizer.optimize(&logical).unwrap()).unwrap();
    let probe = tree.fragment(StageId(1)).unwrap();
    assert_eq!(probe.kind, StageKind::Source);
    assert_eq!(probe.elastic_bounds, None, "probe reads a child exchange");
    // The gathered build-side scan stage is itself elastic.
    assert!(tree.fragment(StageId(2)).unwrap().elastic_bounds.is_some());
}

#[test]
fn distributed_scan_gets_gather_stage() {
    let c = catalog();
    let logical = LogicalPlanBuilder::scan(&c, "t").unwrap().build();
    let optimizer = Optimizer::new(OptimizerConfig::default().with_parallelism(4));
    let tree = StageTree::build(optimizer.optimize(&logical).unwrap()).unwrap();
    assert_eq!(tree.len(), 2);
    assert_eq!(tree.root().kind, StageKind::Output);
    assert!(matches!(
        tree.root().root.as_ref(),
        PhysicalNode::RemoteSource { .. }
    ));
    assert_eq!(tree.fragment(StageId(1)).unwrap().parallelism, 4);
}

#[test]
fn topn_pushdown_keeps_partial_topn_in_scan_stage() {
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "t").unwrap();
    let logical = b.top_n(&[("v", true)], 5).unwrap().build();
    let optimizer = Optimizer::new(OptimizerConfig::default().with_parallelism(4));
    let tree = StageTree::build(optimizer.optimize(&logical).unwrap()).unwrap();
    assert_eq!(tree.len(), 2);
    // Scan stage ends in a per-task TopN; output stage re-applies it.
    let source = tree.fragment(StageId(1)).unwrap();
    assert_eq!(source.root.name(), "TopN");
    assert_eq!(tree.root().root.name(), "TopN");
}

#[test]
fn join_build_side_becomes_child_stage_and_pipeline() {
    let c = catalog();
    let schema = Schema::shared(vec![
        Field::new("k2", DataType::Utf8),
        Field::new("w", DataType::Int64),
    ]);
    let mut b = TableBuilder::new("dim", schema, 8);
    b.push_row(vec![Value::Utf8("g0".into()), Value::Int64(1)]);
    b.register(&c, PartitioningScheme::new(2, 1), 0);

    let fact = LogicalPlanBuilder::scan(&c, "t").unwrap();
    let dim = LogicalPlanBuilder::scan(&c, "dim").unwrap();
    let logical = fact.join(dim, &[("k", "k2")]).unwrap().build();
    let optimizer = Optimizer::new(OptimizerConfig::default().with_parallelism(3));
    let tree = StageTree::build(optimizer.optimize(&logical).unwrap()).unwrap();

    // Three stages: output gather, probe stage (with the join), build-side
    // scan stage feeding it through an exchange.
    assert_eq!(tree.len(), 3);
    let probe_stage = tree.fragment(StageId(1)).unwrap();
    assert_eq!(probe_stage.kind, StageKind::Source);
    assert_eq!(probe_stage.child_stages, vec![StageId(2)]);
    let pipelines = split_pipelines(probe_stage).unwrap();
    assert_eq!(pipelines.len(), 2, "build side is its own pipeline");
    assert_eq!(
        pipelines[0].operator_names(),
        vec!["ExchangeSource", "HashJoinBuild"]
    );
    assert_eq!(
        pipelines[1].operator_names(),
        vec!["TableScan", "HashJoinProbe", "Output"]
    );
}

#[test]
fn pushdown_moves_filter_into_scan_stage() {
    // Filter above a projection ends up beneath it, next to the scan, so it
    // runs in the elastic source stage.
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "t").unwrap();
    let b = b
        .project(vec![
            (Expr::col(0), "k"),
            (Expr::mul(Expr::col(1), Expr::lit_i64(2)), "v2"),
        ])
        .unwrap();
    let pred = Expr::gt(b.col("v2").unwrap(), Expr::lit_i64(10));
    let logical = b.filter(pred).unwrap().build();
    let optimizer = Optimizer::new(OptimizerConfig::default().with_parallelism(2));
    let tree = StageTree::build(optimizer.optimize(&logical).unwrap()).unwrap();
    let source = tree.fragment(StageId(1)).unwrap();
    let mut names = Vec::new();
    source.root.visit(&mut |n| names.push(n.name()));
    assert_eq!(
        names,
        vec!["Project", "Filter", "TableScan"],
        "filter sank beneath the projection"
    );
    // And the physical plan still validates schema-wise end to end.
    assert_eq!(tree.root().schema().field(1).name, "v2");
}

#[test]
fn optimizer_rejects_invalid_plans() {
    let schema = Schema::shared(vec![Field::new("a", DataType::Int64)]);
    let bad = accordion_plan::logical::LogicalPlan::Filter {
        input: Arc::new(accordion_plan::logical::LogicalPlan::TableScan {
            table: "t".into(),
            table_schema: schema,
            projection: vec![0],
        }),
        predicate: Expr::gt(Expr::col(7), Expr::lit_i64(0)),
    };
    let optimizer = Optimizer::new(OptimizerConfig::default());
    assert!(optimizer.optimize(&bad).is_err());
}
