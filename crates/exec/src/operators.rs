//! Vectorized physical operators.
//!
//! Every operator is a [`PageStream`]: a pull-based iterator of [`Page`]s
//! that terminates with an end page (paper §4.3 — the same marker later PRs
//! reuse to shut drivers down mid-query). Streaming operators (filter,
//! project, limit, join probe) transform one page at a time; blocking
//! operators (aggregates, sort, top-N) drain their child on the first pull
//! and then emit their buffered result.
//!
//! Aggregation follows the paper's two-phase model exactly: the partial
//! operator serializes aggregate state into ordinary page columns, the
//! final operator merges them (possibly from many upstream tasks) and emits
//! the finished values. Both phases run on the vectorized hash engine:
//! pages are hashed column-at-a-time ([`accordion_data::hash::hash_columns`]),
//! rows are mapped to dense group ids by an open-addressing
//! [`GroupTable`], and typed [`AggAccumulator`] vectors are updated with
//! per-column kernels — no per-row `Value` materialization on the hot
//! path. Groups are emitted sorted by their encoded key bytes (the
//! iteration order of the `BTreeMap` this engine replaced), so output is
//! deterministic for a given input set regardless of page arrival order.

use std::collections::VecDeque;
use std::sync::Arc;

use accordion_common::{AccordionError, Result};
use accordion_data::column::Column;
use accordion_data::grouptable::GroupTable;
use accordion_data::hash::{hash_columns, hash_rows};
use accordion_data::page::{DataPage, EndReason, Page, PageBuilder};
use accordion_data::rowkey::{decode_keys_to_columns, encode_key_into};
use accordion_data::schema::{Schema, SchemaRef};
use accordion_data::sort::{sort_page, SortKey, TopNAccumulator};
use accordion_data::types::{DataType, Value};
use accordion_expr::agg::{AggAccumulator, AggSpec};
use accordion_expr::scalar::Expr;
use accordion_storage::split::{Split, SplitPages};

/// Pull-based page iterator; yields `Page::End` exactly once, after which
/// callers must stop pulling.
pub trait PageStream {
    fn next_page(&mut self) -> Result<Page>;
}

/// Boxed stream alias used to chain operators.
pub type BoxedStream = Box<dyn PageStream>;

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Streams the pages of a task's assigned splits, applying the scan's
/// column projection.
pub struct ScanSource {
    splits: Vec<Split>,
    projection: Vec<usize>,
    page_rows: usize,
    next_split: usize,
    current: Option<SplitPages>,
}

impl ScanSource {
    pub fn new(splits: Vec<Split>, projection: Vec<usize>, page_rows: usize) -> Self {
        ScanSource {
            splits,
            projection,
            page_rows,
            next_split: 0,
            current: None,
        }
    }
}

impl PageStream for ScanSource {
    fn next_page(&mut self) -> Result<Page> {
        loop {
            if self.current.is_none() {
                if self.next_split >= self.splits.len() {
                    return Ok(Page::end(EndReason::ScanExhausted));
                }
                self.current = Some(self.splits[self.next_split].open(self.page_rows)?);
                self.next_split += 1;
            }
            match self.current.as_mut().unwrap().next_page()? {
                Some(page) => {
                    if page.is_empty() {
                        continue;
                    }
                    return Ok(Page::data(page.project(&self.projection)));
                }
                None => self.current = None,
            }
        }
    }
}

/// Replays a pre-materialized list of pages (remote-exchange and
/// local-exchange consumers in the single-node executor). Pages are
/// `Arc`-shared, so replaying the same buffer to many consumers (broadcast)
/// never deep-copies.
pub struct QueueSource {
    pages: VecDeque<Arc<DataPage>>,
    end_reason: EndReason,
}

impl QueueSource {
    pub fn new(pages: Vec<Arc<DataPage>>, end_reason: EndReason) -> Self {
        QueueSource {
            pages: pages.into(),
            end_reason,
        }
    }
}

impl PageStream for QueueSource {
    fn next_page(&mut self) -> Result<Page> {
        loop {
            match self.pages.pop_front() {
                Some(p) if p.is_empty() => continue,
                Some(p) => return Ok(Page::Data(p)),
                None => return Ok(Page::end(self.end_reason)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming operators
// ---------------------------------------------------------------------------

/// Row filter: evaluates the predicate per page and gathers selected rows.
pub struct FilterOp {
    input: BoxedStream,
    predicate: Expr,
}

impl FilterOp {
    pub fn new(input: BoxedStream, predicate: Expr) -> Self {
        FilterOp { input, predicate }
    }
}

impl PageStream for FilterOp {
    fn next_page(&mut self) -> Result<Page> {
        loop {
            match self.input.next_page()? {
                Page::End(e) => return Ok(Page::End(e)),
                Page::Data(page) => {
                    let indices = self.predicate.filter_indices(&page)?;
                    if indices.is_empty() {
                        continue;
                    }
                    if indices.len() == page.row_count() {
                        return Ok(Page::Data(page));
                    }
                    return Ok(Page::data(page.gather(&indices)));
                }
            }
        }
    }
}

/// Column computation: evaluates each projected expression vectorized.
pub struct ProjectOp {
    input: BoxedStream,
    exprs: Vec<Expr>,
}

impl ProjectOp {
    pub fn new(input: BoxedStream, exprs: Vec<Expr>) -> Self {
        ProjectOp { input, exprs }
    }
}

impl PageStream for ProjectOp {
    fn next_page(&mut self) -> Result<Page> {
        match self.input.next_page()? {
            Page::End(e) => Ok(Page::End(e)),
            Page::Data(page) => {
                if self.exprs.is_empty() {
                    return Ok(Page::data(DataPage::row_count_only(page.row_count())));
                }
                let cols = self
                    .exprs
                    .iter()
                    .map(|e| e.evaluate(&page))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Page::data(DataPage::new(cols)))
            }
        }
    }
}

/// Plain LIMIT: truncates the stream after `n` rows and stops pulling its
/// child (the end-signal path of the paper's shutdown protocol).
pub struct LimitOp {
    input: BoxedStream,
    remaining: usize,
}

impl LimitOp {
    pub fn new(input: BoxedStream, n: usize) -> Self {
        LimitOp {
            input,
            remaining: n,
        }
    }
}

impl PageStream for LimitOp {
    fn next_page(&mut self) -> Result<Page> {
        if self.remaining == 0 {
            return Ok(Page::end(EndReason::EndSignal));
        }
        match self.input.next_page()? {
            Page::End(e) => Ok(Page::End(e)),
            Page::Data(page) => {
                if page.row_count() <= self.remaining {
                    self.remaining -= page.row_count();
                    Ok(Page::Data(page))
                } else {
                    let cut = page.slice(0, self.remaining);
                    self.remaining = 0;
                    Ok(Page::data(cut))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Maps each row of a page to a dense group id: hash every key column at
/// once with the vectorized kernels, then encode each row's key into one
/// amortized scratch buffer and probe the open-addressing table.
struct GroupIndex {
    table: GroupTable,
    key_scratch: Vec<u8>,
    /// Per-row group ids of the page most recently passed to [`assign`].
    gids: Vec<u32>,
}

impl GroupIndex {
    fn new() -> Self {
        GroupIndex {
            table: GroupTable::new(),
            key_scratch: Vec::new(),
            gids: Vec::new(),
        }
    }

    /// Assigns every row of `page` a group id (inserting unseen keys),
    /// leaving the per-row ids in `self.gids`.
    fn assign(&mut self, page: &DataPage, key_cols: &[usize]) {
        let hashes = hash_rows(page, key_cols);
        self.gids.clear();
        self.gids.reserve(page.row_count());
        for (row, &hash) in hashes.iter().enumerate() {
            self.key_scratch.clear();
            encode_key_into(page, key_cols, row, &mut self.key_scratch);
            self.gids.push(self.table.insert(hash, &self.key_scratch));
        }
    }

    /// Inserts the single empty-key group a global aggregate over zero
    /// rows still emits (COUNT(*) of an empty table is 0, not no-rows).
    fn insert_empty_key_group(&mut self) {
        self.table.insert(hash_columns(&[], 1)[0], &[]);
    }
}

/// Which side of the two-phase split a grouped operator emits.
enum AggOutput {
    /// Serialized partial state columns ([`AggAccumulator::partial_columns`]).
    Partial,
    /// Finished values ([`AggAccumulator::finish_column`]).
    Final,
}

/// Builds grouped-aggregation output pages column-wise: group-key columns
/// decoded straight from the table's key arena, aggregate columns gathered
/// from the accumulator vectors — no intermediate `Vec<Value>` rows.
/// Groups are emitted sorted by encoded key bytes so output order is
/// deterministic and identical to the replaced `BTreeMap` iteration.
fn emit_group_pages(
    index: &GroupIndex,
    accs: &[AggAccumulator],
    aggs: &[AggSpec],
    output: AggOutput,
    schema: &SchemaRef,
    key_count: usize,
    page_rows: usize,
) -> VecDeque<DataPage> {
    let order = index.table.sorted_ids();
    let mut out = VecDeque::new();
    if order.is_empty() {
        return out;
    }
    let key_types: Vec<DataType> = schema.fields()[..key_count]
        .iter()
        .map(|f| f.data_type)
        .collect();
    let mut cols = decode_keys_to_columns(
        order.iter().map(|&g| index.table.key(g)),
        &key_types,
        order.len(),
    );
    for (acc, spec) in accs.iter().zip(aggs) {
        match output {
            AggOutput::Partial => cols.extend(acc.partial_columns(&order, spec)),
            AggOutput::Final => cols.push(acc.finish_column(&order, spec)),
        }
    }
    let whole = if cols.is_empty() {
        DataPage::row_count_only(order.len())
    } else {
        DataPage::new(cols)
    };
    let page_rows = page_rows.max(1);
    let mut offset = 0;
    while offset < whole.row_count() {
        let take = page_rows.min(whole.row_count() - offset);
        out.push_back(whole.slice(offset, take));
        offset += take;
    }
    out
}

fn chunk_rows_into_pages(
    rows: impl Iterator<Item = Vec<Value>>,
    schema: SchemaRef,
    page_rows: usize,
) -> Vec<DataPage> {
    let mut out = Vec::new();
    let mut builder = PageBuilder::new(schema, page_rows.max(1));
    for row in rows {
        builder.push_row(row);
        if builder.is_full() {
            out.push(builder.finish());
        }
    }
    if !builder.is_empty() {
        out.push(builder.finish());
    }
    out
}

/// Partial (scan-side) phase of two-phase aggregation. Emits one row per
/// group: group values followed by each aggregate's serialized state.
pub struct PartialHashAggOp {
    input: BoxedStream,
    group_by: Vec<usize>,
    aggs: Vec<AggSpec>,
    output_schema: SchemaRef,
    page_rows: usize,
    out: Option<VecDeque<DataPage>>,
}

impl PartialHashAggOp {
    pub fn new(
        input: BoxedStream,
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
        output_schema: Schema,
        page_rows: usize,
    ) -> Self {
        PartialHashAggOp {
            input,
            group_by,
            aggs,
            output_schema: Arc::new(output_schema),
            page_rows,
            out: None,
        }
    }

    fn consume_input(&mut self) -> Result<VecDeque<DataPage>> {
        let mut index = GroupIndex::new();
        let mut accs: Vec<AggAccumulator> =
            self.aggs.iter().map(AggAccumulator::for_spec).collect();
        loop {
            let page = match self.input.next_page()? {
                Page::End(_) => break,
                Page::Data(p) => p,
            };
            // Evaluate each aggregate's argument once per page, then fold
            // whole argument columns into the typed accumulators.
            let arg_cols = self
                .aggs
                .iter()
                .map(|a| a.input.as_ref().map(|e| e.evaluate(&page)).transpose())
                .collect::<Result<Vec<_>>>()?;
            index.assign(&page, &self.group_by);
            let group_count = index.table.len();
            for (acc, col) in accs.iter_mut().zip(&arg_cols) {
                acc.resize(group_count);
                acc.update(col.as_ref(), &index.gids)?;
            }
        }
        // A global aggregate over zero rows still produces one row of
        // initial state (COUNT(*) of an empty table is 0, not no-rows).
        if self.group_by.is_empty() && index.table.is_empty() {
            index.insert_empty_key_group();
            for acc in accs.iter_mut() {
                acc.resize(1);
            }
        }
        Ok(emit_group_pages(
            &index,
            &accs,
            &self.aggs,
            AggOutput::Partial,
            &self.output_schema,
            self.group_by.len(),
            self.page_rows,
        ))
    }
}

impl PageStream for PartialHashAggOp {
    fn next_page(&mut self) -> Result<Page> {
        if self.out.is_none() {
            let pages = self.consume_input()?;
            self.out = Some(pages);
        }
        match self.out.as_mut().unwrap().pop_front() {
            Some(p) => Ok(Page::data(p)),
            None => Ok(Page::end(EndReason::UpstreamFinished)),
        }
    }
}

/// Final (merge) phase: consumes the partial layout — group columns first,
/// then each aggregate's serialized state columns — and emits final values.
pub struct FinalHashAggOp {
    input: BoxedStream,
    group_count: usize,
    aggs: Vec<AggSpec>,
    output_schema: SchemaRef,
    page_rows: usize,
    out: Option<VecDeque<DataPage>>,
}

impl FinalHashAggOp {
    pub fn new(
        input: BoxedStream,
        group_count: usize,
        aggs: Vec<AggSpec>,
        output_schema: Schema,
        page_rows: usize,
    ) -> Self {
        FinalHashAggOp {
            input,
            group_count,
            aggs,
            output_schema: Arc::new(output_schema),
            page_rows,
            out: None,
        }
    }

    fn consume_input(&mut self) -> Result<VecDeque<DataPage>> {
        let group_cols: Vec<usize> = (0..self.group_count).collect();
        // Column ranges of each aggregate's partial state in the input.
        let mut ranges = Vec::with_capacity(self.aggs.len());
        let mut at = self.group_count;
        for a in &self.aggs {
            let arity = a.partial_state_types().len();
            ranges.push(at..at + arity);
            at += arity;
        }
        let mut index = GroupIndex::new();
        let mut accs: Vec<AggAccumulator> =
            self.aggs.iter().map(AggAccumulator::for_spec).collect();
        loop {
            let page = match self.input.next_page()? {
                Page::End(_) => break,
                Page::Data(p) => p,
            };
            if page.num_columns() < at {
                return Err(AccordionError::Execution(format!(
                    "final aggregate expected ≥{at} partial columns, got {}",
                    page.num_columns()
                )));
            }
            index.assign(&page, &group_cols);
            let group_count = index.table.len();
            for (acc, range) in accs.iter_mut().zip(&ranges) {
                acc.resize(group_count);
                let state_cols: Vec<&Column> = range.clone().map(|ci| page.column(ci)).collect();
                acc.merge(&state_cols, &index.gids)?;
            }
        }
        if self.group_count == 0 && index.table.is_empty() {
            index.insert_empty_key_group();
            for acc in accs.iter_mut() {
                acc.resize(1);
            }
        }
        Ok(emit_group_pages(
            &index,
            &accs,
            &self.aggs,
            AggOutput::Final,
            &self.output_schema,
            self.group_count,
            self.page_rows,
        ))
    }
}

impl PageStream for FinalHashAggOp {
    fn next_page(&mut self) -> Result<Page> {
        if self.out.is_none() {
            let pages = self.consume_input()?;
            self.out = Some(pages);
        }
        match self.out.as_mut().unwrap().pop_front() {
            Some(p) => Ok(Page::data(p)),
            None => Ok(Page::end(EndReason::UpstreamFinished)),
        }
    }
}

// ---------------------------------------------------------------------------
// Ordering
// ---------------------------------------------------------------------------

/// Bounded ORDER BY + LIMIT via the shared [`TopNAccumulator`].
pub struct TopNOp {
    input: BoxedStream,
    keys: Vec<SortKey>,
    n: usize,
    schema: SchemaRef,
    page_rows: usize,
    out: Option<VecDeque<DataPage>>,
}

impl TopNOp {
    pub fn new(
        input: BoxedStream,
        keys: Vec<SortKey>,
        n: usize,
        schema: Schema,
        page_rows: usize,
    ) -> Self {
        TopNOp {
            input,
            keys,
            n,
            schema: Arc::new(schema),
            page_rows,
            out: None,
        }
    }
}

impl PageStream for TopNOp {
    fn next_page(&mut self) -> Result<Page> {
        if self.out.is_none() {
            let mut acc = TopNAccumulator::new(self.keys.clone(), self.n);
            loop {
                match self.input.next_page()? {
                    Page::End(_) => break,
                    Page::Data(p) => acc.push_page(&p),
                }
            }
            let pages = chunk_rows_into_pages(
                acc.finish_rows().into_iter(),
                self.schema.clone(),
                self.page_rows,
            );
            self.out = Some(pages.into());
        }
        match self.out.as_mut().unwrap().pop_front() {
            Some(p) => Ok(Page::data(p)),
            None => Ok(Page::end(EndReason::UpstreamFinished)),
        }
    }
}

/// Full sort: buffers all input, sorts once, emits re-chunked pages.
pub struct SortOp {
    input: BoxedStream,
    keys: Vec<SortKey>,
    page_rows: usize,
    out: Option<VecDeque<DataPage>>,
}

impl SortOp {
    pub fn new(input: BoxedStream, keys: Vec<SortKey>, page_rows: usize) -> Self {
        SortOp {
            input,
            keys,
            page_rows,
            out: None,
        }
    }
}

impl PageStream for SortOp {
    fn next_page(&mut self) -> Result<Page> {
        if self.out.is_none() {
            let mut pages: Vec<DataPage> = Vec::new();
            loop {
                match self.input.next_page()? {
                    Page::End(_) => break,
                    Page::Data(p) => pages.push(p.as_ref().clone()),
                }
            }
            let mut out = VecDeque::new();
            if !pages.is_empty() {
                let whole = DataPage::concat(&pages.iter().collect::<Vec<_>>());
                let sorted = sort_page(&whole, &self.keys);
                let mut offset = 0;
                while offset < sorted.row_count() {
                    let take = self.page_rows.max(1).min(sorted.row_count() - offset);
                    out.push_back(sorted.slice(offset, take));
                    offset += take;
                }
            }
            self.out = Some(out);
        }
        match self.out.as_mut().unwrap().pop_front() {
            Some(p) => Ok(Page::data(p)),
            None => Ok(Page::end(EndReason::UpstreamFinished)),
        }
    }
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// Sentinel group id for build rows excluded by a NULL key.
const NO_GROUP: u32 = u32::MAX;

/// The materialized build side of a hash join, shared by all probe drivers.
/// Rows whose keys contain SQL NULL are excluded (NULL never equi-joins).
/// With no key columns every row lands in one bucket — that is exactly
/// cross-join semantics, so `Cross` needs no special casing.
///
/// Layout: all build pages concatenated into one [`DataPage`], a
/// [`GroupTable`] mapping each distinct key to a group id, and a CSR index
/// (`starts`/`row_ids`) listing the build rows of each group in build
/// order. Probing returns a slice of row ids that feeds straight into the
/// column `gather` kernels.
pub struct JoinTable {
    build: Option<DataPage>,
    table: GroupTable,
    /// Group `g` matches build rows `row_ids[starts[g]..starts[g+1]]`.
    starts: Vec<u32>,
    row_ids: Vec<u32>,
}

impl JoinTable {
    pub fn build(pages: Vec<Arc<DataPage>>, keys: &[usize]) -> JoinTable {
        let mut table = GroupTable::new();
        if pages.is_empty() {
            return JoinTable {
                build: None,
                table,
                starts: vec![0],
                row_ids: Vec::new(),
            };
        }
        let refs: Vec<&DataPage> = pages.iter().map(|p| p.as_ref()).collect();
        let build = DataPage::concat(&refs);
        // Pass 1: vectorized hash, then assign each row its group id.
        let hashes = hash_rows(&build, keys);
        let mut scratch = Vec::new();
        let mut gid_of_row: Vec<u32> = Vec::with_capacity(build.row_count());
        'rows: for (row, &hash) in hashes.iter().enumerate() {
            for &k in keys {
                if !build.column(k).is_valid(row) {
                    gid_of_row.push(NO_GROUP);
                    continue 'rows;
                }
            }
            scratch.clear();
            encode_key_into(&build, keys, row, &mut scratch);
            gid_of_row.push(table.insert(hash, &scratch));
        }
        // Pass 2: CSR — count per group, prefix-sum, then fill in build-row
        // order (preserving the emission order of the map it replaced).
        let mut starts = vec![0u32; table.len() + 1];
        for &g in &gid_of_row {
            if g != NO_GROUP {
                starts[g as usize + 1] += 1;
            }
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        let mut cursor = starts.clone();
        let mut row_ids = vec![0u32; *starts.last().unwrap() as usize];
        for (row, &g) in gid_of_row.iter().enumerate() {
            if g == NO_GROUP {
                continue;
            }
            row_ids[cursor[g as usize] as usize] = row as u32;
            cursor[g as usize] += 1;
        }
        JoinTable {
            build: Some(build),
            table,
            starts,
            row_ids,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Number of distinct (non-NULL) join keys on the build side.
    pub fn distinct_keys(&self) -> usize {
        self.table.len()
    }

    fn build_page(&self) -> Option<&DataPage> {
        self.build.as_ref()
    }

    /// Build-row ids matching `key`; `hash` must come from the same page
    /// hash kernels used at build time.
    fn matches(&self, hash: u64, key: &[u8]) -> &[u32] {
        match self.table.get(hash, key) {
            Some(g) => {
                let g = g as usize;
                &self.row_ids[self.starts[g] as usize..self.starts[g + 1] as usize]
            }
            None => &[],
        }
    }
}

/// Streams probe pages against a [`JoinTable`], emitting probe ++ build
/// columns. Matches are collected as a pair of selection-index vectors
/// (probe row ids, build row ids) and the output page is assembled with the
/// column `gather` kernels — no per-row `Vec<Value>` assembly.
pub struct HashJoinProbeOp {
    input: BoxedStream,
    table: Arc<JoinTable>,
    keys: Vec<usize>,
    output_schema: SchemaRef,
    /// Capacity hint for the selection vectors (output batches may exceed
    /// it: like the row-at-a-time predecessor, the probe emits one output
    /// page per probe page).
    page_rows: usize,
    key_scratch: Vec<u8>,
}

impl HashJoinProbeOp {
    pub fn new(
        input: BoxedStream,
        table: Arc<JoinTable>,
        keys: Vec<usize>,
        output_schema: Schema,
        page_rows: usize,
    ) -> Self {
        HashJoinProbeOp {
            input,
            table,
            keys,
            output_schema: Arc::new(output_schema),
            page_rows,
            key_scratch: Vec::new(),
        }
    }
}

impl PageStream for HashJoinProbeOp {
    fn next_page(&mut self) -> Result<Page> {
        loop {
            let page = match self.input.next_page()? {
                Page::End(e) => return Ok(Page::End(e)),
                Page::Data(p) => p,
            };
            if self.table.is_empty() {
                continue;
            }
            let hashes = hash_rows(&page, &self.keys);
            let mut probe_sel: Vec<u32> = Vec::with_capacity(self.page_rows);
            let mut build_sel: Vec<u32> = Vec::with_capacity(self.page_rows);
            'rows: for (row, &hash) in hashes.iter().enumerate() {
                for &k in &self.keys {
                    if !page.column(k).is_valid(row) {
                        continue 'rows;
                    }
                }
                self.key_scratch.clear();
                encode_key_into(&page, &self.keys, row, &mut self.key_scratch);
                for &b in self.table.matches(hash, &self.key_scratch) {
                    probe_sel.push(row as u32);
                    build_sel.push(b);
                }
            }
            if probe_sel.is_empty() {
                continue;
            }
            let build = self
                .table
                .build_page()
                .expect("non-empty join table has build rows");
            let mut cols: Vec<Column> = page
                .columns()
                .iter()
                .map(|c| c.gather(&probe_sel))
                .collect();
            cols.extend(build.columns().iter().map(|c| c.gather(&build_sel)));
            debug_assert_eq!(cols.len(), self.output_schema.len());
            let out = if cols.is_empty() {
                DataPage::row_count_only(probe_sel.len())
            } else {
                DataPage::new(cols)
            };
            return Ok(Page::data(out));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::column::Column;
    use accordion_data::schema::Field;
    use accordion_data::types::DataType;
    use accordion_expr::agg::AggKind;

    fn pages_source(pages: Vec<DataPage>) -> BoxedStream {
        Box::new(QueueSource::new(
            pages.into_iter().map(Arc::new).collect(),
            EndReason::UpstreamFinished,
        ))
    }

    fn drain(mut s: impl PageStream) -> Vec<DataPage> {
        let mut out = Vec::new();
        loop {
            match s.next_page().unwrap() {
                Page::End(_) => return out,
                Page::Data(p) => out.push(p.as_ref().clone()),
            }
        }
    }

    #[test]
    fn filter_and_project_stream() {
        let page = DataPage::new(vec![Column::from_i64(vec![1, 2, 3, 4])]);
        let filtered = FilterOp::new(
            pages_source(vec![page]),
            Expr::gt(Expr::col(0), Expr::lit_i64(2)),
        );
        let doubled = ProjectOp::new(
            Box::new(filtered),
            vec![Expr::mul(Expr::col(0), Expr::lit_i64(2))],
        );
        let out = drain(doubled);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].column(0).as_i64().unwrap(), &[6, 8]);
    }

    #[test]
    fn limit_cuts_across_pages() {
        let p1 = DataPage::new(vec![Column::from_i64(vec![1, 2])]);
        let p2 = DataPage::new(vec![Column::from_i64(vec![3, 4])]);
        let out = drain(LimitOp::new(pages_source(vec![p1, p2]), 3));
        let total: usize = out.iter().map(|p| p.row_count()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn partial_then_final_agg_round_trip() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]);
        let aggs = vec![AggSpec::new(
            AggKind::Avg,
            Expr::col(1),
            DataType::Int64,
            "a",
        )];
        let partial_schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("a#p0", DataType::Float64),
            Field::new("a#p1", DataType::Int64),
        ]);
        let final_schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("a", DataType::Float64),
        ]);
        let _ = schema;
        let page = DataPage::new(vec![
            Column::from_i64(vec![1, 2, 1, 2]),
            Column::from_i64(vec![10, 20, 30, 40]),
        ]);
        let partial = PartialHashAggOp::new(
            pages_source(vec![page]),
            vec![0],
            aggs.clone(),
            partial_schema,
            8,
        );
        let fin = FinalHashAggOp::new(Box::new(partial), 1, aggs, final_schema, 8);
        let out = drain(fin);
        assert_eq!(out.len(), 1);
        let rows = out[0].rows();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int64(1), Value::Float64(20.0)],
                vec![Value::Int64(2), Value::Float64(30.0)],
            ]
        );
    }

    #[test]
    fn global_agg_over_empty_input_yields_one_row() {
        let aggs = vec![AggSpec::count_star("c")];
        let partial_schema = Schema::new(vec![Field::new("c#p0", DataType::Int64)]);
        let final_schema = Schema::new(vec![Field::new("c", DataType::Int64)]);
        let partial = PartialHashAggOp::new(
            pages_source(vec![]),
            vec![],
            aggs.clone(),
            partial_schema,
            8,
        );
        let fin = FinalHashAggOp::new(Box::new(partial), 0, aggs, final_schema, 8);
        let out = drain(fin);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rows(), vec![vec![Value::Int64(0)]]);
    }

    #[test]
    fn join_table_skips_null_keys_and_cross_joins_on_no_keys() {
        use accordion_data::column::ColumnBuilder;
        let mut b = ColumnBuilder::new(DataType::Int64, 3);
        b.push(Value::Int64(1));
        b.push(Value::Null);
        b.push(Value::Int64(2));
        let build_page = DataPage::new(vec![b.finish()]);
        let build_page = Arc::new(build_page);
        let t = JoinTable::build(vec![build_page.clone()], &[0]);
        assert_eq!(t.distinct_keys(), 2, "null key row excluded");
        let cross = JoinTable::build(vec![build_page], &[]);
        let empty_key_hash = hash_columns(&[], 1)[0];
        assert_eq!(
            cross.matches(empty_key_hash, &[]).len(),
            3,
            "no keys ⇒ one bucket"
        );
    }

    #[test]
    fn join_probe_emits_selection_gathered_rows() {
        use accordion_data::column::ColumnBuilder;
        // Build side: key 1 appears twice (rows split across two pages),
        // key 3 once, one NULL-key row excluded.
        let bp1 = Arc::new(DataPage::new(vec![
            Column::from_i64(vec![1, 3]),
            Column::from_strings(&["a", "c"]),
        ]));
        let mut nk = ColumnBuilder::new(DataType::Int64, 2);
        nk.push(Value::Int64(1));
        nk.push(Value::Null);
        let bp2 = Arc::new(DataPage::new(vec![
            nk.finish(),
            Column::from_strings(&["b", "dead"]),
        ]));
        let table = Arc::new(JoinTable::build(vec![bp1, bp2], &[0]));
        // Probe side: 2 misses, NULL skipped, 1 hits twice, 3 hits once.
        let mut pk = ColumnBuilder::new(DataType::Int64, 4);
        pk.push(Value::Int64(2));
        pk.push(Value::Null);
        pk.push(Value::Int64(1));
        pk.push(Value::Int64(3));
        let probe = DataPage::new(vec![pk.finish(), Column::from_i64(vec![20, 0, 10, 30])]);
        let schema = Schema::new(vec![
            Field::new("pk", DataType::Int64),
            Field::new("pv", DataType::Int64),
            Field::new("bk", DataType::Int64),
            Field::new("bv", DataType::Utf8),
        ]);
        let op = HashJoinProbeOp::new(pages_source(vec![probe]), table, vec![0], schema, 8);
        let out = drain(op);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].rows(),
            vec![
                // Probe row for key 1 matches both build rows, in build order.
                vec![
                    Value::Int64(1),
                    Value::Int64(10),
                    Value::Int64(1),
                    Value::Utf8("a".into())
                ],
                vec![
                    Value::Int64(1),
                    Value::Int64(10),
                    Value::Int64(1),
                    Value::Utf8("b".into())
                ],
                vec![
                    Value::Int64(3),
                    Value::Int64(30),
                    Value::Int64(3),
                    Value::Utf8("c".into())
                ],
            ]
        );
    }

    #[test]
    fn sort_op_rechunks_sorted_output() {
        let p1 = DataPage::new(vec![Column::from_i64(vec![3, 1])]);
        let p2 = DataPage::new(vec![Column::from_i64(vec![2])]);
        let out = drain(SortOp::new(
            pages_source(vec![p1, p2]),
            vec![SortKey::asc(0)],
            2,
        ));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].column(0).as_i64().unwrap(), &[1, 2]);
        assert_eq!(out[1].column(0).as_i64().unwrap(), &[3]);
    }
}
