//! Vectorized physical operators.
//!
//! Every operator is a [`PageStream`]: a pull-based iterator of [`Page`]s
//! that terminates with an end page (paper §4.3 — the same marker later PRs
//! reuse to shut drivers down mid-query). Streaming operators (filter,
//! project, limit, join probe) transform one page at a time; blocking
//! operators (aggregates, sort, top-N) drain their child on the first pull
//! and then emit their buffered result.
//!
//! Aggregation follows the paper's two-phase model exactly: the partial
//! operator serializes [`AggState`]s into ordinary page columns, the final
//! operator merges them (possibly from many upstream tasks) and emits the
//! finished values. Group iteration uses a `BTreeMap` keyed by the injective
//! row-key encoding, so output order is deterministic for a given input set
//! regardless of page arrival order.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use accordion_common::{AccordionError, Result};
use accordion_data::page::{DataPage, EndReason, Page, PageBuilder};
use accordion_data::rowkey::encode_key;
use accordion_data::schema::{Schema, SchemaRef};
use accordion_data::sort::{sort_page, SortKey, TopNAccumulator};
use accordion_data::types::Value;
use accordion_expr::agg::{AggSpec, AggState};
use accordion_expr::scalar::Expr;
use accordion_storage::split::{Split, SplitPages};

/// Pull-based page iterator; yields `Page::End` exactly once, after which
/// callers must stop pulling.
pub trait PageStream {
    fn next_page(&mut self) -> Result<Page>;
}

/// Boxed stream alias used to chain operators.
pub type BoxedStream = Box<dyn PageStream>;

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Streams the pages of a task's assigned splits, applying the scan's
/// column projection.
pub struct ScanSource {
    splits: Vec<Split>,
    projection: Vec<usize>,
    page_rows: usize,
    next_split: usize,
    current: Option<SplitPages>,
}

impl ScanSource {
    pub fn new(splits: Vec<Split>, projection: Vec<usize>, page_rows: usize) -> Self {
        ScanSource {
            splits,
            projection,
            page_rows,
            next_split: 0,
            current: None,
        }
    }
}

impl PageStream for ScanSource {
    fn next_page(&mut self) -> Result<Page> {
        loop {
            if self.current.is_none() {
                if self.next_split >= self.splits.len() {
                    return Ok(Page::end(EndReason::ScanExhausted));
                }
                self.current = Some(self.splits[self.next_split].open(self.page_rows)?);
                self.next_split += 1;
            }
            match self.current.as_mut().unwrap().next_page()? {
                Some(page) => {
                    if page.is_empty() {
                        continue;
                    }
                    return Ok(Page::data(page.project(&self.projection)));
                }
                None => self.current = None,
            }
        }
    }
}

/// Replays a pre-materialized list of pages (remote-exchange and
/// local-exchange consumers in the single-node executor). Pages are
/// `Arc`-shared, so replaying the same buffer to many consumers (broadcast)
/// never deep-copies.
pub struct QueueSource {
    pages: VecDeque<Arc<DataPage>>,
    end_reason: EndReason,
}

impl QueueSource {
    pub fn new(pages: Vec<Arc<DataPage>>, end_reason: EndReason) -> Self {
        QueueSource {
            pages: pages.into(),
            end_reason,
        }
    }
}

impl PageStream for QueueSource {
    fn next_page(&mut self) -> Result<Page> {
        loop {
            match self.pages.pop_front() {
                Some(p) if p.is_empty() => continue,
                Some(p) => return Ok(Page::Data(p)),
                None => return Ok(Page::end(self.end_reason)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming operators
// ---------------------------------------------------------------------------

/// Row filter: evaluates the predicate per page and gathers selected rows.
pub struct FilterOp {
    input: BoxedStream,
    predicate: Expr,
}

impl FilterOp {
    pub fn new(input: BoxedStream, predicate: Expr) -> Self {
        FilterOp { input, predicate }
    }
}

impl PageStream for FilterOp {
    fn next_page(&mut self) -> Result<Page> {
        loop {
            match self.input.next_page()? {
                Page::End(e) => return Ok(Page::End(e)),
                Page::Data(page) => {
                    let indices = self.predicate.filter_indices(&page)?;
                    if indices.is_empty() {
                        continue;
                    }
                    if indices.len() == page.row_count() {
                        return Ok(Page::Data(page));
                    }
                    return Ok(Page::data(page.gather(&indices)));
                }
            }
        }
    }
}

/// Column computation: evaluates each projected expression vectorized.
pub struct ProjectOp {
    input: BoxedStream,
    exprs: Vec<Expr>,
}

impl ProjectOp {
    pub fn new(input: BoxedStream, exprs: Vec<Expr>) -> Self {
        ProjectOp { input, exprs }
    }
}

impl PageStream for ProjectOp {
    fn next_page(&mut self) -> Result<Page> {
        match self.input.next_page()? {
            Page::End(e) => Ok(Page::End(e)),
            Page::Data(page) => {
                if self.exprs.is_empty() {
                    return Ok(Page::data(DataPage::row_count_only(page.row_count())));
                }
                let cols = self
                    .exprs
                    .iter()
                    .map(|e| e.evaluate(&page))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Page::data(DataPage::new(cols)))
            }
        }
    }
}

/// Plain LIMIT: truncates the stream after `n` rows and stops pulling its
/// child (the end-signal path of the paper's shutdown protocol).
pub struct LimitOp {
    input: BoxedStream,
    remaining: usize,
}

impl LimitOp {
    pub fn new(input: BoxedStream, n: usize) -> Self {
        LimitOp {
            input,
            remaining: n,
        }
    }
}

impl PageStream for LimitOp {
    fn next_page(&mut self) -> Result<Page> {
        if self.remaining == 0 {
            return Ok(Page::end(EndReason::EndSignal));
        }
        match self.input.next_page()? {
            Page::End(e) => Ok(Page::End(e)),
            Page::Data(page) => {
                if page.row_count() <= self.remaining {
                    self.remaining -= page.row_count();
                    Ok(Page::Data(page))
                } else {
                    let cut = page.slice(0, self.remaining);
                    self.remaining = 0;
                    Ok(Page::data(cut))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

struct Group {
    values: Vec<Value>,
    states: Vec<AggState>,
}

fn chunk_rows_into_pages(
    rows: impl Iterator<Item = Vec<Value>>,
    schema: SchemaRef,
    page_rows: usize,
) -> Vec<DataPage> {
    let mut out = Vec::new();
    let mut builder = PageBuilder::new(schema, page_rows.max(1));
    for row in rows {
        builder.push_row(row);
        if builder.is_full() {
            out.push(builder.finish());
        }
    }
    if !builder.is_empty() {
        out.push(builder.finish());
    }
    out
}

/// Partial (scan-side) phase of two-phase aggregation. Emits one row per
/// group: group values followed by each aggregate's serialized state.
pub struct PartialHashAggOp {
    input: BoxedStream,
    group_by: Vec<usize>,
    aggs: Vec<AggSpec>,
    output_schema: SchemaRef,
    page_rows: usize,
    out: Option<VecDeque<DataPage>>,
}

impl PartialHashAggOp {
    pub fn new(
        input: BoxedStream,
        group_by: Vec<usize>,
        aggs: Vec<AggSpec>,
        output_schema: Schema,
        page_rows: usize,
    ) -> Self {
        PartialHashAggOp {
            input,
            group_by,
            aggs,
            output_schema: Arc::new(output_schema),
            page_rows,
            out: None,
        }
    }

    fn consume_input(&mut self) -> Result<VecDeque<DataPage>> {
        let mut groups: BTreeMap<Vec<u8>, Group> = BTreeMap::new();
        loop {
            let page = match self.input.next_page()? {
                Page::End(_) => break,
                Page::Data(p) => p,
            };
            // Evaluate each aggregate's argument once per page.
            let arg_cols = self
                .aggs
                .iter()
                .map(|a| a.input.as_ref().map(|e| e.evaluate(&page)).transpose())
                .collect::<Result<Vec<_>>>()?;
            for row in 0..page.row_count() {
                let key = encode_key(&page, &self.group_by, row);
                let group = groups.entry(key).or_insert_with(|| Group {
                    values: self
                        .group_by
                        .iter()
                        .map(|&gi| page.column(gi).value(row))
                        .collect(),
                    states: self.aggs.iter().map(|a| a.new_state()).collect(),
                });
                for (state, col) in group.states.iter_mut().zip(&arg_cols) {
                    match col {
                        Some(c) => state.update(&c.value(row)),
                        // COUNT(*): every row counts.
                        None => state.update(&Value::Int64(1)),
                    }
                }
            }
        }
        // A global aggregate over zero rows still produces one row of
        // initial state (COUNT(*) of an empty table is 0, not no-rows).
        if self.group_by.is_empty() && groups.is_empty() {
            groups.insert(
                Vec::new(),
                Group {
                    values: Vec::new(),
                    states: self.aggs.iter().map(|a| a.new_state()).collect(),
                },
            );
        }
        let rows = groups.into_values().map(|g| {
            let mut row = g.values;
            for s in &g.states {
                row.extend(s.partial_values());
            }
            row
        });
        Ok(chunk_rows_into_pages(rows, self.output_schema.clone(), self.page_rows).into())
    }
}

impl PageStream for PartialHashAggOp {
    fn next_page(&mut self) -> Result<Page> {
        if self.out.is_none() {
            let pages = self.consume_input()?;
            self.out = Some(pages);
        }
        match self.out.as_mut().unwrap().pop_front() {
            Some(p) => Ok(Page::data(p)),
            None => Ok(Page::end(EndReason::UpstreamFinished)),
        }
    }
}

/// Final (merge) phase: consumes the partial layout — group columns first,
/// then each aggregate's serialized state columns — and emits final values.
pub struct FinalHashAggOp {
    input: BoxedStream,
    group_count: usize,
    aggs: Vec<AggSpec>,
    output_schema: SchemaRef,
    page_rows: usize,
    out: Option<VecDeque<DataPage>>,
}

impl FinalHashAggOp {
    pub fn new(
        input: BoxedStream,
        group_count: usize,
        aggs: Vec<AggSpec>,
        output_schema: Schema,
        page_rows: usize,
    ) -> Self {
        FinalHashAggOp {
            input,
            group_count,
            aggs,
            output_schema: Arc::new(output_schema),
            page_rows,
            out: None,
        }
    }

    fn consume_input(&mut self) -> Result<VecDeque<DataPage>> {
        let group_cols: Vec<usize> = (0..self.group_count).collect();
        // Column ranges of each aggregate's partial state in the input.
        let mut ranges = Vec::with_capacity(self.aggs.len());
        let mut at = self.group_count;
        for a in &self.aggs {
            let arity = a.partial_state_types().len();
            ranges.push(at..at + arity);
            at += arity;
        }
        let mut groups: BTreeMap<Vec<u8>, Group> = BTreeMap::new();
        loop {
            let page = match self.input.next_page()? {
                Page::End(_) => break,
                Page::Data(p) => p,
            };
            if page.num_columns() < at {
                return Err(AccordionError::Execution(format!(
                    "final aggregate expected ≥{at} partial columns, got {}",
                    page.num_columns()
                )));
            }
            for row in 0..page.row_count() {
                let key = encode_key(&page, &group_cols, row);
                let group = groups.entry(key).or_insert_with(|| Group {
                    values: group_cols
                        .iter()
                        .map(|&gi| page.column(gi).value(row))
                        .collect(),
                    states: self.aggs.iter().map(|a| a.new_state()).collect(),
                });
                for (state, range) in group.states.iter_mut().zip(&ranges) {
                    let partial: Vec<Value> =
                        range.clone().map(|ci| page.column(ci).value(row)).collect();
                    state.merge_partial(&partial)?;
                }
            }
        }
        if self.group_count == 0 && groups.is_empty() {
            groups.insert(
                Vec::new(),
                Group {
                    values: Vec::new(),
                    states: self.aggs.iter().map(|a| a.new_state()).collect(),
                },
            );
        }
        let rows = groups.into_values().map(|g| {
            let mut row = g.values;
            row.extend(g.states.iter().map(|s| s.finish()));
            row
        });
        Ok(chunk_rows_into_pages(rows, self.output_schema.clone(), self.page_rows).into())
    }
}

impl PageStream for FinalHashAggOp {
    fn next_page(&mut self) -> Result<Page> {
        if self.out.is_none() {
            let pages = self.consume_input()?;
            self.out = Some(pages);
        }
        match self.out.as_mut().unwrap().pop_front() {
            Some(p) => Ok(Page::data(p)),
            None => Ok(Page::end(EndReason::UpstreamFinished)),
        }
    }
}

// ---------------------------------------------------------------------------
// Ordering
// ---------------------------------------------------------------------------

/// Bounded ORDER BY + LIMIT via the shared [`TopNAccumulator`].
pub struct TopNOp {
    input: BoxedStream,
    keys: Vec<SortKey>,
    n: usize,
    schema: SchemaRef,
    page_rows: usize,
    out: Option<VecDeque<DataPage>>,
}

impl TopNOp {
    pub fn new(
        input: BoxedStream,
        keys: Vec<SortKey>,
        n: usize,
        schema: Schema,
        page_rows: usize,
    ) -> Self {
        TopNOp {
            input,
            keys,
            n,
            schema: Arc::new(schema),
            page_rows,
            out: None,
        }
    }
}

impl PageStream for TopNOp {
    fn next_page(&mut self) -> Result<Page> {
        if self.out.is_none() {
            let mut acc = TopNAccumulator::new(self.keys.clone(), self.n);
            loop {
                match self.input.next_page()? {
                    Page::End(_) => break,
                    Page::Data(p) => acc.push_page(&p),
                }
            }
            let pages = chunk_rows_into_pages(
                acc.finish_rows().into_iter(),
                self.schema.clone(),
                self.page_rows,
            );
            self.out = Some(pages.into());
        }
        match self.out.as_mut().unwrap().pop_front() {
            Some(p) => Ok(Page::data(p)),
            None => Ok(Page::end(EndReason::UpstreamFinished)),
        }
    }
}

/// Full sort: buffers all input, sorts once, emits re-chunked pages.
pub struct SortOp {
    input: BoxedStream,
    keys: Vec<SortKey>,
    page_rows: usize,
    out: Option<VecDeque<DataPage>>,
}

impl SortOp {
    pub fn new(input: BoxedStream, keys: Vec<SortKey>, page_rows: usize) -> Self {
        SortOp {
            input,
            keys,
            page_rows,
            out: None,
        }
    }
}

impl PageStream for SortOp {
    fn next_page(&mut self) -> Result<Page> {
        if self.out.is_none() {
            let mut pages: Vec<DataPage> = Vec::new();
            loop {
                match self.input.next_page()? {
                    Page::End(_) => break,
                    Page::Data(p) => pages.push(p.as_ref().clone()),
                }
            }
            let mut out = VecDeque::new();
            if !pages.is_empty() {
                let whole = DataPage::concat(&pages.iter().collect::<Vec<_>>());
                let sorted = sort_page(&whole, &self.keys);
                let mut offset = 0;
                while offset < sorted.row_count() {
                    let take = self.page_rows.max(1).min(sorted.row_count() - offset);
                    out.push_back(sorted.slice(offset, take));
                    offset += take;
                }
            }
            self.out = Some(out);
        }
        match self.out.as_mut().unwrap().pop_front() {
            Some(p) => Ok(Page::data(p)),
            None => Ok(Page::end(EndReason::UpstreamFinished)),
        }
    }
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// The materialized build side of a hash join, shared by all probe drivers.
/// Rows whose keys contain SQL NULL are excluded (NULL never equi-joins).
/// With no key columns every row lands in one bucket — that is exactly
/// cross-join semantics, so `Cross` needs no special casing.
pub struct JoinTable {
    pages: Vec<Arc<DataPage>>,
    index: HashMap<Vec<u8>, Vec<(u32, u32)>>,
}

impl JoinTable {
    pub fn build(pages: Vec<Arc<DataPage>>, keys: &[usize]) -> JoinTable {
        let mut index: HashMap<Vec<u8>, Vec<(u32, u32)>> = HashMap::new();
        for (pi, page) in pages.iter().enumerate() {
            'rows: for row in 0..page.row_count() {
                for &k in keys {
                    if !page.column(k).is_valid(row) {
                        continue 'rows;
                    }
                }
                index
                    .entry(encode_key(page, keys, row))
                    .or_default()
                    .push((pi as u32, row as u32));
            }
        }
        JoinTable { pages, index }
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn matches(&self, key: &[u8]) -> &[(u32, u32)] {
        self.index.get(key).map_or(&[], |v| v.as_slice())
    }

    fn row(&self, loc: (u32, u32)) -> Vec<Value> {
        self.pages[loc.0 as usize].row(loc.1 as usize)
    }
}

/// Streams probe pages against a [`JoinTable`], emitting probe ++ build rows.
pub struct HashJoinProbeOp {
    input: BoxedStream,
    table: Arc<JoinTable>,
    keys: Vec<usize>,
    output_schema: SchemaRef,
    page_rows: usize,
}

impl HashJoinProbeOp {
    pub fn new(
        input: BoxedStream,
        table: Arc<JoinTable>,
        keys: Vec<usize>,
        output_schema: Schema,
        page_rows: usize,
    ) -> Self {
        HashJoinProbeOp {
            input,
            table,
            keys,
            output_schema: Arc::new(output_schema),
            page_rows,
        }
    }
}

impl PageStream for HashJoinProbeOp {
    fn next_page(&mut self) -> Result<Page> {
        loop {
            let page = match self.input.next_page()? {
                Page::End(e) => return Ok(Page::End(e)),
                Page::Data(p) => p,
            };
            if self.table.is_empty() {
                continue;
            }
            let mut builder = PageBuilder::new(self.output_schema.clone(), self.page_rows.max(1));
            'rows: for row in 0..page.row_count() {
                for &k in &self.keys {
                    if !page.column(k).is_valid(row) {
                        continue 'rows;
                    }
                }
                let key = encode_key(&page, &self.keys, row);
                for &loc in self.table.matches(&key) {
                    let mut out_row = page.row(row);
                    out_row.extend(self.table.row(loc));
                    builder.push_row(out_row);
                }
            }
            if !builder.is_empty() {
                return Ok(Page::data(builder.finish()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::column::Column;
    use accordion_data::schema::Field;
    use accordion_data::types::DataType;
    use accordion_expr::agg::AggKind;

    fn pages_source(pages: Vec<DataPage>) -> BoxedStream {
        Box::new(QueueSource::new(
            pages.into_iter().map(Arc::new).collect(),
            EndReason::UpstreamFinished,
        ))
    }

    fn drain(mut s: impl PageStream) -> Vec<DataPage> {
        let mut out = Vec::new();
        loop {
            match s.next_page().unwrap() {
                Page::End(_) => return out,
                Page::Data(p) => out.push(p.as_ref().clone()),
            }
        }
    }

    #[test]
    fn filter_and_project_stream() {
        let page = DataPage::new(vec![Column::from_i64(vec![1, 2, 3, 4])]);
        let filtered = FilterOp::new(
            pages_source(vec![page]),
            Expr::gt(Expr::col(0), Expr::lit_i64(2)),
        );
        let doubled = ProjectOp::new(
            Box::new(filtered),
            vec![Expr::mul(Expr::col(0), Expr::lit_i64(2))],
        );
        let out = drain(doubled);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].column(0).as_i64().unwrap(), &[6, 8]);
    }

    #[test]
    fn limit_cuts_across_pages() {
        let p1 = DataPage::new(vec![Column::from_i64(vec![1, 2])]);
        let p2 = DataPage::new(vec![Column::from_i64(vec![3, 4])]);
        let out = drain(LimitOp::new(pages_source(vec![p1, p2]), 3));
        let total: usize = out.iter().map(|p| p.row_count()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn partial_then_final_agg_round_trip() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]);
        let aggs = vec![AggSpec::new(
            AggKind::Avg,
            Expr::col(1),
            DataType::Int64,
            "a",
        )];
        let partial_schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("a#p0", DataType::Float64),
            Field::new("a#p1", DataType::Int64),
        ]);
        let final_schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("a", DataType::Float64),
        ]);
        let _ = schema;
        let page = DataPage::new(vec![
            Column::from_i64(vec![1, 2, 1, 2]),
            Column::from_i64(vec![10, 20, 30, 40]),
        ]);
        let partial = PartialHashAggOp::new(
            pages_source(vec![page]),
            vec![0],
            aggs.clone(),
            partial_schema,
            8,
        );
        let fin = FinalHashAggOp::new(Box::new(partial), 1, aggs, final_schema, 8);
        let out = drain(fin);
        assert_eq!(out.len(), 1);
        let rows = out[0].rows();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int64(1), Value::Float64(20.0)],
                vec![Value::Int64(2), Value::Float64(30.0)],
            ]
        );
    }

    #[test]
    fn global_agg_over_empty_input_yields_one_row() {
        let aggs = vec![AggSpec::count_star("c")];
        let partial_schema = Schema::new(vec![Field::new("c#p0", DataType::Int64)]);
        let final_schema = Schema::new(vec![Field::new("c", DataType::Int64)]);
        let partial = PartialHashAggOp::new(
            pages_source(vec![]),
            vec![],
            aggs.clone(),
            partial_schema,
            8,
        );
        let fin = FinalHashAggOp::new(Box::new(partial), 0, aggs, final_schema, 8);
        let out = drain(fin);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rows(), vec![vec![Value::Int64(0)]]);
    }

    #[test]
    fn join_table_skips_null_keys_and_cross_joins_on_no_keys() {
        use accordion_data::column::ColumnBuilder;
        let mut b = ColumnBuilder::new(DataType::Int64, 3);
        b.push(Value::Int64(1));
        b.push(Value::Null);
        b.push(Value::Int64(2));
        let build_page = DataPage::new(vec![b.finish()]);
        let build_page = Arc::new(build_page);
        let t = JoinTable::build(vec![build_page.clone()], &[0]);
        assert_eq!(t.index.len(), 2, "null key row excluded");
        let cross = JoinTable::build(vec![build_page], &[]);
        assert_eq!(cross.matches(&[]).len(), 3, "no keys ⇒ one bucket");
    }

    #[test]
    fn sort_op_rechunks_sorted_output() {
        let p1 = DataPage::new(vec![Column::from_i64(vec![3, 1])]);
        let p2 = DataPage::new(vec![Column::from_i64(vec![2])]);
        let out = drain(SortOp::new(
            pages_source(vec![p1, p2]),
            vec![SortKey::asc(0)],
            2,
        ));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].column(0).as_i64().unwrap(), &[1, 2]);
        assert_eq!(out[1].column(0).as_i64().unwrap(), &[3]);
    }
}
