//! The shared split queue: resumable scans for intra-query elasticity.
//!
//! Static split assignment (`split_index % parallelism == task_index`) pins
//! a stage's DOP for the lifetime of the query. A [`SplitQueue`] removes
//! that coupling: every task of an elastic Source stage **claims** its next
//! split from one shared queue, so the unconsumed `SplitSet` remainder is a
//! single pool any task set — including one grown or shrunk mid-query — can
//! drain. Each split is handed out exactly once, which is what makes
//! re-parallelization lossless and duplication-free by construction.
//!
//! The queue doubles as the controller's **decision boundary**: with a
//! pause threshold set, claims beyond it block (yielding the scheduler's
//! compute slot) until the controller has sampled the runtime info,
//! consulted the what-if predictor and applied any DOP change — so retunes
//! always happen *between splits*, never mid-split (paper Fig 13). Retired
//! tasks observe their retirement at the same boundary: their next claim
//! returns `None` and the scan emits `Page::End(EndSignal)`.
//!
//! Claiming is **locality-aware**: a claimant that names its node
//! ([`SplitFeed::at_node`]) is preferentially handed splits whose
//! [`Split::node`] matches, falling back to stealing the oldest remaining
//! split once its node-local pool is dry — work-stealing FIFO, so locality
//! never costs progress. Claimants without a node (the single-process
//! executor) keep the exact FIFO order.
//!
//! The [`SplitSource`] trait abstracts *where* the pool lives: in-process
//! tasks claim straight from the shared [`SplitQueue`], while the tasks of
//! a distributed worker claim through a proxy that forwards to the
//! coordinator's queue — the single pool is what keeps mid-query DOP
//! changes lossless, so it is never sharded across nodes.

use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::Arc;

use accordion_common::sync::{condvar_wait, Condvar, Mutex, Semaphore};
use accordion_common::{NodeId, Result};
use accordion_data::page::{EndReason, Page};
use accordion_storage::split::{Split, SplitPages};

use crate::operators::PageStream;

/// A pool of splits that tasks claim from, one at a time. Implemented by
/// the in-process [`SplitQueue`] and by the distributed worker's proxy to
/// the coordinator's queue.
pub trait SplitSource: Send + Sync {
    /// Claims the next split for task `slot`, preferring splits local to
    /// `node` when given. Returns `None` when the pool is exhausted or the
    /// slot was retired. `gate` is yielded for the duration of any wait.
    fn claim(&self, slot: u32, node: Option<NodeId>, gate: Option<&Semaphore>) -> Option<Split>;

    /// True once `slot` was retired (distinguishes the EndSignal scan end
    /// from plain exhaustion).
    fn is_retired(&self, slot: u32) -> bool;
}

#[derive(Debug)]
struct QueueState {
    splits: VecDeque<Split>,
    claimed: u64,
    remaining_rows: u64,
    remaining_bytes: u64,
    retired: HashSet<u32>,
    /// Claims at or beyond this count block until the controller advances
    /// the threshold (or releases the queue).
    pause_after: Option<u64>,
    /// Controller detached: never block a claim again.
    released: bool,
}

/// Multi-task split pool of one elastic Source stage.
#[derive(Debug)]
pub struct SplitQueue {
    state: Mutex<QueueState>,
    /// Wakes claimants blocked on the pause threshold or retirement.
    cv: Condvar,
}

impl SplitQueue {
    pub fn new(splits: Vec<Split>) -> Self {
        let remaining_rows = splits.iter().map(|s| s.rows).sum();
        let remaining_bytes = splits.iter().map(|s| s.bytes).sum();
        SplitQueue {
            state: Mutex::new(QueueState {
                splits: splits.into(),
                claimed: 0,
                remaining_rows,
                remaining_bytes,
                retired: HashSet::new(),
                pause_after: None,
                released: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Claims the next split for task `slot`, blocking at a pause boundary
    /// until the controller's decision lands. Returns `None` when the queue
    /// is exhausted or the slot was retired. `gate` (the scheduler's
    /// compute-slot semaphore) is yielded for the duration of any wait.
    pub fn claim(&self, slot: u32, gate: Option<&Semaphore>) -> Option<Split> {
        self.claim_at(slot, None, gate)
    }

    /// [`claim`](Self::claim) with a locality preference: when `node` is
    /// given, the oldest split whose [`Split::node`] matches is handed out
    /// first; once the claimant's node-local pool is dry it steals the
    /// oldest remaining split instead. With `node == None` this is exactly
    /// FIFO.
    pub fn claim_at(
        &self,
        slot: u32,
        node: Option<NodeId>,
        gate: Option<&Semaphore>,
    ) -> Option<Split> {
        loop {
            let mut st = self.state.lock();
            if st.retired.contains(&slot) {
                return None;
            }
            if st.splits.is_empty() {
                return None;
            }
            let paused = !st.released && matches!(st.pause_after, Some(n) if st.claimed >= n);
            if !paused {
                let pick = node
                    .and_then(|n| st.splits.iter().position(|s| s.node == n))
                    .unwrap_or(0);
                let split = st.splits.remove(pick).expect("non-empty checked above");
                st.claimed += 1;
                st.remaining_rows = st.remaining_rows.saturating_sub(split.rows);
                st.remaining_bytes = st.remaining_bytes.saturating_sub(split.bytes);
                return Some(split);
            }
            if let Some(g) = gate {
                g.release();
            }
            while !st.released
                && matches!(st.pause_after, Some(n) if st.claimed >= n)
                && !st.retired.contains(&slot)
                && !st.splits.is_empty()
            {
                st = condvar_wait(&self.cv, st);
            }
            drop(st);
            if let Some(g) = gate {
                g.acquire();
            }
        }
    }

    /// Retires a task slot: its next claim returns `None`, making it finish
    /// its current split, emit `Page::End(EndSignal)` and exit.
    pub fn retire(&self, slot: u32) {
        self.state.lock().retired.insert(slot);
        self.cv.notify_all();
    }

    /// True once `slot` was retired (distinguishes the EndSignal scan end
    /// from plain exhaustion).
    pub fn is_retired(&self, slot: u32) -> bool {
        self.state.lock().retired.contains(&slot)
    }

    /// Splits handed out so far.
    pub fn claimed(&self) -> u64 {
        self.state.lock().claimed
    }

    /// Splits not yet claimed.
    pub fn remaining_splits(&self) -> usize {
        self.state.lock().splits.len()
    }

    /// Rows in the unclaimed splits — the `V_remain` input of the what-if
    /// predictor (paper §5.2).
    pub fn remaining_rows(&self) -> u64 {
        self.state.lock().remaining_rows
    }

    /// Bytes in the unclaimed splits.
    pub fn remaining_bytes(&self) -> u64 {
        self.state.lock().remaining_bytes
    }

    /// Sets the pause threshold: claims once `claimed >= threshold` block
    /// until the controller advances or releases it.
    pub fn set_pause_after(&self, threshold: Option<u64>) {
        self.state.lock().pause_after = threshold;
        self.cv.notify_all();
    }

    /// True when the controller owes the queue a decision: the pause
    /// threshold was reached and unclaimed splits remain.
    pub fn decision_due(&self) -> bool {
        let st = self.state.lock();
        !st.released
            && !st.splits.is_empty()
            && matches!(st.pause_after, Some(n) if st.claimed >= n)
    }

    /// Detaches the controller: clears any pause and guarantees no claim
    /// ever blocks again (also the error-path unblock).
    pub fn release(&self) {
        let mut st = self.state.lock();
        st.released = true;
        st.pause_after = None;
        self.cv.notify_all();
    }
}

impl SplitSource for SplitQueue {
    fn claim(&self, slot: u32, node: Option<NodeId>, gate: Option<&Semaphore>) -> Option<Split> {
        self.claim_at(slot, node, gate)
    }

    fn is_retired(&self, slot: u32) -> bool {
        SplitQueue::is_retired(self, slot)
    }
}

/// One task's handle on its stage's split pool, optionally pinned to a
/// node for locality-preferring claims.
#[derive(Clone)]
pub struct SplitFeed {
    source: Arc<dyn SplitSource>,
    /// This task's slot id (stable across the query; never reused).
    slot: u32,
    /// Claim splits local to this node first, stealing when none remain.
    node: Option<NodeId>,
    /// Compute-slot semaphore to yield while blocked at a pause boundary.
    gate: Option<Arc<Semaphore>>,
}

impl std::fmt::Debug for SplitFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitFeed")
            .field("slot", &self.slot)
            .field("node", &self.node)
            .finish()
    }
}

impl SplitFeed {
    pub fn new(queue: Arc<SplitQueue>, slot: u32, gate: Option<Arc<Semaphore>>) -> Self {
        SplitFeed::from_source(queue, slot, gate)
    }

    /// A feed over any [`SplitSource`] — the distributed worker's proxy to
    /// the coordinator's queue uses this.
    pub fn from_source(
        source: Arc<dyn SplitSource>,
        slot: u32,
        gate: Option<Arc<Semaphore>>,
    ) -> Self {
        SplitFeed {
            source,
            slot,
            node: None,
            gate,
        }
    }

    /// Pins the feed to a node: claims prefer splits local to it.
    pub fn at_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    pub fn claim(&self) -> Option<Split> {
        self.source
            .claim(self.slot, self.node, self.gate.as_deref())
    }

    pub fn retired(&self) -> bool {
        self.source.is_retired(self.slot)
    }
}

/// Scan source of an elastic Source stage: streams pages of splits claimed
/// one at a time from the shared queue, applying the scan's projection. The
/// queue-claim counterpart of [`crate::operators::ScanSource`].
pub struct FeedScanSource {
    feed: SplitFeed,
    projection: Vec<usize>,
    page_rows: usize,
    current: Option<SplitPages>,
}

impl FeedScanSource {
    pub fn new(feed: SplitFeed, projection: Vec<usize>, page_rows: usize) -> Self {
        FeedScanSource {
            feed,
            projection,
            page_rows,
            current: None,
        }
    }
}

impl PageStream for FeedScanSource {
    fn next_page(&mut self) -> Result<Page> {
        loop {
            if self.current.is_none() {
                match self.feed.claim() {
                    Some(split) => self.current = Some(split.open(self.page_rows)?),
                    None => {
                        // Between-splits shutdown: a retired task ends with
                        // the engine's EndSignal (paper §4.3), an exhausted
                        // queue with the ordinary scan end.
                        let reason = if self.feed.retired() {
                            EndReason::EndSignal
                        } else {
                            EndReason::ScanExhausted
                        };
                        return Ok(Page::end(reason));
                    }
                }
            }
            match self.current.as_mut().unwrap().next_page()? {
                Some(page) => {
                    if page.is_empty() {
                        continue;
                    }
                    return Ok(Page::data(page.project(&self.projection)));
                }
                None => self.current = None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_common::{NodeId, SplitId};
    use accordion_data::column::Column;
    use accordion_data::page::DataPage;
    use accordion_storage::split::SplitData;
    use std::time::Duration;

    fn split(id: u64, vals: Vec<i64>) -> Split {
        let page = DataPage::new(vec![Column::from_i64(vals)]);
        let rows = page.row_count() as u64;
        let bytes = page.byte_size() as u64;
        Split {
            id: SplitId(id),
            node: NodeId(0),
            table: "t".into(),
            data: SplitData::Memory(Arc::new(vec![page])),
            rows,
            bytes,
        }
    }

    #[test]
    fn claims_hand_out_each_split_exactly_once() {
        let q = SplitQueue::new(vec![
            split(0, vec![1]),
            split(1, vec![2]),
            split(2, vec![3]),
        ]);
        assert_eq!(q.remaining_splits(), 3);
        assert_eq!(q.remaining_rows(), 3);
        let mut ids = Vec::new();
        while let Some(s) = q.claim(0, None) {
            ids.push(s.id.0);
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(q.claimed(), 3);
        assert_eq!(q.remaining_rows(), 0);
        assert!(q.claim(1, None).is_none(), "exhausted for every slot");
    }

    /// `split` with an explicit home node.
    fn split_on(id: u64, node: u32, vals: Vec<i64>) -> Split {
        let mut s = split(id, vals);
        s.node = NodeId(node);
        s
    }

    #[test]
    fn node_local_splits_are_claimed_first() {
        let q = SplitQueue::new(vec![
            split_on(0, 0, vec![1]),
            split_on(1, 1, vec![2]),
            split_on(2, 0, vec![3]),
            split_on(3, 1, vec![4]),
        ]);
        // A node-1 claimant drains its local splits (FIFO among them)...
        assert_eq!(q.claim_at(0, Some(NodeId(1)), None).unwrap().id.0, 1);
        assert_eq!(q.claim_at(0, Some(NodeId(1)), None).unwrap().id.0, 3);
        // ...then steals the oldest remaining split rather than starving.
        assert_eq!(q.claim_at(0, Some(NodeId(1)), None).unwrap().id.0, 0);
        assert_eq!(q.claim_at(0, Some(NodeId(1)), None).unwrap().id.0, 2);
        assert!(q.claim_at(0, Some(NodeId(1)), None).is_none());
        assert_eq!(q.claimed(), 4);
        assert_eq!(q.remaining_rows(), 0);
    }

    #[test]
    fn claim_without_node_stays_exact_fifo() {
        let q = SplitQueue::new(vec![
            split_on(0, 2, vec![1]),
            split_on(1, 0, vec![2]),
            split_on(2, 1, vec![3]),
        ]);
        for expect in 0..3 {
            assert_eq!(q.claim(0, None).unwrap().id.0, expect);
        }
    }

    #[test]
    fn feed_pinned_to_node_prefers_local_splits() {
        let q = Arc::new(SplitQueue::new(vec![
            split_on(0, 0, vec![1]),
            split_on(1, 1, vec![2]),
        ]));
        let feed = SplitFeed::new(q.clone(), 0, None).at_node(NodeId(1));
        assert_eq!(feed.claim().unwrap().id.0, 1, "local split first");
        assert_eq!(feed.claim().unwrap().id.0, 0, "then steals");
        assert!(feed.claim().is_none());
    }

    #[test]
    fn retired_slot_claims_nothing() {
        let q = SplitQueue::new(vec![split(0, vec![1]), split(1, vec![2])]);
        q.retire(7);
        assert!(q.is_retired(7));
        assert!(q.claim(7, None).is_none());
        // Other slots keep claiming.
        assert!(q.claim(0, None).is_some());
    }

    #[test]
    fn pause_blocks_claims_until_advanced() {
        let q = Arc::new(SplitQueue::new(vec![
            split(0, vec![1]),
            split(1, vec![2]),
            split(2, vec![3]),
        ]));
        q.set_pause_after(Some(1));
        assert!(
            q.claim(0, None).is_some(),
            "claims below the threshold pass"
        );
        assert!(q.decision_due());
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.claim(0, None));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!h.is_finished(), "claim at the threshold must block");
        // The controller advances the threshold by one decision interval
        // past the claim it is about to admit.
        q.set_pause_after(Some(3));
        assert!(h.join().unwrap().is_some());
        assert!(!q.decision_due(), "below the new threshold");
    }

    #[test]
    fn release_unblocks_everything_forever() {
        let q = Arc::new(SplitQueue::new(vec![split(0, vec![1]), split(1, vec![2])]));
        q.set_pause_after(Some(0));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.claim(0, None));
        std::thread::sleep(Duration::from_millis(10));
        q.release();
        assert!(h.join().unwrap().is_some());
        assert!(!q.decision_due());
        assert!(q.claim(0, None).is_some(), "no pause after release");
    }

    #[test]
    fn retire_wakes_a_blocked_claimant() {
        let q = Arc::new(SplitQueue::new(vec![split(0, vec![1]), split(1, vec![2])]));
        q.set_pause_after(Some(0));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.claim(3, None));
        std::thread::sleep(Duration::from_millis(10));
        q.retire(3);
        assert!(h.join().unwrap().is_none(), "retired mid-wait");
    }

    #[test]
    fn blocked_claim_yields_gate_permit() {
        let q = Arc::new(SplitQueue::new(vec![split(0, vec![1]), split(1, vec![2])]));
        q.set_pause_after(Some(0));
        let gate = Arc::new(Semaphore::new(1));
        gate.acquire(); // the claiming "task" holds the only slot
        let claimer = {
            let (q, gate) = (q.clone(), gate.clone());
            std::thread::spawn(move || {
                let s = q.claim(0, Some(&gate));
                gate.release();
                s
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        // While the claimant is parked its compute slot must be free.
        gate.acquire();
        gate.release();
        q.release();
        assert!(claimer.join().unwrap().is_some());
    }

    #[test]
    fn feed_scan_source_streams_and_signals_end() {
        let q = Arc::new(SplitQueue::new(vec![
            split(0, vec![1, 2]),
            split(1, vec![3]),
        ]));
        let mut src = FeedScanSource::new(SplitFeed::new(q.clone(), 0, None), vec![0], 10);
        let mut rows = 0;
        let reason = loop {
            match src.next_page().unwrap() {
                Page::End(e) => break e.reason,
                Page::Data(p) => rows += p.row_count(),
            }
        };
        assert_eq!(rows, 3);
        assert_eq!(reason, EndReason::ScanExhausted);

        // A retired feed ends with the engine's EndSignal instead.
        let q = Arc::new(SplitQueue::new(vec![split(0, vec![1])]));
        q.retire(0);
        let mut src = FeedScanSource::new(SplitFeed::new(q, 0, None), vec![0], 10);
        match src.next_page().unwrap() {
            Page::End(e) => assert_eq!(e.reason, EndReason::EndSignal),
            other => panic!("expected end page, got {other}"),
        }
    }
}
