//! Vectorized executor for the Accordion IQRE engine.
//!
//! Takes the descriptive output of `accordion-plan` — a [`StageTree`] of
//! fragments, each split into pipelines of operator specs — and runs it
//! against the streaming exchange endpoints of `accordion-net`:
//!
//! * [`operators`] — the physical operators as pull-based [`Page`] streams
//!   (scan over splits, filter, project, partial/final hash aggregation,
//!   sort, top-N, limit, hash join).
//! * [`driver`] — instantiates one pipeline into a metered operator chain
//!   and pulls it to completion into the pipeline's sink (paper §2 "Driver
//!   Execution"). A task holds an `ExchangeWriter` toward its parent stage
//!   and one `ExchangeReader` per child stage; multi-partition local
//!   exchanges run one driver per partition.
//! * [`executor`] — the serial in-process reference executor (stages run
//!   bottom-up in one thread, streaming through unbounded in-process
//!   exchanges) plus the exchange-wiring helpers shared with the
//!   multi-threaded scheduler in `accordion-cluster`.
//! * [`metrics`] — per-operator row/byte counters and rate meters exposed
//!   through [`QueryResult::stats`], plus the [`RuntimeCollector`] that
//!   periodically samples them into per-stage `TimeSeries` (paper Fig 18)
//!   while a query runs.
//! * [`splits`] — the shared [`SplitQueue`] elastic Source stages claim
//!   their splits from, making scans resumable across mid-query DOP changes
//!   (paper Fig 13; driven by `accordion_cluster::elastic`).
//!
//! For concurrent stage execution on a worker pool with bounded elastic
//! buffers and the simulated NIC, use `accordion_cluster::QueryExecutor`.
//!
//! [`StageTree`]: accordion_plan::fragment::StageTree
//! [`Page`]: accordion_data::page::Page
//! [`QueryResult::stats`]: executor::QueryResult::stats

pub mod driver;
pub mod executor;
pub mod metrics;
pub mod operators;
pub mod splits;

pub use driver::{run_pipeline, run_task, TaskContext};
pub use executor::{
    drain_result, exchange_topology, execute_logical, execute_tree, route_policy, ExecOptions,
    QueryResult,
};
pub use metrics::{
    OperatorStats, QueryMetrics, QueryStats, RetuneEvent, RuntimeCollector, StageSeries,
};
pub use operators::{JoinTable, PageStream};
pub use splits::{FeedScanSource, SplitFeed, SplitQueue, SplitSource};
