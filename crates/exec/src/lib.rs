//! Vectorized single-node executor for the Accordion IQRE engine.
//!
//! Takes the descriptive output of `accordion-plan` — a [`StageTree`] of
//! fragments, each split into pipelines of operator specs — and runs it:
//!
//! * [`operators`] — the physical operators as pull-based [`Page`] streams
//!   (scan over splits, filter, project, partial/final hash aggregation,
//!   sort, top-N, limit, hash join).
//! * [`driver`] — instantiates one pipeline into an operator chain and
//!   pulls it to completion into the pipeline's sink (paper §2 "Driver
//!   Execution").
//! * [`executor`] — runs stages bottom-up at their planned parallelism,
//!   buffering exchanged pages in memory.
//!
//! Everything here is deliberately synchronous and deterministic: the task/
//! driver thread pools, elastic buffers and the shuffle network arrive in
//! later PRs (`accordion-cluster`, `accordion-net`) on top of these
//! operators.
//!
//! [`StageTree`]: accordion_plan::fragment::StageTree
//! [`Page`]: accordion_data::page::Page

pub mod driver;
pub mod executor;
pub mod operators;

pub use driver::{run_pipeline, StageOutputs, TaskContext};
pub use executor::{execute_logical, execute_tree, ExecOptions, QueryResult};
pub use operators::{JoinTable, PageStream};
