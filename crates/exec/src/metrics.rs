//! Per-query runtime metrics and the runtime info collector (paper §5.1).
//!
//! Every driver chain wires a [`MeteredStream`] around each operator it
//! instantiates, counting rows and bytes produced and feeding a windowed
//! [`RateMeter`] — the `R_consume` side of the §5.2 what-if predictor
//! (`T_remain = V_remain / R_consume`). [`QueryMetrics`] collects the
//! per-(stage, task, pipeline, operator) registrations; a final
//! [`QueryMetrics::snapshot`] becomes the [`QueryStats`] exposed through
//! `QueryResult::stats()`.
//!
//! While a query runs, a [`RuntimeCollector`] periodically samples the live
//! meters into per-stage [`TimeSeries`] (paper Fig 18) instead of only
//! snapshotting at the end — the elasticity controller in
//! `accordion_cluster::elastic` polls it between splits and feeds the latest
//! sample to the what-if predictor. DOP retunes the controller applies are
//! recorded as [`RetuneEvent`]s and surface in [`QueryStats::retunes`].

use std::sync::Arc;

use accordion_common::clock::{SharedClock, SystemClock};
use accordion_common::metrics::{Counter, RateMeter, TimePoint, TimeSeries};
use accordion_common::sync::Mutex;
use accordion_common::{Json, Result};
use accordion_data::page::Page;
use accordion_net::ExchangeStats;

use crate::operators::{BoxedStream, PageStream};

/// Live counters of one operator instance inside one driver.
#[derive(Debug)]
pub struct OperatorMetrics {
    pub stage: u32,
    pub task: u32,
    pub pipeline: u32,
    pub operator: &'static str,
    pub rows: Counter,
    pub bytes: Counter,
    pub rate: RateMeter,
}

/// Collector shared by every task of one query execution.
#[derive(Debug)]
pub struct QueryMetrics {
    clock: SharedClock,
    operators: Mutex<Vec<Arc<OperatorMetrics>>>,
    /// Per-stage runtime time series attached by a [`RuntimeCollector`].
    series: Mutex<Vec<(u32, Arc<TimeSeries>)>>,
    /// DOP retunes applied by the elasticity controller, in order.
    retunes: Mutex<Vec<RetuneEvent>>,
}

impl QueryMetrics {
    pub fn new() -> Self {
        Self::with_clock(SystemClock::shared())
    }

    /// A collector reading time through `clock` (tests drive a
    /// `ManualClock`; the engine uses the system clock).
    pub fn with_clock(clock: SharedClock) -> Self {
        QueryMetrics {
            clock,
            operators: Mutex::new(Vec::new()),
            series: Mutex::new(Vec::new()),
            retunes: Mutex::new(Vec::new()),
        }
    }

    /// The clock every meter of this query reads.
    pub fn clock(&self) -> SharedClock {
        self.clock.clone()
    }

    /// Registers one operator instance and returns its counters.
    pub fn register(
        &self,
        stage: u32,
        task: u32,
        pipeline: u32,
        operator: &'static str,
    ) -> Arc<OperatorMetrics> {
        let m = Arc::new(OperatorMetrics {
            stage,
            task,
            pipeline,
            operator,
            rows: Counter::new(),
            bytes: Counter::new(),
            rate: RateMeter::new(self.clock.clone()),
        });
        self.operators.lock().push(m.clone());
        m
    }

    /// Rows produced so far by every instance of `operator` within `stage`.
    pub fn operator_rows(&self, stage: u32, operator: &str) -> u64 {
        self.operators
            .lock()
            .iter()
            .filter(|m| m.stage == stage && m.operator == operator)
            .map(|m| m.rows.get())
            .sum()
    }

    /// Attaches a per-stage runtime time series so the final snapshot
    /// carries it (done by [`RuntimeCollector::new`]).
    pub fn attach_series(&self, stage: u32, series: Arc<TimeSeries>) {
        self.series.lock().push((stage, series));
    }

    /// Records one DOP retune applied by the elasticity controller.
    pub fn record_retune(&self, event: RetuneEvent) {
        self.retunes.lock().push(event);
    }

    /// Final snapshot: samples every rate meter and freezes the counters,
    /// the collected per-stage time series, and the retune log.
    pub fn snapshot(&self, exchange: ExchangeStats) -> QueryStats {
        let operators = self
            .operators
            .lock()
            .iter()
            .map(|m| OperatorStats {
                stage: m.stage,
                task: m.task,
                pipeline: m.pipeline,
                operator: m.operator,
                rows: m.rows.get(),
                bytes: m.bytes.get(),
                rows_per_sec: m.rate.sample(),
            })
            .collect();
        let series = self
            .series
            .lock()
            .iter()
            .map(|(stage, ts)| StageSeries {
                stage: *stage,
                points: ts.points(),
            })
            .collect();
        QueryStats {
            operators,
            exchange,
            series,
            retunes: self.retunes.lock().clone(),
        }
    }
}

impl Default for QueryMetrics {
    fn default() -> Self {
        QueryMetrics::new()
    }
}

/// Frozen per-operator counters of one finished operator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorStats {
    pub stage: u32,
    pub task: u32,
    pub pipeline: u32,
    pub operator: &'static str,
    /// Rows this operator produced (pages leaving it, not entering).
    pub rows: u64,
    /// Bytes this operator produced.
    pub bytes: u64,
    /// Output rate over the operator's lifetime, rows/second.
    pub rows_per_sec: f64,
}

impl OperatorStats {
    /// Serializes into the bench harness's `BENCH_*.json` operator record.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("stage", Json::u64(self.stage as u64))
            .with("task", Json::u64(self.task as u64))
            .with("pipeline", Json::u64(self.pipeline as u64))
            .with("operator", Json::str(self.operator))
            .with("rows", Json::u64(self.rows))
            .with("bytes", Json::u64(self.bytes))
            .with("rows_per_sec", Json::f64(self.rows_per_sec))
    }
}

/// One Source-stage DOP change applied by the elasticity controller
/// (paper Fig 13): recorded at the between-splits decision boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetuneEvent {
    pub stage: u32,
    pub from_dop: u32,
    pub to_dop: u32,
    /// Splits already handed out when the retune landed.
    pub splits_claimed: u64,
    /// The what-if predictor's remaining-time estimate for `to_dop` at
    /// decision time, seconds (`f64::INFINITY` with no rate sample yet,
    /// `0.0` for forced test schedules, which bypass the predictor).
    pub predicted_secs: f64,
}

impl RetuneEvent {
    /// Serializes into the bench harness's `BENCH_*.json` retune record.
    /// A `predicted_secs` of infinity (no rate sample yet) maps to JSON
    /// `null` — JSON has no literal for it.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("stage", Json::u64(self.stage as u64))
            .with("from_dop", Json::u64(self.from_dop as u64))
            .with("to_dop", Json::u64(self.to_dop as u64))
            .with("splits_claimed", Json::u64(self.splits_claimed))
            .with("predicted_secs", Json::f64(self.predicted_secs))
    }
}

/// Frozen runtime time series of one stage (paper Fig 18).
#[derive(Debug, Clone, PartialEq)]
pub struct StageSeries {
    pub stage: u32,
    /// Samples in collection order; `at` is monotone non-decreasing.
    pub points: Vec<TimePoint>,
}

impl StageSeries {
    /// Serializes the per-stage throughput curve: each point is
    /// `[elapsed_ms, rows_per_sec]`, a compact pair array.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("stage", Json::u64(self.stage as u64))
            .with(
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::Arr(vec![
                                Json::f64(p.at.as_secs_f64() * 1000.0),
                                Json::f64(p.value),
                            ])
                        })
                        .collect(),
                ),
            )
    }
}

/// Runtime statistics of one executed query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// One entry per operator instance per driver, in registration order.
    pub operators: Vec<OperatorStats>,
    /// Aggregate shuffle-exchange transfer counters.
    pub exchange: ExchangeStats,
    /// Per-stage runtime info samples collected while the query ran (empty
    /// unless a [`RuntimeCollector`] was polling).
    pub series: Vec<StageSeries>,
    /// DOP retunes the elasticity controller applied, in order.
    pub retunes: Vec<RetuneEvent>,
}

impl QueryStats {
    /// Total rows produced across all instances of the named operator.
    pub fn rows_produced(&self, operator: &str) -> u64 {
        self.operators
            .iter()
            .filter(|o| o.operator == operator)
            .map(|o| o.rows)
            .sum()
    }

    /// Total bytes produced across all instances of the named operator.
    pub fn bytes_produced(&self, operator: &str) -> u64 {
        self.operators
            .iter()
            .filter(|o| o.operator == operator)
            .map(|o| o.bytes)
            .sum()
    }

    /// Retunes applied to one stage, in order.
    pub fn retunes_for(&self, stage: u32) -> Vec<&RetuneEvent> {
        self.retunes.iter().filter(|r| r.stage == stage).collect()
    }

    /// The runtime series collected for one stage, if any.
    pub fn series_for(&self, stage: u32) -> Option<&StageSeries> {
        self.series.iter().find(|s| s.stage == stage)
    }

    /// Serializes the full stats record for the bench harness's
    /// `BENCH_*.json`: per-operator counters, exchange aggregates, the
    /// per-stage throughput series and the retune log. Field order is
    /// fixed, so identical runs serialize byte-identically.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with(
                "operators",
                Json::Arr(self.operators.iter().map(|o| o.to_json()).collect()),
            )
            .with(
                "exchange",
                Json::obj()
                    .with("pages", Json::u64(self.exchange.pages))
                    .with("bytes", Json::u64(self.exchange.bytes))
                    .with("grow_events", Json::u64(self.exchange.grow_events))
                    .with("max_capacity", Json::u64(self.exchange.max_capacity as u64)),
            )
            .with(
                "series",
                Json::Arr(self.series.iter().map(|s| s.to_json()).collect()),
            )
            .with(
                "retunes",
                Json::Arr(self.retunes.iter().map(|r| r.to_json()).collect()),
            )
    }
}

/// Minimum spacing of periodic runtime-info samples. The controller polls
/// far more often than a sample is worth recording; without a floor the
/// append-only series would grow with query *duration* instead of with
/// information (decision-boundary samples bypass the throttle — there are
/// only O(log splits) of those).
const SAMPLE_MIN_INTERVAL_NANOS: u64 = 10_000_000; // 10 ms

#[derive(Debug)]
struct StageTrack {
    stage: u32,
    series: Arc<TimeSeries>,
    state: Mutex<TrackState>,
}

#[derive(Debug, Clone, Copy)]
struct TrackState {
    /// Scan rows / clock at the start of the current measurement era. An
    /// era begins at query start and is reset at every DOP retune, so the
    /// measured rate always reflects the *current* task set — dividing a
    /// whole-query average by the post-retune DOP would systematically
    /// mispredict.
    base_rows: u64,
    base_nanos: u64,
    /// Timestamp of the last recorded sample (`None` before the first).
    last_push_nanos: Option<u64>,
}

/// The runtime info collector (paper §5.1, Fig 18): periodically samples the
/// live per-operator meters of selected stages into per-stage
/// [`TimeSeries`] **while the query runs**. Each sample is the stage's scan
/// throughput over the current measurement era (rows scanned since the era
/// began over elapsed era time); eras restart at every DOP retune via
/// [`RuntimeCollector::reset_baseline`]. The elasticity controller owns one
/// collector per query, polls [`RuntimeCollector::sample`] on its decision
/// loop, and reads a fresh [`RuntimeCollector::sample_stage`] at each
/// decision boundary; the collected series end up in
/// [`QueryStats::series`].
#[derive(Debug)]
pub struct RuntimeCollector {
    metrics: Arc<QueryMetrics>,
    stages: Vec<StageTrack>,
}

impl RuntimeCollector {
    /// A collector sampling `stages`, attaching one fresh series per stage
    /// to `metrics` so the final snapshot carries them.
    pub fn new(metrics: Arc<QueryMetrics>, stages: &[u32]) -> Self {
        let now = metrics.clock().now_nanos();
        let stages: Vec<StageTrack> = stages
            .iter()
            .map(|&stage| {
                let ts = TimeSeries::shared(metrics.clock());
                metrics.attach_series(stage, ts.clone());
                StageTrack {
                    stage,
                    series: ts,
                    state: Mutex::new(TrackState {
                        base_rows: 0,
                        base_nanos: now,
                        last_push_nanos: None,
                    }),
                }
            })
            .collect();
        RuntimeCollector { metrics, stages }
    }

    fn track(&self, stage: u32) -> Option<&StageTrack> {
        self.stages.iter().find(|t| t.stage == stage)
    }

    /// Current-era scan rate of one track, rows/second.
    fn era_rate(&self, track: &StageTrack, now: u64) -> f64 {
        let st = *track.state.lock();
        let rows = self
            .metrics
            .operator_rows(track.stage, "TableScan")
            .saturating_sub(st.base_rows);
        let elapsed_sec = now.saturating_sub(st.base_nanos) as f64 / 1_000_000_000.0;
        if elapsed_sec <= 0.0 {
            return 0.0;
        }
        rows as f64 / elapsed_sec
    }

    fn push_sample(&self, track: &StageTrack, now: u64, force: bool) -> f64 {
        let rate = self.era_rate(track, now);
        let mut st = track.state.lock();
        let due = match st.last_push_nanos {
            None => true,
            Some(last) => force || now.saturating_sub(last) >= SAMPLE_MIN_INTERVAL_NANOS,
        };
        if due {
            st.last_push_nanos = Some(now);
            drop(st);
            track.series.push(rate);
        }
        rate
    }

    /// Takes one (rate-limited) periodic sample of every tracked stage.
    pub fn sample(&self) {
        let now = self.metrics.clock().now_nanos();
        for track in &self.stages {
            self.push_sample(track, now, false);
        }
    }

    /// Takes and returns a fresh sample of one stage, bypassing the
    /// periodic rate limit — the decision-boundary read of the what-if
    /// predictor's `R_consume`.
    pub fn sample_stage(&self, stage: u32) -> f64 {
        let now = self.metrics.clock().now_nanos();
        self.track(stage)
            .map(|t| self.push_sample(t, now, true))
            .unwrap_or(0.0)
    }

    /// Starts a new measurement era for `stage` — called by the controller
    /// right after it applies a DOP retune, so subsequent rates measure the
    /// new task set only.
    pub fn reset_baseline(&self, stage: u32) {
        if let Some(track) = self.track(stage) {
            let mut st = track.state.lock();
            st.base_rows = self.metrics.operator_rows(stage, "TableScan");
            st.base_nanos = self.metrics.clock().now_nanos();
        }
    }

    /// The live series of one tracked stage.
    pub fn series(&self, stage: u32) -> Option<Arc<TimeSeries>> {
        self.track(stage).map(|t| t.series.clone())
    }

    /// Most recent sampled rate of `stage` (rows/second; `0.0` before the
    /// first sample).
    pub fn last_rate(&self, stage: u32) -> f64 {
        self.series(stage)
            .and_then(|ts| ts.last())
            .map(|p| p.value)
            .unwrap_or(0.0)
    }
}

/// Wraps an operator stream, recording every page it produces.
pub struct MeteredStream {
    inner: BoxedStream,
    metrics: Arc<OperatorMetrics>,
}

impl MeteredStream {
    pub fn new(inner: BoxedStream, metrics: Arc<OperatorMetrics>) -> Self {
        MeteredStream { inner, metrics }
    }
}

impl PageStream for MeteredStream {
    fn next_page(&mut self) -> Result<Page> {
        let page = self.inner.next_page()?;
        if let Page::Data(p) = &page {
            let rows = p.row_count() as u64;
            self.metrics.rows.add(rows);
            self.metrics.bytes.add(p.byte_size() as u64);
            self.metrics.rate.record(rows);
        }
        Ok(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::QueueSource;
    use accordion_data::column::Column;
    use accordion_data::page::{DataPage, EndReason};

    #[test]
    fn metered_stream_counts_rows_and_bytes() {
        let metrics = QueryMetrics::new();
        let m = metrics.register(0, 0, 0, "TableScan");
        let pages = vec![
            Arc::new(DataPage::new(vec![Column::from_i64(vec![1, 2])])),
            Arc::new(DataPage::new(vec![Column::from_i64(vec![3])])),
        ];
        let mut s = MeteredStream::new(
            Box::new(QueueSource::new(pages, EndReason::UpstreamFinished)),
            m,
        );
        while !s.next_page().unwrap().is_end() {}
        let stats = metrics.snapshot(ExchangeStats::default());
        assert_eq!(stats.rows_produced("TableScan"), 3);
        assert!(stats.bytes_produced("TableScan") > 0);
        assert_eq!(stats.operators.len(), 1);
        assert!(stats.series.is_empty());
        assert!(stats.retunes.is_empty());
    }

    #[test]
    fn runtime_collector_samples_live_scan_rate() {
        use accordion_common::clock::ManualClock;

        let clock = ManualClock::shared();
        let metrics = Arc::new(QueryMetrics::with_clock(clock.clone()));
        let m = metrics.register(2, 0, 0, "TableScan");
        let collector = RuntimeCollector::new(metrics.clone(), &[2]);

        // 100 rows over the first second: era rate 100 rows/s.
        m.rows.add(100);
        clock.advance_millis(1000);
        collector.sample();
        assert!((collector.last_rate(2) - 100.0).abs() < 1e-9);

        // Sampling again without time passing is throttled: no new point.
        collector.sample();
        assert_eq!(collector.series(2).unwrap().len(), 1);

        // 100 more rows over another second: 100 rows/s over the era.
        m.rows.add(100);
        clock.advance_millis(1000);
        collector.sample();
        assert!((collector.last_rate(2) - 100.0).abs() < 1e-9);
        assert_eq!(collector.last_rate(7), 0.0, "untracked stage");

        // A retune starts a new measurement era: only post-reset rows count,
        // so the rate reflects the new task set instead of a stale average.
        collector.reset_baseline(2);
        m.rows.add(50);
        clock.advance_millis(1000);
        let fresh = collector.sample_stage(2);
        assert!((fresh - 50.0).abs() < 1e-9, "era rate was {fresh}");

        metrics.record_retune(RetuneEvent {
            stage: 2,
            from_dop: 1,
            to_dop: 4,
            splits_claimed: 1,
            predicted_secs: 0.5,
        });
        let stats = metrics.snapshot(ExchangeStats::default());
        let series = stats.series_for(2).expect("series attached");
        assert_eq!(series.points.len(), 3);
        // Samples are monotone in time.
        assert!(series.points.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(stats.retunes_for(2).len(), 1);
        assert_eq!(stats.retunes[0].to_dop, 4);
    }

    #[test]
    fn era_rates_never_mix_across_retunes() {
        use accordion_common::clock::ManualClock;

        // A grow→shrink→grow schedule: each era's rate must reflect only
        // that era's rows and elapsed time, never a whole-query average.
        // Whole-query averaging would smear the 100 → 10 → 400 rows/s
        // staircase into drifting blends (e.g. era 2 would read 55, era 3
        // would read 170) and the predictor would mis-size every retune.
        let clock = ManualClock::shared();
        let metrics = Arc::new(QueryMetrics::with_clock(clock.clone()));
        let m = metrics.register(1, 0, 0, "TableScan");
        let collector = RuntimeCollector::new(metrics.clone(), &[1]);

        let eras: [(u64, f64); 3] = [(100, 100.0), (10, 10.0), (400, 400.0)];
        for (rows, want) in eras {
            m.rows.add(rows);
            clock.advance_millis(1000);
            let got = collector.sample_stage(1);
            assert!(
                (got - want).abs() < 1e-9,
                "era rate {got} rows/s, wanted {want}"
            );
            // The controller's retune path resets the baseline — a new
            // task set starts a fresh measurement era.
            collector.reset_baseline(1);
        }

        // Immediately after a reset, nothing has flowed in the new era.
        assert_eq!(collector.sample_stage(1), 0.0);
    }

    #[test]
    fn stats_serialize_to_stable_json() {
        let metrics = Arc::new(QueryMetrics::new());
        let m = metrics.register(0, 1, 2, "TableScan");
        m.rows.add(42);
        m.bytes.add(336);
        metrics.record_retune(RetuneEvent {
            stage: 0,
            from_dop: 2,
            to_dop: 4,
            splits_claimed: 8,
            predicted_secs: f64::INFINITY,
        });
        let stats = metrics.snapshot(ExchangeStats {
            pages: 3,
            bytes: 1024,
            grow_events: 1,
            max_capacity: 16,
        });
        let j = stats.to_json();
        assert_eq!(
            j.get("exchange").unwrap().get("bytes").unwrap().as_u64(),
            Some(1024)
        );
        let op = &j.get("operators").unwrap().as_arr().unwrap()[0];
        assert_eq!(op.get("operator").unwrap().as_str(), Some("TableScan"));
        assert_eq!(op.get("rows").unwrap().as_u64(), Some(42));
        let retune = &j.get("retunes").unwrap().as_arr().unwrap()[0];
        assert_eq!(retune.get("to_dop").unwrap().as_u64(), Some(4));
        // The writer emits a stable field order, so the same stats always
        // produce the same bytes; a parse round-trip preserves them.
        let text = j.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.to_string_pretty(), text);
        // Infinity is not representable in JSON: the writer emits null.
        let retune = &parsed.get("retunes").unwrap().as_arr().unwrap()[0];
        assert!(retune.get("predicted_secs").unwrap().is_null());
    }
}
