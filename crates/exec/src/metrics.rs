//! Per-query runtime metrics (paper §5.1 groundwork).
//!
//! Every driver chain wires a [`MeteredStream`] around each operator it
//! instantiates, counting rows and bytes produced and feeding a windowed
//! [`RateMeter`] — the `R_consume` side of the §5.2 what-if predictor
//! (`T_remain = V_remain / R_consume`). [`QueryMetrics`] collects the
//! per-(stage, task, pipeline, operator) registrations; a final
//! [`QueryMetrics::snapshot`] becomes the [`QueryStats`] exposed through
//! `QueryResult::stats()`.

use std::sync::Arc;

use accordion_common::clock::{SharedClock, SystemClock};
use accordion_common::metrics::{Counter, RateMeter};
use accordion_common::sync::Mutex;
use accordion_common::Result;
use accordion_data::page::Page;
use accordion_net::ExchangeStats;

use crate::operators::{BoxedStream, PageStream};

/// Live counters of one operator instance inside one driver.
#[derive(Debug)]
pub struct OperatorMetrics {
    pub stage: u32,
    pub task: u32,
    pub pipeline: u32,
    pub operator: &'static str,
    pub rows: Counter,
    pub bytes: Counter,
    pub rate: RateMeter,
}

/// Collector shared by every task of one query execution.
#[derive(Debug)]
pub struct QueryMetrics {
    clock: SharedClock,
    operators: Mutex<Vec<Arc<OperatorMetrics>>>,
}

impl QueryMetrics {
    pub fn new() -> Self {
        QueryMetrics {
            clock: SystemClock::shared(),
            operators: Mutex::new(Vec::new()),
        }
    }

    /// Registers one operator instance and returns its counters.
    pub fn register(
        &self,
        stage: u32,
        task: u32,
        pipeline: u32,
        operator: &'static str,
    ) -> Arc<OperatorMetrics> {
        let m = Arc::new(OperatorMetrics {
            stage,
            task,
            pipeline,
            operator,
            rows: Counter::new(),
            bytes: Counter::new(),
            rate: RateMeter::new(self.clock.clone()),
        });
        self.operators.lock().push(m.clone());
        m
    }

    /// Final snapshot: samples every rate meter and freezes the counters.
    pub fn snapshot(&self, exchange: ExchangeStats) -> QueryStats {
        let operators = self
            .operators
            .lock()
            .iter()
            .map(|m| OperatorStats {
                stage: m.stage,
                task: m.task,
                pipeline: m.pipeline,
                operator: m.operator,
                rows: m.rows.get(),
                bytes: m.bytes.get(),
                rows_per_sec: m.rate.sample(),
            })
            .collect();
        QueryStats {
            operators,
            exchange,
        }
    }
}

impl Default for QueryMetrics {
    fn default() -> Self {
        QueryMetrics::new()
    }
}

/// Frozen per-operator counters of one finished operator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorStats {
    pub stage: u32,
    pub task: u32,
    pub pipeline: u32,
    pub operator: &'static str,
    /// Rows this operator produced (pages leaving it, not entering).
    pub rows: u64,
    /// Bytes this operator produced.
    pub bytes: u64,
    /// Output rate over the operator's lifetime, rows/second.
    pub rows_per_sec: f64,
}

/// Runtime statistics of one executed query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// One entry per operator instance per driver, in registration order.
    pub operators: Vec<OperatorStats>,
    /// Aggregate shuffle-exchange transfer counters.
    pub exchange: ExchangeStats,
}

impl QueryStats {
    /// Total rows produced across all instances of the named operator.
    pub fn rows_produced(&self, operator: &str) -> u64 {
        self.operators
            .iter()
            .filter(|o| o.operator == operator)
            .map(|o| o.rows)
            .sum()
    }

    /// Total bytes produced across all instances of the named operator.
    pub fn bytes_produced(&self, operator: &str) -> u64 {
        self.operators
            .iter()
            .filter(|o| o.operator == operator)
            .map(|o| o.bytes)
            .sum()
    }
}

/// Wraps an operator stream, recording every page it produces.
pub struct MeteredStream {
    inner: BoxedStream,
    metrics: Arc<OperatorMetrics>,
}

impl MeteredStream {
    pub fn new(inner: BoxedStream, metrics: Arc<OperatorMetrics>) -> Self {
        MeteredStream { inner, metrics }
    }
}

impl PageStream for MeteredStream {
    fn next_page(&mut self) -> Result<Page> {
        let page = self.inner.next_page()?;
        if let Page::Data(p) = &page {
            let rows = p.row_count() as u64;
            self.metrics.rows.add(rows);
            self.metrics.bytes.add(p.byte_size() as u64);
            self.metrics.rate.record(rows);
        }
        Ok(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::QueueSource;
    use accordion_data::column::Column;
    use accordion_data::page::{DataPage, EndReason};

    #[test]
    fn metered_stream_counts_rows_and_bytes() {
        let metrics = QueryMetrics::new();
        let m = metrics.register(0, 0, 0, "TableScan");
        let pages = vec![
            Arc::new(DataPage::new(vec![Column::from_i64(vec![1, 2])])),
            Arc::new(DataPage::new(vec![Column::from_i64(vec![3])])),
        ];
        let mut s = MeteredStream::new(
            Box::new(QueueSource::new(pages, EndReason::UpstreamFinished)),
            m,
        );
        while !s.next_page().unwrap().is_end() {}
        let stats = metrics.snapshot(ExchangeStats::default());
        assert_eq!(stats.rows_produced("TableScan"), 3);
        assert!(stats.bytes_produced("TableScan") > 0);
        assert_eq!(stats.operators.len(), 1);
    }
}
