//! Driver execution (paper §2 "Driver Execution").
//!
//! A driver instantiates one pipeline's [`OperatorSpec`] list into a chain
//! of [`PageStream`]s and pulls pages through it until an end page arrives,
//! delivering each page to the pipeline's sink: the task output buffer, a
//! local exchange partition, or a hash-join build table.
//!
//! The single-node executor runs one driver per pipeline, in the producer-
//! first order [`accordion_plan::pipeline::split_pipelines`] guarantees, so
//! every local exchange and join table is fully materialized before its
//! consumer starts.

use std::collections::HashMap;
use std::sync::Arc;

use accordion_common::{AccordionError, Result};
use accordion_data::page::{DataPage, EndReason, Page};
use accordion_plan::pipeline::{OperatorSpec, PipelineSpec};
use accordion_storage::catalog::Catalog;

use crate::operators::{
    BoxedStream, FilterOp, FinalHashAggOp, HashJoinProbeOp, JoinTable, LimitOp, PartialHashAggOp,
    ProjectOp, QueueSource, ScanSource, SortOp, TopNOp,
};

/// Per-child-stage task outputs: `stage id → partition → pages`.
pub type StageOutputs = HashMap<u32, Vec<Vec<Arc<DataPage>>>>;

/// Mutable state of one running task.
pub struct TaskContext<'a> {
    pub catalog: &'a Catalog,
    /// This task's sequence number within its stage.
    pub task_index: u32,
    /// Stage parallelism (used to pick this task's splits / partitions).
    pub parallelism: u32,
    pub page_rows: usize,
    /// Outputs of already-executed child stages.
    pub child_outputs: &'a StageOutputs,
    /// Local exchange buffers, indexed by the splitter's exchange ids.
    pub local_exchanges: Vec<Vec<Arc<DataPage>>>,
    /// Hash-join build tables, indexed by the splitter's join ids.
    pub join_tables: Vec<Option<Arc<JoinTable>>>,
    /// Pages this task delivers to its output buffer.
    pub output: Vec<Arc<DataPage>>,
}

impl<'a> TaskContext<'a> {
    pub fn new(
        catalog: &'a Catalog,
        task_index: u32,
        parallelism: u32,
        page_rows: usize,
        child_outputs: &'a StageOutputs,
        pipelines: &[PipelineSpec],
    ) -> Self {
        let mut exchanges = 0usize;
        let mut joins = 0usize;
        for p in pipelines {
            for op in &p.operators {
                match op {
                    OperatorSpec::LocalSink { exchange, .. }
                    | OperatorSpec::LocalSource { exchange } => {
                        exchanges = exchanges.max(exchange + 1)
                    }
                    OperatorSpec::HashJoinBuild { join, .. }
                    | OperatorSpec::HashJoinProbe { join, .. } => joins = joins.max(join + 1),
                    _ => {}
                }
            }
        }
        TaskContext {
            catalog,
            task_index,
            parallelism: parallelism.max(1),
            page_rows,
            child_outputs,
            local_exchanges: vec![Vec::new(); exchanges],
            join_tables: vec![None; joins],
            output: Vec::new(),
        }
    }
}

/// Runs one pipeline to completion inside `ctx`.
pub fn run_pipeline(pipeline: &PipelineSpec, ctx: &mut TaskContext<'_>) -> Result<()> {
    let (sink, upstream) = pipeline
        .operators
        .split_last()
        .ok_or_else(|| AccordionError::Execution("empty pipeline".into()))?;
    if !sink.is_sink() {
        return Err(AccordionError::Execution(format!(
            "pipeline {} does not end in a sink: {}",
            pipeline.id,
            sink.name()
        )));
    }
    let mut chain = build_chain(upstream, ctx)?;
    match sink {
        OperatorSpec::Output => loop {
            match chain.next_page()? {
                Page::End(_) => break,
                Page::Data(p) => ctx.output.push(p),
            }
        },
        OperatorSpec::LocalSink {
            exchange,
            partitioning,
        } => {
            if partitioning.partition_count() != 1 {
                return Err(AccordionError::Execution(format!(
                    "multi-partition local exchange ({partitioning}) needs multi-driver tasks, \
                     which this executor does not run yet"
                )));
            }
            loop {
                match chain.next_page()? {
                    Page::End(_) => break,
                    Page::Data(p) => ctx.local_exchanges[*exchange].push(p),
                }
            }
        }
        OperatorSpec::HashJoinBuild { join, keys } => {
            let mut pages = Vec::new();
            loop {
                match chain.next_page()? {
                    Page::End(_) => break,
                    Page::Data(p) => pages.push(p),
                }
            }
            ctx.join_tables[*join] = Some(Arc::new(JoinTable::build(pages, keys)));
        }
        other => {
            return Err(AccordionError::Internal(format!(
                "unhandled sink {}",
                other.name()
            )))
        }
    }
    Ok(())
}

/// Instantiates `specs` (a source followed by streaming operators) into a
/// pull chain.
fn build_chain(specs: &[OperatorSpec], ctx: &mut TaskContext<'_>) -> Result<BoxedStream> {
    let (source, rest) = specs
        .split_first()
        .ok_or_else(|| AccordionError::Execution("pipeline has a sink but no source".into()))?;
    let mut chain = build_source(source, ctx)?;
    for spec in rest {
        chain = wrap_operator(spec, chain, ctx)?;
    }
    Ok(chain)
}

fn build_source(spec: &OperatorSpec, ctx: &mut TaskContext<'_>) -> Result<BoxedStream> {
    match spec {
        OperatorSpec::TableScan { table, projection } => {
            let meta = ctx.catalog.get(table)?;
            // Splits are dealt round-robin across the stage's tasks — the
            // assignment a later PR's scheduler makes dynamic.
            let splits = meta
                .splits
                .splits()
                .iter()
                .enumerate()
                .filter(|(i, _)| *i as u32 % ctx.parallelism == ctx.task_index)
                .map(|(_, s)| s.clone())
                .collect();
            Ok(Box::new(ScanSource::new(
                splits,
                projection.clone(),
                ctx.page_rows,
            )))
        }
        OperatorSpec::ExchangeSource { child_stage } => {
            let partitions = ctx.child_outputs.get(&child_stage.0).ok_or_else(|| {
                AccordionError::Execution(format!("stage {child_stage} has not produced output"))
            })?;
            // A single-partition child broadcasts to every consumer task; a
            // multi-partition child must match the consumer parallelism
            // one-to-one or rows would be silently dropped or duplicated.
            if partitions.len() > 1 && partitions.len() != ctx.parallelism as usize {
                return Err(AccordionError::Execution(format!(
                    "stage {child_stage} produced {} partitions for a consumer of {} tasks",
                    partitions.len(),
                    ctx.parallelism
                )));
            }
            let part = ctx.task_index as usize % partitions.len().max(1);
            let pages = partitions.get(part).cloned().unwrap_or_default();
            Ok(Box::new(QueueSource::new(
                pages,
                EndReason::UpstreamFinished,
            )))
        }
        OperatorSpec::LocalSource { exchange } => {
            let pages =
                std::mem::take(ctx.local_exchanges.get_mut(*exchange).ok_or_else(|| {
                    AccordionError::Execution(format!("unknown local exchange {exchange}"))
                })?);
            Ok(Box::new(QueueSource::new(
                pages,
                EndReason::LocalExchangeDrained,
            )))
        }
        other => Err(AccordionError::Execution(format!(
            "pipeline must start with a source, found {}",
            other.name()
        ))),
    }
}

fn wrap_operator(
    spec: &OperatorSpec,
    input: BoxedStream,
    ctx: &mut TaskContext<'_>,
) -> Result<BoxedStream> {
    Ok(match spec {
        OperatorSpec::Filter { predicate } => Box::new(FilterOp::new(input, predicate.clone())),
        OperatorSpec::Project { exprs } => Box::new(ProjectOp::new(
            input,
            exprs.iter().map(|(e, _)| e.clone()).collect(),
        )),
        OperatorSpec::PartialAggregate {
            group_by,
            aggs,
            output_schema,
        } => Box::new(PartialHashAggOp::new(
            input,
            group_by.clone(),
            aggs.clone(),
            output_schema.clone(),
            ctx.page_rows,
        )),
        OperatorSpec::FinalAggregate {
            group_count,
            aggs,
            output_schema,
        } => Box::new(FinalHashAggOp::new(
            input,
            *group_count,
            aggs.clone(),
            output_schema.clone(),
            ctx.page_rows,
        )),
        OperatorSpec::TopN { keys, n, schema } => Box::new(TopNOp::new(
            input,
            keys.clone(),
            *n,
            schema.clone(),
            ctx.page_rows,
        )),
        OperatorSpec::Sort { keys } => Box::new(SortOp::new(input, keys.clone(), ctx.page_rows)),
        OperatorSpec::Limit { n } => Box::new(LimitOp::new(input, *n)),
        OperatorSpec::HashJoinProbe {
            join,
            keys,
            output_schema,
        } => {
            let table = ctx
                .join_tables
                .get(*join)
                .and_then(|t| t.clone())
                .ok_or_else(|| {
                    AccordionError::Execution(format!(
                        "hash join {join} probed before its build pipeline ran"
                    ))
                })?;
            Box::new(HashJoinProbeOp::new(
                input,
                table,
                keys.clone(),
                output_schema.clone(),
                ctx.page_rows,
            ))
        }
        other => {
            return Err(AccordionError::Execution(format!(
                "operator {} cannot appear mid-pipeline",
                other.name()
            )))
        }
    })
}
