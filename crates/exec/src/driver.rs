//! Driver execution (paper §2 "Driver Execution").
//!
//! A task holds **exchange endpoints**, not materialized page maps: one
//! [`ExchangeReader`] per child stage and one [`ExchangeWriter`] toward its
//! parent, both streaming page-by-page. A driver instantiates one
//! pipeline's [`OperatorSpec`] list into a chain of [`PageStream`]s and
//! pulls pages through it into the pipeline's sink: the task's output
//! writer, a local exchange partition, or a hash-join build table. Every
//! operator in the chain is wrapped in a [`MeteredStream`] recording
//! rows/bytes produced into the query's [`QueryMetrics`].
//!
//! Pipelines still run producer-first inside a task (the order
//! [`accordion_plan::pipeline::split_pipelines`] guarantees), so local
//! exchanges and join tables are materialized before their intra-task
//! consumers start. A **multi-partition** local exchange runs its consumer
//! pipeline once per partition — one driver per partition — which is what
//! lets hash-partitioned merge stages execute inside a single task.
//!
//! When every pipeline has finished, [`run_task`] pushes the in-band end
//! page through the output writer, closing this task's contribution to the
//! downstream exchange (paper Fig 13).
//!
//! [`PageStream`]: crate::operators::PageStream
//! [`MeteredStream`]: crate::metrics::MeteredStream
//! [`QueryMetrics`]: crate::metrics::QueryMetrics

use std::collections::HashMap;
use std::sync::Arc;

use accordion_common::{AccordionError, Result};
use accordion_data::page::{DataPage, EndReason, Page};
use accordion_net::{route_page, ExchangeReader, ExchangeWriter, RoutePolicy};
use accordion_plan::pipeline::{OperatorSpec, PipelineSpec};
use accordion_storage::catalog::Catalog;

use crate::executor::route_policy;
use crate::metrics::{MeteredStream, QueryMetrics};
use crate::operators::{
    BoxedStream, FilterOp, FinalHashAggOp, HashJoinProbeOp, JoinTable, LimitOp, PartialHashAggOp,
    ProjectOp, QueueSource, ScanSource, SortOp, TopNOp,
};
use crate::splits::{FeedScanSource, SplitFeed};

/// Buffered partitions of one intra-task local exchange, routed by the same
/// [`route_page`] helper the network writers use.
struct LocalExchange {
    partitions: Vec<Vec<Arc<DataPage>>>,
    policy: RoutePolicy,
    rr_next: usize,
}

/// Mutable state of one running task.
pub struct TaskContext<'a> {
    pub catalog: &'a Catalog,
    /// The stage this task belongs to.
    pub stage: u32,
    /// This task's sequence number within its stage.
    pub task_index: u32,
    /// Stage parallelism (used to pick this task's splits).
    pub parallelism: u32,
    pub page_rows: usize,
    /// Streaming inputs, one reader per child stage id. A reader is consumed
    /// (moved into the chain) by the pipeline that sources from it.
    inputs: HashMap<u32, Box<dyn ExchangeReader>>,
    /// Streaming output toward the parent stage (or the coordinator).
    output: Box<dyn ExchangeWriter>,
    /// Local exchange buffers, indexed by the splitter's exchange ids.
    local_exchanges: Vec<LocalExchange>,
    /// Hash-join build tables, indexed by the splitter's join ids.
    join_tables: Vec<Option<Arc<JoinTable>>>,
    metrics: Arc<QueryMetrics>,
    /// Elastic-stage scans claim splits from the stage's shared queue via
    /// this feed instead of the static `split_index % parallelism`
    /// assignment — what makes the task set grow/shrinkable between splits.
    split_feed: Option<SplitFeed>,
    /// End reason of the last output pipeline's chain, forwarded by
    /// [`run_task`] as the task's own end page.
    end_reason: EndReason,
}

impl<'a> TaskContext<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        catalog: &'a Catalog,
        stage: u32,
        task_index: u32,
        parallelism: u32,
        page_rows: usize,
        inputs: HashMap<u32, Box<dyn ExchangeReader>>,
        output: Box<dyn ExchangeWriter>,
        pipelines: &[PipelineSpec],
        metrics: Arc<QueryMetrics>,
    ) -> Self {
        let mut policies: Vec<RoutePolicy> = Vec::new();
        let mut joins = 0usize;
        for p in pipelines {
            for op in &p.operators {
                match op {
                    OperatorSpec::LocalSink {
                        exchange,
                        partitioning,
                    } => {
                        if policies.len() <= *exchange {
                            policies.resize(exchange + 1, RoutePolicy::Single);
                        }
                        policies[*exchange] = route_policy(partitioning);
                    }
                    OperatorSpec::LocalSource { exchange } if policies.len() <= *exchange => {
                        policies.resize(exchange + 1, RoutePolicy::Single);
                    }
                    OperatorSpec::HashJoinBuild { join, .. }
                    | OperatorSpec::HashJoinProbe { join, .. } => joins = joins.max(join + 1),
                    _ => {}
                }
            }
        }
        TaskContext {
            catalog,
            stage,
            task_index,
            parallelism: parallelism.max(1),
            page_rows,
            inputs,
            output,
            local_exchanges: policies
                .into_iter()
                .map(|policy| LocalExchange {
                    partitions: vec![Vec::new(); (policy.partition_count() as usize).max(1)],
                    policy,
                    rr_next: 0,
                })
                .collect(),
            join_tables: vec![None; joins],
            metrics,
            split_feed: None,
            end_reason: EndReason::UpstreamFinished,
        }
    }

    /// Makes this task's table scan claim splits from its stage's shared
    /// [`SplitQueue`] (one split at a time) instead of the static
    /// assignment. Set by the cluster scheduler for elastic Source stages.
    ///
    /// [`SplitQueue`]: crate::splits::SplitQueue
    pub fn set_split_feed(&mut self, feed: SplitFeed) {
        self.split_feed = Some(feed);
    }

    /// Number of drivers the pipeline needs: one per local-exchange
    /// partition when it sources from a local exchange, otherwise one.
    fn driver_count(&self, pipeline: &PipelineSpec) -> usize {
        match pipeline.operators.first() {
            Some(OperatorSpec::LocalSource { exchange }) => self
                .local_exchanges
                .get(*exchange)
                .map_or(1, |e| e.partitions.len()),
            _ => 1,
        }
    }
}

/// Runs every pipeline of the task, then closes its output with the in-band
/// end page.
pub fn run_task(pipelines: &[PipelineSpec], ctx: &mut TaskContext<'_>) -> Result<()> {
    for pipeline in pipelines {
        run_pipeline(pipeline, ctx)?;
    }
    let reason = ctx.end_reason;
    ctx.output.push(Page::end(reason))
}

/// Runs one pipeline to completion inside `ctx` — one driver per
/// local-exchange partition it consumes, a single driver otherwise.
pub fn run_pipeline(pipeline: &PipelineSpec, ctx: &mut TaskContext<'_>) -> Result<()> {
    let (sink, upstream) = pipeline
        .operators
        .split_last()
        .ok_or_else(|| AccordionError::Execution("empty pipeline".into()))?;
    if !sink.is_sink() {
        return Err(AccordionError::Execution(format!(
            "pipeline {} does not end in a sink: {}",
            pipeline.id,
            sink.name()
        )));
    }
    let drivers = ctx.driver_count(pipeline);
    if drivers > 1 {
        check_partition_safety(pipeline, upstream, drivers, ctx)?;
    }
    match sink {
        OperatorSpec::Output => {
            for driver in 0..drivers {
                let mut chain = build_chain(upstream, pipeline, driver, ctx)?;
                loop {
                    match chain.next_page()? {
                        Page::End(e) => {
                            ctx.end_reason = e.reason;
                            break;
                        }
                        page @ Page::Data(_) => ctx.output.push(page)?,
                    }
                }
            }
        }
        OperatorSpec::LocalSink { exchange, .. } => {
            for driver in 0..drivers {
                let mut chain = build_chain(upstream, pipeline, driver, ctx)?;
                loop {
                    match chain.next_page()? {
                        Page::End(_) => break,
                        Page::Data(p) => route_local(p, *exchange, ctx)?,
                    }
                }
            }
        }
        OperatorSpec::HashJoinBuild { join, keys } => {
            let mut pages = Vec::new();
            for driver in 0..drivers {
                let mut chain = build_chain(upstream, pipeline, driver, ctx)?;
                loop {
                    match chain.next_page()? {
                        Page::End(_) => break,
                        Page::Data(p) => pages.push(p),
                    }
                }
            }
            ctx.join_tables[*join] = Some(Arc::new(JoinTable::build(pages, keys)));
        }
        other => {
            return Err(AccordionError::Internal(format!(
                "unhandled sink {}",
                other.name()
            )))
        }
    }
    Ok(())
}

/// Per-partition drivers each run their own instance of every operator in
/// the chain, which is only correct for operators whose result is a union
/// of per-partition results. A global Limit, Sort or TopN would silently
/// over-count or mis-order; a FinalAggregate is union-correct only when the
/// local exchange hash-partitions on its group-key columns (the layout the
/// hash-partitioned merge plan produces — every row of one group lands in
/// the same partition).
fn check_partition_safety(
    pipeline: &PipelineSpec,
    upstream: &[OperatorSpec],
    drivers: usize,
    ctx: &TaskContext<'_>,
) -> Result<()> {
    let policy = match pipeline.operators.first() {
        Some(OperatorSpec::LocalSource { exchange }) => &ctx.local_exchanges[*exchange].policy,
        _ => &RoutePolicy::Single,
    };
    for op in upstream {
        match op {
            OperatorSpec::Limit { .. } | OperatorSpec::Sort { .. } | OperatorSpec::TopN { .. } => {
                return Err(AccordionError::Execution(format!(
                    "{} above a {drivers}-partition local exchange needs a merge step \
                     (per-driver instances would not be globally correct)",
                    op.name()
                )));
            }
            OperatorSpec::FinalAggregate { group_count, .. } => {
                let grouped_by_key = matches!(
                    policy,
                    RoutePolicy::Hash { keys, .. }
                        if !keys.is_empty() && keys.iter().all(|&k| k < *group_count)
                );
                if !grouped_by_key {
                    return Err(AccordionError::Execution(format!(
                        "FinalAggregate above a {drivers}-partition local exchange requires \
                         hash partitioning on its group keys (got {policy:?}); other routings \
                         would split a group's partial states across drivers"
                    )));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Routes one page into the partitions of a local exchange (same routing
/// rules as the network writers — see [`route_page`]).
fn route_local(page: Arc<DataPage>, exchange: usize, ctx: &mut TaskContext<'_>) -> Result<()> {
    let ex = ctx
        .local_exchanges
        .get_mut(exchange)
        .ok_or_else(|| AccordionError::Execution(format!("unknown local exchange {exchange}")))?;
    let LocalExchange {
        partitions,
        policy,
        rr_next,
    } = ex;
    route_page(&page, policy, rr_next, partitions.len(), &mut |sink, p| {
        partitions[sink].push(p);
        Ok(())
    })
}

/// Instantiates `specs` (a source followed by streaming operators) into a
/// metered pull chain. `driver` selects the local-exchange partition when
/// the pipeline sources from one.
fn build_chain(
    specs: &[OperatorSpec],
    pipeline: &PipelineSpec,
    driver: usize,
    ctx: &mut TaskContext<'_>,
) -> Result<BoxedStream> {
    let (source, rest) = specs
        .split_first()
        .ok_or_else(|| AccordionError::Execution("pipeline has a sink but no source".into()))?;
    let mut chain = meter(build_source(source, driver, ctx)?, source, pipeline, ctx);
    for spec in rest {
        chain = meter(wrap_operator(spec, chain, ctx)?, spec, pipeline, ctx);
    }
    Ok(chain)
}

fn meter(
    stream: BoxedStream,
    spec: &OperatorSpec,
    pipeline: &PipelineSpec,
    ctx: &TaskContext<'_>,
) -> BoxedStream {
    let m = ctx
        .metrics
        .register(ctx.stage, ctx.task_index, pipeline.id.0, spec.name());
    Box::new(MeteredStream::new(stream, m))
}

fn build_source(
    spec: &OperatorSpec,
    driver: usize,
    ctx: &mut TaskContext<'_>,
) -> Result<BoxedStream> {
    match spec {
        OperatorSpec::TableScan { table, projection } => {
            if let Some(feed) = ctx.split_feed.clone() {
                // Elastic stage: claim splits from the shared queue so the
                // task set can change between splits (paper Fig 13).
                return Ok(Box::new(FeedScanSource::new(
                    feed,
                    projection.clone(),
                    ctx.page_rows,
                )));
            }
            let meta = ctx.catalog.get(table)?;
            // Static assignment: splits are dealt round-robin across the
            // stage's tasks.
            let splits = meta
                .splits
                .splits()
                .iter()
                .enumerate()
                .filter(|(i, _)| *i as u32 % ctx.parallelism == ctx.task_index)
                .map(|(_, s)| s.clone())
                .collect();
            Ok(Box::new(ScanSource::new(
                splits,
                projection.clone(),
                ctx.page_rows,
            )))
        }
        OperatorSpec::ExchangeSource { child_stage } => {
            let reader = ctx.inputs.remove(&child_stage.0).ok_or_else(|| {
                AccordionError::Execution(format!(
                    "task has no exchange reader for stage {child_stage}"
                ))
            })?;
            Ok(Box::new(ReaderSource { reader }))
        }
        OperatorSpec::LocalSource { exchange } => {
            let ex = ctx.local_exchanges.get_mut(*exchange).ok_or_else(|| {
                AccordionError::Execution(format!("unknown local exchange {exchange}"))
            })?;
            let pages = std::mem::take(&mut ex.partitions[driver]);
            Ok(Box::new(QueueSource::new(
                pages,
                EndReason::LocalExchangeDrained,
            )))
        }
        other => Err(AccordionError::Execution(format!(
            "pipeline must start with a source, found {}",
            other.name()
        ))),
    }
}

/// Adapts an [`ExchangeReader`] into the operator chain.
struct ReaderSource {
    reader: Box<dyn ExchangeReader>,
}

impl crate::operators::PageStream for ReaderSource {
    fn next_page(&mut self) -> Result<Page> {
        self.reader.pull()
    }
}

fn wrap_operator(
    spec: &OperatorSpec,
    input: BoxedStream,
    ctx: &mut TaskContext<'_>,
) -> Result<BoxedStream> {
    Ok(match spec {
        OperatorSpec::Filter { predicate } => Box::new(FilterOp::new(input, predicate.clone())),
        OperatorSpec::Project { exprs } => Box::new(ProjectOp::new(
            input,
            exprs.iter().map(|(e, _)| e.clone()).collect(),
        )),
        OperatorSpec::PartialAggregate {
            group_by,
            aggs,
            output_schema,
        } => Box::new(PartialHashAggOp::new(
            input,
            group_by.clone(),
            aggs.clone(),
            output_schema.clone(),
            ctx.page_rows,
        )),
        OperatorSpec::FinalAggregate {
            group_count,
            aggs,
            output_schema,
        } => Box::new(FinalHashAggOp::new(
            input,
            *group_count,
            aggs.clone(),
            output_schema.clone(),
            ctx.page_rows,
        )),
        OperatorSpec::TopN { keys, n, schema } => Box::new(TopNOp::new(
            input,
            keys.clone(),
            *n,
            schema.clone(),
            ctx.page_rows,
        )),
        OperatorSpec::Sort { keys } => Box::new(SortOp::new(input, keys.clone(), ctx.page_rows)),
        OperatorSpec::Limit { n } => Box::new(LimitOp::new(input, *n)),
        OperatorSpec::HashJoinProbe {
            join,
            keys,
            output_schema,
        } => {
            let table = ctx
                .join_tables
                .get(*join)
                .and_then(|t| t.clone())
                .ok_or_else(|| {
                    AccordionError::Execution(format!(
                        "hash join {join} probed before its build pipeline ran"
                    ))
                })?;
            Box::new(HashJoinProbeOp::new(
                input,
                table,
                keys.clone(),
                output_schema.clone(),
                ctx.page_rows,
            ))
        }
        other => {
            return Err(AccordionError::Execution(format!(
                "operator {} cannot appear mid-pipeline",
                other.name()
            )))
        }
    })
}
