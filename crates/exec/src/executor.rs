//! Serial in-process stage-tree execution over exchange endpoints.
//!
//! This module is the **reference implementation** of the execution API:
//! stages run bottom-up in one thread, but all data still flows through the
//! same [`ExchangeRegistry`] endpoints the multi-threaded scheduler in
//! `accordion-cluster` uses — there is no materialized stage-output map
//! anywhere. Because a whole stage completes before its consumer starts,
//! the serial path uses [`ExchangeRegistry::build_in_process`] (unbounded
//! buffers, free network); bounded elastic buffers, the worker pool and the
//! NIC model only make sense with concurrent tasks and live in
//! `accordion-cluster`.
//!
//! [`exchange_topology`] — shared with the cluster scheduler — derives the
//! query's [`ExchangeTopology`] from the stage tree: one edge per stage,
//! `parallelism` producer tasks routing by the stage's output partitioning
//! into one consumer slot per consumer task (stage 0's consumer is the
//! coordinator). All slots are local; the distributed scheduler re-homes
//! slots onto worker nodes before building the registry.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use accordion_common::config::{AdmissionConfig, ElasticityConfig, NetworkConfig};
use accordion_common::{AccordionError, Result};
use accordion_data::page::{DataPage, Page, PageBuilder};
use accordion_data::schema::{Schema, SchemaRef};
use accordion_data::types::Value;
use accordion_net::{EdgeSpec, ExchangeReader, ExchangeRegistry, ExchangeTopology, RoutePolicy};
use accordion_plan::fragment::StageTree;
use accordion_plan::logical::LogicalPlan;
use accordion_plan::optimizer::Optimizer;
use accordion_plan::physical::Partitioning;
use accordion_plan::pipeline::split_pipelines;
use accordion_storage::catalog::Catalog;

use crate::driver::{run_task, TaskContext};
use crate::metrics::{QueryMetrics, QueryStats};

/// Executor tuning.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Target rows per page produced by scans and blocking operators.
    pub page_rows: usize,
    /// Compute slots of the cluster scheduler's worker pool (used by
    /// `accordion-cluster`; the serial executor ignores it). Defaults to
    /// the `ACCORDION_WORKER_THREADS` environment variable, else 4.
    pub worker_threads: usize,
    /// Simulated network shaping: elastic exchange buffer limits plus the
    /// token-bucket NIC model (used by the cluster scheduler).
    pub network: NetworkConfig,
    /// Intra-query re-parallelization controller (used by the cluster
    /// scheduler; the serial executor pins planned DOPs). Defaults to the
    /// `ACCORDION_ELASTICITY` environment variable (`off`, `forced-grow`,
    /// `forced-shrink`, `auto[:deadline_ms]`), else off — what the CI
    /// elasticity matrix toggles.
    pub elasticity: ElasticityConfig,
    /// Multi-query admission control (used by the cluster scheduler, which
    /// reads it from the options its executor was **constructed** with —
    /// per-query option overrides cannot change the shared limit).
    /// Defaults to `ACCORDION_MAX_QUERIES`/`ACCORDION_ADMISSION`, else
    /// unlimited.
    pub admission: AdmissionConfig,
}

impl Default for ExecOptions {
    fn default() -> Self {
        let worker_threads = std::env::var("ACCORDION_WORKER_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(4);
        ExecOptions {
            page_rows: 1024,
            worker_threads,
            network: NetworkConfig::default(),
            elasticity: ElasticityConfig::from_env(),
            admission: AdmissionConfig::from_env(),
        }
    }
}

impl ExecOptions {
    pub fn with_page_rows(page_rows: usize) -> Self {
        assert!(page_rows > 0, "page_rows must be positive");
        ExecOptions {
            page_rows,
            ..ExecOptions::default()
        }
    }

    pub fn worker_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "worker_threads must be positive");
        self.worker_threads = n;
        self
    }

    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    pub fn elasticity(mut self, elasticity: ElasticityConfig) -> Self {
        self.elasticity = elasticity;
        self
    }

    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }
}

/// The materialized result of a query: the output schema, the pages the
/// root stage delivered (in delivery order), and runtime statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    /// `Arc`-shared result pages, exactly as the root stage delivered them.
    pub pages: Vec<Arc<DataPage>>,
    stats: QueryStats,
}

impl QueryResult {
    pub fn new(schema: Schema, pages: Vec<Arc<DataPage>>, stats: QueryStats) -> Self {
        QueryResult {
            schema,
            pages,
            stats,
        }
    }

    pub fn row_count(&self) -> usize {
        self.pages.iter().map(|p| p.row_count()).sum()
    }

    /// All result rows as owned scalars — the assertion path for tests.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.pages.iter().flat_map(|p| p.rows()).collect()
    }

    /// Runtime statistics: rows/bytes produced per operator per task, plus
    /// exchange transfer counters — the raw material for the §5.2
    /// `V_remain / R_consume` what-if predictor.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// The whole result as one page (an empty page of the right arity when
    /// the query produced no rows).
    pub fn concat(&self) -> DataPage {
        if self.pages.is_empty() {
            let schema: SchemaRef = Arc::new(self.schema.clone());
            let mut b = PageBuilder::new(schema, 1);
            return b.finish();
        }
        DataPage::concat(&self.pages.iter().map(|p| p.as_ref()).collect::<Vec<_>>())
    }
}

/// Converts planner partitioning into the network routing policy.
pub fn route_policy(p: &Partitioning) -> RoutePolicy {
    match p {
        Partitioning::Single => RoutePolicy::Single,
        Partitioning::Hash { keys, partitions } => RoutePolicy::Hash {
            keys: keys.clone(),
            partitions: *partitions,
        },
        Partitioning::RoundRobin { partitions } => RoutePolicy::RoundRobin {
            partitions: *partitions,
        },
    }
}

/// Derives the exchange wiring of `tree` as an all-local
/// [`ExchangeTopology`]: one edge per stage, whose consumer is its parent
/// stage's task set (stage 0 is consumed by the coordinator, one slot).
/// Stages in `leased` get the elasticity controller's **writer lease**
/// slot: one extra producer the controller claims and holds so the edge
/// cannot end — and consumers cannot conclude the stage is done — while a
/// mid-query DOP retune is still possible (see `accordion_net::exchange`
/// on the EndSignal handshake). Pass an empty set for non-elastic runs.
///
/// The distributed scheduler takes this as its starting point and re-homes
/// consumer slots onto worker nodes before building each node's registry.
pub fn exchange_topology(tree: &StageTree, leased: &HashSet<u32>) -> Result<ExchangeTopology> {
    let mut consumers: HashMap<u32, u32> = HashMap::new();
    consumers.insert(0, 1);
    for f in tree.fragments() {
        for c in &f.child_stages {
            consumers.insert(c.0, f.parallelism.max(1));
        }
    }
    let mut topology = ExchangeTopology::new(0);
    for f in tree.fragments() {
        let n = consumers.get(&f.stage.0).copied().ok_or_else(|| {
            AccordionError::Internal(format!("stage {} has no consumer", f.stage))
        })?;
        let mut spec = EdgeSpec::local(
            f.stage.0,
            f.parallelism.max(1),
            route_policy(&f.output_partitioning),
            n,
        );
        if leased.contains(&f.stage.0) {
            spec = spec.leased();
        }
        topology = topology.edge(spec);
    }
    Ok(topology)
}

/// Drains the coordinator's reader (stage 0) into result pages.
pub fn drain_result(mut reader: Box<dyn ExchangeReader>) -> Result<Vec<Arc<DataPage>>> {
    let mut pages = Vec::new();
    loop {
        match reader.pull()? {
            Page::End(_) => return Ok(pages),
            Page::Data(p) => {
                if !p.is_empty() {
                    pages.push(p);
                }
            }
        }
    }
}

/// Executes a fragmented stage tree against the catalog, serially in the
/// calling thread. Stages run bottom-up; every task streams its output
/// through exchange endpoints.
pub fn execute_tree(
    catalog: &Catalog,
    tree: &StageTree,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    let topology = exchange_topology(tree, &HashSet::new())?;
    let registry = ExchangeRegistry::build_in_process(&topology)?;
    let metrics = Arc::new(QueryMetrics::new());
    for stage_id in tree.execution_order() {
        let fragment = tree.fragment(stage_id)?;
        let pipelines = split_pipelines(fragment)?;
        for task in 0..fragment.parallelism.max(1) {
            let mut inputs = HashMap::new();
            for child in &fragment.child_stages {
                inputs.insert(child.0, registry.reader(child.0, task, None)?);
            }
            let writer = registry.writer(fragment.stage.0, task, None)?;
            let mut ctx = TaskContext::new(
                catalog,
                fragment.stage.0,
                task,
                fragment.parallelism,
                opts.page_rows,
                inputs,
                writer,
                &pipelines,
                metrics.clone(),
            );
            run_task(&pipelines, &mut ctx)?;
        }
    }
    let pages = drain_result(registry.reader(0, 0, None)?)?;
    Ok(QueryResult::new(
        tree.root().schema(),
        pages,
        metrics.snapshot(registry.stats()),
    ))
}

/// Convenience entry point covering the whole paper §2 pipeline:
/// `LogicalPlan → Optimizer → StageTree → pipelines → drivers → result`.
pub fn execute_logical(
    catalog: &Catalog,
    plan: &LogicalPlan,
    optimizer: &Optimizer,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    let physical = optimizer.optimize(plan)?;
    let tree = StageTree::build(physical)?;
    execute_tree(catalog, &tree, opts)
}
