//! Stage-tree execution.
//!
//! Executes a fragmented plan bottom-up: every stage runs after all of its
//! children, each stage runs `parallelism` tasks, and each task runs its
//! pipelines producer-first. Task outputs are partitioned per the stage's
//! output partitioning and buffered in memory — the single-node stand-in
//! for the paper's task output buffers + exchange operators (later PRs move
//! this behind the simulated network in `accordion-net`).

use std::collections::HashMap;
use std::sync::Arc;

use accordion_common::{AccordionError, Result};
use accordion_data::hash::hash_partition;
use accordion_data::page::{DataPage, PageBuilder};
use accordion_data::schema::{Schema, SchemaRef};
use accordion_data::types::Value;
use accordion_plan::fragment::{PlanFragment, StageTree};
use accordion_plan::logical::LogicalPlan;
use accordion_plan::optimizer::Optimizer;
use accordion_plan::physical::Partitioning;
use accordion_plan::pipeline::split_pipelines;
use accordion_storage::catalog::Catalog;

use crate::driver::{run_pipeline, StageOutputs, TaskContext};

/// Executor tuning.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Target rows per page produced by scans and blocking operators.
    pub page_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { page_rows: 1024 }
    }
}

impl ExecOptions {
    pub fn with_page_rows(page_rows: usize) -> Self {
        assert!(page_rows > 0, "page_rows must be positive");
        ExecOptions { page_rows }
    }
}

/// The materialized result of a query: the output schema plus the pages the
/// root stage delivered, in delivery order.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    /// `Arc`-shared result pages, exactly as the root stage delivered them.
    pub pages: Vec<Arc<DataPage>>,
}

impl QueryResult {
    pub fn row_count(&self) -> usize {
        self.pages.iter().map(|p| p.row_count()).sum()
    }

    /// All result rows as owned scalars — the assertion path for tests.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.pages.iter().flat_map(|p| p.rows()).collect()
    }

    /// The whole result as one page (an empty page of the right arity when
    /// the query produced no rows).
    pub fn concat(&self) -> DataPage {
        if self.pages.is_empty() {
            let schema: SchemaRef = Arc::new(self.schema.clone());
            let mut b = PageBuilder::new(schema, 1);
            return b.finish();
        }
        DataPage::concat(&self.pages.iter().map(|p| p.as_ref()).collect::<Vec<_>>())
    }
}

/// Executes a fragmented stage tree against the catalog.
pub fn execute_tree(
    catalog: &Catalog,
    tree: &StageTree,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    let mut outputs: StageOutputs = HashMap::new();
    for stage_id in tree.execution_order() {
        let fragment = tree.fragment(stage_id)?;
        let partitions = execute_stage(catalog, fragment, &outputs, opts)?;
        outputs.insert(stage_id.0, partitions);
    }
    let mut root_partitions = outputs
        .remove(&0)
        .ok_or_else(|| AccordionError::Internal("root stage produced no output".into()))?;
    if root_partitions.len() > 1 && root_partitions.iter().skip(1).any(|p| !p.is_empty()) {
        return Err(AccordionError::Internal(
            "root stage produced more than one output partition".into(),
        ));
    }
    let pages = if root_partitions.is_empty() {
        Vec::new()
    } else {
        root_partitions
            .swap_remove(0)
            .into_iter()
            .filter(|p| !p.is_empty())
            .collect()
    };
    Ok(QueryResult {
        schema: tree.root().schema(),
        pages,
    })
}

/// Runs every task of one stage; returns its partitioned output.
fn execute_stage(
    catalog: &Catalog,
    fragment: &PlanFragment,
    child_outputs: &StageOutputs,
    opts: &ExecOptions,
) -> Result<Vec<Vec<Arc<DataPage>>>> {
    let pipelines = split_pipelines(fragment)?;
    let n_parts = fragment.output_partitioning.partition_count() as usize;
    let mut partitions: Vec<Vec<Arc<DataPage>>> = vec![Vec::new(); n_parts.max(1)];
    let mut rr_next = 0usize;
    for task in 0..fragment.parallelism {
        let mut ctx = TaskContext::new(
            catalog,
            task,
            fragment.parallelism,
            opts.page_rows,
            child_outputs,
            &pipelines,
        );
        for pipeline in &pipelines {
            run_pipeline(pipeline, &mut ctx)?;
        }
        route_task_output(
            ctx.output,
            &fragment.output_partitioning,
            &mut partitions,
            &mut rr_next,
        );
    }
    Ok(partitions)
}

fn route_task_output(
    pages: Vec<Arc<DataPage>>,
    partitioning: &Partitioning,
    partitions: &mut [Vec<Arc<DataPage>>],
    rr_next: &mut usize,
) {
    match partitioning {
        Partitioning::Single => partitions[0].extend(pages),
        Partitioning::Hash {
            keys,
            partitions: n,
        } => {
            for page in pages {
                for (part, piece) in hash_partition(&page, keys, *n).into_iter().enumerate() {
                    if !piece.is_empty() {
                        partitions[part].push(Arc::new(piece));
                    }
                }
            }
        }
        Partitioning::RoundRobin { .. } => {
            for page in pages {
                partitions[*rr_next % partitions.len()].push(page);
                *rr_next += 1;
            }
        }
    }
}

/// Convenience entry point covering the whole paper §2 pipeline:
/// `LogicalPlan → Optimizer → StageTree → pipelines → drivers → result`.
pub fn execute_logical(
    catalog: &Catalog,
    plan: &LogicalPlan,
    optimizer: &Optimizer,
    opts: &ExecOptions,
) -> Result<QueryResult> {
    let physical = optimizer.optimize(plan)?;
    let tree = StageTree::build(physical)?;
    execute_tree(catalog, &tree, opts)
}
