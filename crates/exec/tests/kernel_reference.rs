//! Property tests for the vectorized hash engine.
//!
//! Seeded random pages (all column types, with nulls) are run through the
//! vectorized paths — column-at-a-time hashing, grouped aggregation on the
//! open-addressing table with typed accumulators, and selection-vector hash
//! join — and cross-checked against scalar reference implementations built
//! from the retained row-at-a-time pieces ([`AggState`], `encode_key`,
//! nested-loop join). Any divergence in results, null handling, or output
//! order is a bug in the kernels.

use std::collections::BTreeMap;
use std::sync::Arc;

use accordion_data::column::ColumnBuilder;
use accordion_data::hash::{hash_row, hash_rows};
use accordion_data::page::{DataPage, EndReason, Page};
use accordion_data::rowkey::encode_key;
use accordion_data::schema::{Field, Schema};
use accordion_data::types::{DataType, Value};
use accordion_exec::operators::{
    FinalHashAggOp, HashJoinProbeOp, PageStream, PartialHashAggOp, QueueSource,
};
use accordion_exec::JoinTable;
use accordion_expr::agg::{AggAccumulator, AggKind, AggSpec, AggState};
use accordion_expr::scalar::Expr;

// ---------------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------------

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Random value of `dt`. Keys draw from a small domain so groups and join
/// matches actually collide; values include negatives, extremes and NaN.
fn random_value(rng: &mut XorShift, dt: DataType, small_domain: bool) -> Value {
    match dt {
        DataType::Int64 => {
            if small_domain {
                Value::Int64(rng.below(7) as i64 - 3)
            } else {
                match rng.below(20) {
                    0 => Value::Int64(i64::MAX),
                    1 => Value::Int64(i64::MIN),
                    _ => Value::Int64(rng.next() as i64 >> 16),
                }
            }
        }
        DataType::Float64 => {
            if small_domain {
                Value::Float64(rng.below(5) as f64 - 2.0)
            } else {
                match rng.below(20) {
                    0 => Value::Float64(f64::NAN),
                    1 => Value::Float64(-0.0),
                    2 => Value::Float64(f64::INFINITY),
                    _ => Value::Float64((rng.next() as i64 >> 20) as f64 / 64.0),
                }
            }
        }
        DataType::Bool => Value::Bool(rng.chance(50)),
        DataType::Date32 => Value::Date32(if small_domain {
            rng.below(5) as i32
        } else {
            rng.next() as i32 >> 8
        }),
        DataType::Utf8 => {
            let words = ["", "a", "ab", "ünïcodé", "longer-string-value", "zz"];
            Value::Utf8(words[rng.below(words.len() as u64) as usize].to_string())
        }
    }
}

fn random_column(
    rng: &mut XorShift,
    dt: DataType,
    rows: usize,
    null_pct: u64,
    small_domain: bool,
) -> accordion_data::Column {
    let mut b = ColumnBuilder::new(dt, rows);
    for _ in 0..rows {
        if rng.chance(null_pct) {
            b.push(Value::Null);
        } else {
            b.push(random_value(rng, dt, small_domain));
        }
    }
    b.finish()
}

/// Splits a page at random boundaries into 1..=4 chunks.
fn random_split(rng: &mut XorShift, page: &DataPage) -> Vec<DataPage> {
    let rows = page.row_count();
    if rows == 0 {
        return vec![];
    }
    let mut cuts: Vec<usize> = (0..rng.below(3))
        .map(|_| rng.below(rows as u64) as usize)
        .collect();
    cuts.push(0);
    cuts.push(rows);
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2)
        .map(|w| page.slice(w[0], w[1] - w[0]))
        .collect()
}

fn drain(mut s: impl PageStream) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    loop {
        match s.next_page().unwrap() {
            Page::End(_) => return rows,
            Page::Data(p) => rows.extend(p.rows()),
        }
    }
}

fn source(pages: Vec<DataPage>) -> Box<dyn PageStream> {
    Box::new(QueueSource::new(
        pages.into_iter().map(Arc::new).collect(),
        EndReason::UpstreamFinished,
    ))
}

// ---------------------------------------------------------------------------
// Hash kernels
// ---------------------------------------------------------------------------

#[test]
fn hash_columns_bit_identical_to_scalar_and_split_invariant() {
    let all = [
        DataType::Int64,
        DataType::Float64,
        DataType::Bool,
        DataType::Date32,
        DataType::Utf8,
    ];
    for seed in 0..30 {
        let mut rng = XorShift::new(seed);
        let rows = rng.below(120) as usize;
        let cols: Vec<_> = all
            .iter()
            .map(|&dt| {
                let small = rng.chance(50);
                random_column(&mut rng, dt, rows, 25, small)
            })
            .collect();
        let page = if rows == 0 {
            continue;
        } else {
            DataPage::new(cols)
        };
        let keys: Vec<usize> = (0..all.len()).filter(|_| rng.chance(70)).collect();
        let vectorized = hash_rows(&page, &keys);
        // Bit-identical to the row-at-a-time reference.
        for (row, &h) in vectorized.iter().enumerate() {
            assert_eq!(
                h,
                hash_row(&page, &keys, row),
                "seed {seed} row {row}: vectorized hash diverged from scalar"
            );
        }
        // Invariant under page boundaries: hashing the chunks of a random
        // split yields the same per-row hashes, so §4.2.1 repartitioning is
        // deterministic no matter how the scan chunked its input.
        let mut chunked = Vec::with_capacity(rows);
        for chunk in random_split(&mut rng, &page) {
            chunked.extend(hash_rows(&chunk, &keys));
        }
        assert_eq!(vectorized, chunked, "seed {seed}: split changed hashes");
    }
}

// ---------------------------------------------------------------------------
// Grouped aggregation
// ---------------------------------------------------------------------------

/// Scalar reference: BTreeMap over encoded keys + one [`AggState`] per agg,
/// exactly the engine this PR replaced. Emits key values ++ finished values
/// in encoded-key order.
fn reference_grouped_agg(
    pages: &[DataPage],
    key_cols: &[usize],
    value_col: usize,
    aggs: &[AggSpec],
) -> Vec<Vec<Value>> {
    let mut groups: BTreeMap<Vec<u8>, (Vec<Value>, Vec<AggState>)> = BTreeMap::new();
    for page in pages {
        for row in 0..page.row_count() {
            let key = encode_key(page, key_cols, row);
            let entry = groups.entry(key).or_insert_with(|| {
                (
                    key_cols
                        .iter()
                        .map(|&k| page.column(k).value(row))
                        .collect(),
                    aggs.iter().map(|a| a.new_state()).collect(),
                )
            });
            for (state, spec) in entry.1.iter_mut().zip(aggs) {
                match &spec.input {
                    Some(_) => state.update(&page.column(value_col).value(row)),
                    None => state.update(&Value::Int64(1)),
                }
            }
        }
    }
    groups
        .into_values()
        .map(|(mut key_vals, states)| {
            key_vals.extend(states.iter().map(|s| s.finish()));
            key_vals
        })
        .collect()
}

#[test]
fn grouped_agg_matches_scalar_reference() {
    let key_types = [
        DataType::Int64,
        DataType::Float64,
        DataType::Bool,
        DataType::Date32,
        DataType::Utf8,
    ];
    for seed in 0..40 {
        let mut rng = XorShift::new(1000 + seed);
        let rows = rng.below(150) as usize;
        let n_keys = 1 + rng.below(2) as usize;
        let kts: Vec<DataType> = (0..n_keys)
            .map(|_| key_types[rng.below(key_types.len() as u64) as usize])
            .collect();
        let value_type = if rng.chance(50) {
            DataType::Int64
        } else {
            DataType::Float64
        };
        let mut cols: Vec<_> = kts
            .iter()
            .map(|&dt| random_column(&mut rng, dt, rows, 20, true))
            .collect();
        cols.push(random_column(&mut rng, value_type, rows, 20, false));
        let value_col = n_keys;
        let page = DataPage::new(cols);
        let key_cols: Vec<usize> = (0..n_keys).collect();

        let arg = Expr::col(value_col);
        let aggs = vec![
            AggSpec::count_star("cnt"),
            AggSpec::new(AggKind::Count, arg.clone(), value_type, "c"),
            AggSpec::new(AggKind::Sum, arg.clone(), value_type, "s"),
            AggSpec::new(AggKind::Avg, arg.clone(), value_type, "a"),
            AggSpec::new(AggKind::Min, arg.clone(), value_type, "mn"),
            AggSpec::new(AggKind::Max, arg.clone(), value_type, "mx"),
        ];
        // The acceptance contract: numeric aggregates run on typed
        // accumulator vectors, never the per-row Value fallback.
        for spec in &aggs {
            assert!(
                !matches!(
                    AggAccumulator::for_spec(spec),
                    AggAccumulator::Scalar { .. }
                ),
                "numeric agg {} fell back to scalar states",
                spec.name
            );
        }

        let mut partial_fields: Vec<Field> = kts
            .iter()
            .enumerate()
            .map(|(i, &dt)| Field::new(format!("k{i}"), dt))
            .collect();
        let mut final_fields = partial_fields.clone();
        for spec in &aggs {
            for (i, dt) in spec.partial_state_types().into_iter().enumerate() {
                partial_fields.push(Field::new(format!("{}#p{i}", spec.name), dt));
            }
            final_fields.push(Field::new(spec.name.clone(), spec.output_type()));
        }

        let chunks = random_split(&mut rng, &page);
        let expected = reference_grouped_agg(&chunks, &key_cols, value_col, &aggs);

        let page_rows = 1 + rng.below(64) as usize;
        let partial = PartialHashAggOp::new(
            source(chunks),
            key_cols.clone(),
            aggs.clone(),
            Schema::new(partial_fields),
            page_rows,
        );
        let fin = FinalHashAggOp::new(
            Box::new(partial),
            n_keys,
            aggs,
            Schema::new(final_fields),
            page_rows,
        );
        let got = drain(fin);
        assert_eq!(got, expected, "seed {seed}: grouped agg diverged");
    }
}

#[test]
fn global_agg_matches_scalar_reference_including_empty_input() {
    for seed in 0..15 {
        let mut rng = XorShift::new(9000 + seed);
        let rows = rng.below(40) as usize; // often tiny, sometimes 0
        let col = random_column(&mut rng, DataType::Int64, rows, 30, false);
        let page = DataPage::new(vec![col]);
        let aggs = vec![
            AggSpec::count_star("cnt"),
            AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Int64, "s"),
        ];
        let chunks = random_split(&mut rng, &page);
        // Reference: global agg always yields exactly one row.
        let mut states: Vec<AggState> = aggs.iter().map(|a| a.new_state()).collect();
        for chunk in &chunks {
            for row in 0..chunk.row_count() {
                states[0].update(&Value::Int64(1));
                states[1].update(&chunk.column(0).value(row));
            }
        }
        let expected = vec![states.iter().map(|s| s.finish()).collect::<Vec<_>>()];

        let partial = PartialHashAggOp::new(
            source(chunks),
            vec![],
            aggs.clone(),
            Schema::new(vec![
                Field::new("cnt#p0", DataType::Int64),
                Field::new("s#p0", DataType::Int64),
            ]),
            8,
        );
        let fin = FinalHashAggOp::new(
            Box::new(partial),
            0,
            aggs,
            Schema::new(vec![
                Field::new("cnt", DataType::Int64),
                Field::new("s", DataType::Int64),
            ]),
            8,
        );
        assert_eq!(drain(fin), expected, "seed {seed}: global agg diverged");
    }
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// Scalar reference: nested-loop equi-join on encoded key bytes (the
/// engine's own equality definition), NULL keys excluded on both sides,
/// build rows in concatenated build order.
fn reference_join(
    build_pages: &[DataPage],
    probe_pages: &[DataPage],
    build_keys: &[usize],
    probe_keys: &[usize],
) -> Vec<Vec<Value>> {
    let mut build_rows: Vec<(Vec<u8>, Vec<Value>)> = Vec::new();
    for page in build_pages {
        'rows: for row in 0..page.row_count() {
            for &k in build_keys {
                if !page.column(k).is_valid(row) {
                    continue 'rows;
                }
            }
            build_rows.push((encode_key(page, build_keys, row), page.row(row)));
        }
    }
    let mut out = Vec::new();
    for page in probe_pages {
        'rows: for row in 0..page.row_count() {
            for &k in probe_keys {
                if !page.column(k).is_valid(row) {
                    continue 'rows;
                }
            }
            let key = encode_key(page, probe_keys, row);
            for (bkey, brow) in &build_rows {
                if *bkey == key {
                    let mut r = page.row(row);
                    r.extend(brow.iter().cloned());
                    out.push(r);
                }
            }
        }
    }
    out
}

#[test]
fn hash_join_matches_nested_loop_reference() {
    let key_types = [DataType::Int64, DataType::Date32, DataType::Utf8];
    for seed in 0..40 {
        let mut rng = XorShift::new(5000 + seed);
        let kt = key_types[rng.below(key_types.len() as u64) as usize];
        let build_rows = rng.below(60) as usize;
        let probe_rows = rng.below(120) as usize;
        let build = DataPage::new(vec![
            random_column(&mut rng, kt, build_rows, 15, true),
            random_column(&mut rng, DataType::Int64, build_rows, 10, false),
        ]);
        let probe = DataPage::new(vec![
            random_column(&mut rng, kt, probe_rows, 15, true),
            random_column(&mut rng, DataType::Float64, probe_rows, 10, false),
        ]);
        let build_chunks = random_split(&mut rng, &build);
        let probe_chunks = random_split(&mut rng, &probe);

        let expected = reference_join(&build_chunks, &probe_chunks, &[0], &[0]);

        let table = Arc::new(JoinTable::build(
            build_chunks.iter().cloned().map(Arc::new).collect(),
            &[0],
        ));
        let schema = Schema::new(vec![
            Field::new("pk", kt),
            Field::new("pv", DataType::Float64),
            Field::new("bk", kt),
            Field::new("bv", DataType::Int64),
        ]);
        let op = HashJoinProbeOp::new(source(probe_chunks), table, vec![0], schema, 32);
        assert_eq!(drain(op), expected, "seed {seed}: join diverged");
    }
}

#[test]
fn cross_join_on_no_keys_matches_reference() {
    let mut rng = XorShift::new(777);
    let build = DataPage::new(vec![random_column(&mut rng, DataType::Int64, 7, 20, true)]);
    let probe = DataPage::new(vec![random_column(&mut rng, DataType::Utf8, 5, 20, true)]);
    let expected = reference_join(
        std::slice::from_ref(&build),
        std::slice::from_ref(&probe),
        &[],
        &[],
    );
    assert_eq!(expected.len(), 35, "cross join is the full product");
    let table = Arc::new(JoinTable::build(vec![Arc::new(build)], &[]));
    let schema = Schema::new(vec![
        Field::new("p", DataType::Utf8),
        Field::new("b", DataType::Int64),
    ]);
    let op = HashJoinProbeOp::new(source(vec![probe]), table, vec![], schema, 32);
    assert_eq!(drain(op), expected);
}
