//! Multi-partition local exchanges: the PR-1 executor rejected any local
//! exchange with more than one partition ("needs multi-driver tasks"); the
//! driver now runs one driver per partition. These tests hand-build the
//! physical shape the optimizer will emit for hash-partitioned final
//! aggregation — partial aggregate → gather exchange → hash local exchange
//! → final aggregate — and check exact results and the per-operator stats.

use std::sync::Arc;

use accordion_data::schema::{Field, Schema};
use accordion_data::sort::SortKey;
use accordion_data::types::{DataType, Value};
use accordion_exec::{execute_tree, ExecOptions};
use accordion_expr::agg::{AggKind, AggSpec};
use accordion_expr::scalar::Expr;
use accordion_plan::fragment::StageTree;
use accordion_plan::physical::{Partitioning, PhysicalNode};
use accordion_storage::catalog::Catalog;
use accordion_storage::table::{PartitioningScheme, TableBuilder};

fn catalog() -> Catalog {
    let c = Catalog::new();
    let schema = Schema::shared(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]);
    let mut b = TableBuilder::new("facts", schema, 3);
    for n in 0..30i64 {
        b.push_row(vec![Value::Int64(n % 6), Value::Int64(n)]);
    }
    b.register(&c, PartitioningScheme::new(2, 2), 0);
    c
}

fn scan() -> Arc<PhysicalNode> {
    Arc::new(PhysicalNode::TableScan {
        table: "facts".into(),
        table_schema: Schema::shared(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]),
        projection: vec![0, 1],
    })
}

fn sum_agg() -> Vec<AggSpec> {
    vec![AggSpec::new(
        AggKind::Sum,
        Expr::col(1),
        DataType::Int64,
        "total",
    )]
}

/// partial agg (DOP 3) → gather → hash local exchange (2 partitions) →
/// final agg, sorted for a deterministic assertion.
fn hash_merge_plan(local_partitions: u32) -> Arc<PhysicalNode> {
    let partial = Arc::new(PhysicalNode::PartialAggregate {
        input: scan(),
        group_by: vec![0],
        aggs: sum_agg(),
    });
    let exchange = Arc::new(PhysicalNode::Exchange {
        input: partial,
        partitioning: Partitioning::Single,
        input_parallelism: 3,
    });
    let local = Arc::new(PhysicalNode::LocalExchange {
        input: exchange,
        partitioning: Partitioning::Hash {
            keys: vec![0],
            partitions: local_partitions,
        },
    });
    let final_agg = Arc::new(PhysicalNode::FinalAggregate {
        input: local,
        group_count: 1,
        aggs: sum_agg(),
    });
    Arc::new(PhysicalNode::Sort {
        input: Arc::new(PhysicalNode::LocalExchange {
            input: final_agg,
            partitioning: Partitioning::Single,
        }),
        keys: vec![SortKey::asc(0)],
    })
}

fn expected_groups() -> Vec<Vec<Value>> {
    // k = n % 6 over n in 0..30: each k has 5 values k, k+6, ..., k+24.
    (0..6i64)
        .map(|k| vec![Value::Int64(k), Value::Int64(5 * k + 60)])
        .collect()
}

#[test]
fn hash_partitioned_local_exchange_executes() {
    let c = catalog();
    for partitions in [2u32, 3] {
        let tree = StageTree::build(hash_merge_plan(partitions)).unwrap();
        let result = execute_tree(&c, &tree, &ExecOptions::with_page_rows(2)).unwrap();
        assert_eq!(
            result.rows(),
            expected_groups(),
            "{partitions}-partition local exchange"
        );
        // One FinalAggregate driver ran per partition of the local exchange.
        let final_drivers = result
            .stats()
            .operators
            .iter()
            .filter(|o| o.operator == "FinalAggregate")
            .count();
        assert_eq!(final_drivers, partitions as usize);
    }
}

#[test]
fn round_robin_local_exchange_executes() {
    // Round-robin deals pages across drivers; a per-driver Filter (a
    // partition-safe operator) then feeds the output. Row membership of the
    // union must be preserved.
    let c = catalog();
    let local = Arc::new(PhysicalNode::LocalExchange {
        input: scan(),
        partitioning: Partitioning::RoundRobin { partitions: 2 },
    });
    let filtered = Arc::new(PhysicalNode::Filter {
        input: local,
        predicate: Expr::gt(Expr::col(1), Expr::lit_i64(9)),
    });
    let tree = StageTree::build(filtered).unwrap();
    let result = execute_tree(&c, &tree, &ExecOptions::with_page_rows(4)).unwrap();
    assert_eq!(result.row_count(), 20);
    let mut vs: Vec<i64> = result
        .rows()
        .iter()
        .map(|r| match r[1] {
            Value::Int64(v) => v,
            _ => unreachable!(),
        })
        .collect();
    vs.sort_unstable();
    assert_eq!(vs, (10..30).collect::<Vec<_>>());
}

#[test]
fn global_operators_above_multi_partition_local_exchange_are_rejected() {
    // A global Sort/Limit/TopN instantiated once per partition driver would
    // silently mis-order or over-count — the executor must error loudly.
    let c = catalog();
    for node in [
        Arc::new(PhysicalNode::Sort {
            input: Arc::new(PhysicalNode::LocalExchange {
                input: scan(),
                partitioning: Partitioning::RoundRobin { partitions: 2 },
            }),
            keys: vec![SortKey::asc(1)],
        }),
        Arc::new(PhysicalNode::Limit {
            input: Arc::new(PhysicalNode::LocalExchange {
                input: scan(),
                partitioning: Partitioning::Hash {
                    keys: vec![0],
                    partitions: 2,
                },
            }),
            n: 10,
        }),
    ] {
        let tree = StageTree::build(node).unwrap();
        let err = execute_tree(&c, &tree, &ExecOptions::with_page_rows(4)).unwrap_err();
        assert!(
            err.to_string().contains("needs a merge step"),
            "unexpected error: {err}"
        );
    }
}

#[test]
fn final_aggregate_requires_group_key_hash_partitioning() {
    // A FinalAggregate is only union-correct across partition drivers when
    // every row of a group lands in one partition. Round-robin (splits a
    // group's partial states) and hash on a non-group column must error.
    let c = catalog();
    for partitioning in [
        Partitioning::RoundRobin { partitions: 2 },
        // Key 1 is the first aggregate-state column, not a group column.
        Partitioning::Hash {
            keys: vec![1],
            partitions: 2,
        },
    ] {
        let partial = Arc::new(PhysicalNode::PartialAggregate {
            input: scan(),
            group_by: vec![0],
            aggs: sum_agg(),
        });
        let node = Arc::new(PhysicalNode::FinalAggregate {
            input: Arc::new(PhysicalNode::LocalExchange {
                input: partial,
                partitioning: partitioning.clone(),
            }),
            group_count: 1,
            aggs: sum_agg(),
        });
        let tree = StageTree::build(node).unwrap();
        let err = execute_tree(&c, &tree, &ExecOptions::with_page_rows(4)).unwrap_err();
        assert!(
            err.to_string()
                .contains("hash partitioning on its group keys"),
            "{partitioning}: unexpected error: {err}"
        );
    }
}

#[test]
fn stats_snapshot_covers_scan_and_aggregate() {
    let c = catalog();
    let tree = StageTree::build(hash_merge_plan(2)).unwrap();
    let result = execute_tree(&c, &tree, &ExecOptions::with_page_rows(2)).unwrap();
    let stats = result.stats();
    assert_eq!(stats.rows_produced("TableScan"), 30);
    assert_eq!(stats.rows_produced("FinalAggregate"), 6);
    assert!(stats.bytes_produced("PartialAggregate") > 0);
    assert!(
        stats.exchange.pages > 0,
        "partial states crossed the exchange"
    );
    // Page arity: every operator instance is tagged with its stage/task.
    assert!(stats.operators.iter().any(|o| o.stage == 1));
    assert!(stats.operators.iter().all(|o| o.rows_per_sec >= 0.0));

    // Concat of an empty result keeps the schema arity (regression for the
    // QueryResult helpers surviving the API redesign).
    assert_eq!(result.concat().row_count(), 6);
}
