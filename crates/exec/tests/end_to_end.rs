//! Golden end-to-end query tests: `LogicalPlanBuilder → Optimizer →
//! StageTree → split_pipelines → exec` against hand-computed expectations.
//!
//! The fixture table mirrors a tiny sales fact table with NULLs in `qty`,
//! registered twice: `sales` spread over 4 splits on 2 nodes (exercising
//! multi-task scans) and `sales1` as a single split (for order-sensitive
//! golden results without a final sort).

use accordion_data::schema::{Field, Schema};
use accordion_data::types::{DataType, Value};
use accordion_exec::{execute_logical, execute_tree, ExecOptions, QueryResult};
use accordion_expr::agg::AggKind;
use accordion_expr::scalar::Expr;
use accordion_plan::fragment::{StageKind, StageTree};
use accordion_plan::optimizer::{Optimizer, OptimizerConfig};
use accordion_plan::pipeline::split_pipelines;
use accordion_plan::LogicalPlanBuilder;
use accordion_storage::catalog::Catalog;
use accordion_storage::table::{PartitioningScheme, TableBuilder};

fn i(v: i64) -> Value {
    Value::Int64(v)
}
fn f(v: f64) -> Value {
    Value::Float64(v)
}
fn s(v: &str) -> Value {
    Value::Utf8(v.to_string())
}

/// 8 rows; qty is NULL for rows 2 and 6.
/// (region, product, qty, price)
fn sales_rows() -> Vec<Vec<Value>> {
    vec![
        vec![s("east"), s("apple"), i(10), f(1.0)],
        vec![s("east"), s("banana"), i(5), f(2.0)],
        vec![s("east"), s("apple"), Value::Null, f(3.0)],
        vec![s("west"), s("banana"), i(20), f(1.5)],
        vec![s("west"), s("apple"), i(7), f(2.5)],
        vec![s("west"), s("cherry"), i(1), f(4.0)],
        vec![s("north"), s("cherry"), Value::Null, f(0.5)],
        vec![s("north"), s("apple"), i(2), f(1.0)],
    ]
}

fn sales_schema() -> Schema {
    Schema::new(vec![
        Field::new("region", DataType::Utf8),
        Field::new("product", DataType::Utf8),
        Field::new("qty", DataType::Int64),
        Field::new("price", DataType::Float64),
    ])
}

fn catalog() -> Catalog {
    let c = Catalog::new();
    // Multi-split copy: 2 nodes × 2 splits, 3-row pages.
    let mut b = TableBuilder::new("sales", std::sync::Arc::new(sales_schema()), 3);
    for row in sales_rows() {
        b.push_row(row);
    }
    b.register(&c, PartitioningScheme::new(2, 2), 0);
    // Single-split copy preserving row order.
    let mut b = TableBuilder::new("sales1", std::sync::Arc::new(sales_schema()), 1024);
    for row in sales_rows() {
        b.push_row(row);
    }
    b.register(&c, PartitioningScheme::new(1, 1), 0);
    // Empty and all-null tables for the edge-case shapes.
    let empty_schema = Schema::shared(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Float64),
    ]);
    TableBuilder::new("empty", empty_schema.clone(), 8).register(
        &c,
        PartitioningScheme::new(2, 1),
        0,
    );
    let mut b = TableBuilder::new("nulls", empty_schema, 2);
    for _ in 0..5 {
        b.push_row(vec![Value::Int64(1), Value::Null]);
    }
    b.register(&c, PartitioningScheme::new(2, 1), 0);
    c
}

fn run(catalog: &Catalog, builder: LogicalPlanBuilder, dop: u32) -> QueryResult {
    let optimizer = Optimizer::new(OptimizerConfig::default().with_parallelism(dop));
    execute_logical(
        catalog,
        &builder.build(),
        &optimizer,
        &ExecOptions::with_page_rows(3),
    )
    .unwrap()
}

fn sorted_rows(result: &QueryResult) -> Vec<Vec<Value>> {
    let mut rows = result.rows();
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

// -- golden shape 1: plain scan -------------------------------------------

#[test]
fn golden_scan() {
    let c = catalog();
    let result = run(&c, LogicalPlanBuilder::scan(&c, "sales1").unwrap(), 1);
    assert_eq!(result.schema.len(), 4);
    assert_eq!(result.rows(), sales_rows(), "serial scan preserves order");
    // The same rows come back from the 4-split copy at dop 3.
    let parallel = run(&c, LogicalPlanBuilder::scan(&c, "sales").unwrap(), 3);
    assert_eq!(sorted_rows(&parallel).len(), 8);
    let mut expected = sales_rows();
    expected.sort_by(|a, b| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    assert_eq!(sorted_rows(&parallel), expected);
}

// -- golden shape 2: scan + filter ----------------------------------------

#[test]
fn golden_filter() {
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "sales1").unwrap();
    let pred = Expr::gt(b.col("qty").unwrap(), Expr::lit_i64(4));
    let result = run(&c, b.filter(pred).unwrap(), 1);
    // NULL qty rows are dropped by SQL comparison semantics.
    assert_eq!(
        result.rows(),
        vec![
            vec![s("east"), s("apple"), i(10), f(1.0)],
            vec![s("east"), s("banana"), i(5), f(2.0)],
            vec![s("west"), s("banana"), i(20), f(1.5)],
            vec![s("west"), s("apple"), i(7), f(2.5)],
        ]
    );
}

// -- golden shape 3: projection arithmetic --------------------------------

#[test]
fn golden_projection_arithmetic() {
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "sales1").unwrap();
    let revenue = Expr::mul(b.col("qty").unwrap(), b.col("price").unwrap());
    let result = run(
        &c,
        b.clone()
            .project(vec![
                (b.col("product").unwrap(), "product"),
                (revenue, "revenue"),
            ])
            .unwrap(),
        1,
    );
    assert_eq!(result.schema.field(1).name, "revenue");
    assert_eq!(result.schema.field(1).data_type, DataType::Float64);
    assert_eq!(
        result.rows(),
        vec![
            vec![s("apple"), f(10.0)],
            vec![s("banana"), f(10.0)],
            vec![s("apple"), Value::Null], // NULL qty propagates
            vec![s("banana"), f(30.0)],
            vec![s("apple"), f(17.5)],
            vec![s("cherry"), f(4.0)],
            vec![s("cherry"), Value::Null],
            vec![s("apple"), f(2.0)],
        ]
    );
}

// -- golden shape 4: COUNT/SUM/AVG/MIN/MAX group-by (partial → final) -----

#[test]
fn golden_group_by_all_agg_kinds() {
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "sales").unwrap();
    let aggs = vec![
        b.agg(AggKind::Count, "qty", "cnt").unwrap(),
        b.agg(AggKind::Sum, "qty", "total").unwrap(),
        b.agg(AggKind::Avg, "qty", "mean").unwrap(),
        b.agg(AggKind::Min, "qty", "lo").unwrap(),
        b.agg(AggKind::Max, "qty", "hi").unwrap(),
    ];
    let plan = b
        .aggregate(&["region"], aggs)
        .unwrap()
        .top_n(&[("region", false)], 10)
        .unwrap();
    let result = run(&c, plan, 4);
    // COUNT skips NULLs; AVG divides by the non-null count; MIN/MAX ignore
    // NULLs. east: qty {10,5,NULL}; north: {NULL,2}; west: {20,7,1}.
    assert_eq!(
        result.rows(),
        vec![
            vec![s("east"), i(2), i(15), f(7.5), i(5), i(10)],
            vec![s("north"), i(1), i(2), f(2.0), i(2), i(2)],
            vec![s("west"), i(3), i(28), f(28.0 / 3.0), i(1), i(20)],
        ]
    );
}

// -- golden shape 5: ungrouped (global) aggregate -------------------------

#[test]
fn golden_global_aggregate() {
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "sales").unwrap();
    let aggs = vec![
        accordion_expr::agg::AggSpec::count_star("rows"),
        b.agg(AggKind::Sum, "qty", "total").unwrap(),
    ];
    let plan = b.aggregate(&[], aggs).unwrap();
    let result = run(&c, plan, 4);
    assert_eq!(result.row_count(), 1);
    assert_eq!(result.rows(), vec![vec![i(8), i(45)]]);
}

// -- golden shape 6: ORDER BY multi-key with NULLs ------------------------

#[test]
fn golden_order_by_multi_key_with_nulls() {
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "sales").unwrap();
    // ORDER BY qty ASC (NULLs first), price DESC — over all 8 rows.
    let plan = b
        .select(&["qty", "price", "product"])
        .unwrap()
        .top_n(&[("qty", false), ("price", true)], 100)
        .unwrap();
    let result = run(&c, plan, 3);
    assert_eq!(
        result.rows(),
        vec![
            vec![Value::Null, f(3.0), s("apple")], // null qty, higher price first
            vec![Value::Null, f(0.5), s("cherry")],
            vec![i(1), f(4.0), s("cherry")],
            vec![i(2), f(1.0), s("apple")],
            vec![i(5), f(2.0), s("banana")],
            vec![i(7), f(2.5), s("apple")],
            vec![i(10), f(1.0), s("apple")],
            vec![i(20), f(1.5), s("banana")],
        ]
    );
}

// -- golden shape 7: LIMIT and TopN ---------------------------------------

#[test]
fn golden_limit_and_topn() {
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "sales1").unwrap();
    let limited = run(&c, b.limit(3).unwrap(), 1);
    assert_eq!(limited.rows(), sales_rows()[..3].to_vec());

    let b = LogicalPlanBuilder::scan(&c, "sales").unwrap();
    let top = run(&c, b.top_n(&[("qty", true)], 2).unwrap(), 4);
    assert_eq!(
        top.rows(),
        vec![
            vec![s("west"), s("banana"), i(20), f(1.5)],
            vec![s("east"), s("apple"), i(10), f(1.0)],
        ]
    );

    // LIMIT larger than the table returns everything.
    let b = LogicalPlanBuilder::scan(&c, "sales").unwrap();
    let all = run(&c, b.limit(99).unwrap(), 4);
    assert_eq!(all.row_count(), 8);
}

// -- golden shape 8: empty input ------------------------------------------

#[test]
fn golden_empty_input() {
    let c = catalog();
    // Scan of an empty table: zero rows, right schema.
    let scan = run(&c, LogicalPlanBuilder::scan(&c, "empty").unwrap(), 2);
    assert_eq!(scan.row_count(), 0);
    assert_eq!(scan.schema.len(), 2);
    assert_eq!(scan.concat().row_count(), 0);

    // Grouped aggregate over empty input: zero groups.
    let b = LogicalPlanBuilder::scan(&c, "empty").unwrap();
    let sum = b.agg(AggKind::Sum, "v", "s").unwrap();
    let grouped = run(&c, b.aggregate(&["k"], vec![sum]).unwrap(), 2);
    assert_eq!(grouped.row_count(), 0);

    // Global aggregate over empty input: one row, COUNT 0 / SUM NULL.
    let b = LogicalPlanBuilder::scan(&c, "empty").unwrap();
    let aggs = vec![
        b.agg(AggKind::Count, "k", "c").unwrap(),
        b.agg(AggKind::Sum, "v", "s").unwrap(),
    ];
    let global = run(&c, b.aggregate(&[], aggs).unwrap(), 2);
    assert_eq!(global.rows(), vec![vec![i(0), Value::Null]]);
}

// -- golden shape 9: all-NULL column --------------------------------------

#[test]
fn golden_all_null_column() {
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "nulls").unwrap();
    let aggs = vec![
        b.agg(AggKind::Count, "v", "c").unwrap(),
        b.agg(AggKind::Sum, "v", "s").unwrap(),
        b.agg(AggKind::Avg, "v", "a").unwrap(),
        b.agg(AggKind::Min, "v", "lo").unwrap(),
        b.agg(AggKind::Max, "v", "hi").unwrap(),
    ];
    let result = run(&c, b.aggregate(&["k"], aggs).unwrap(), 2);
    assert_eq!(
        result.rows(),
        vec![vec![
            i(1),
            i(0),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null
        ]]
    );
}

// -- golden shape 10: inner equi-join -------------------------------------

#[test]
fn golden_join() {
    let c = catalog();
    let prices_schema = Schema::shared(vec![
        Field::new("name", DataType::Utf8),
        Field::new("tariff", DataType::Int64),
    ]);
    let mut b = TableBuilder::new("tariffs", prices_schema, 4);
    for (name, t) in [("apple", 1i64), ("banana", 2), ("durian", 9)] {
        b.push_row(vec![s(name), i(t)]);
    }
    b.register(&c, PartitioningScheme::new(1, 1), 0);

    let sales = LogicalPlanBuilder::scan(&c, "sales1").unwrap();
    let tariffs = LogicalPlanBuilder::scan(&c, "tariffs").unwrap();
    let joined = sales
        .join(tariffs, &[("product", "name")])
        .unwrap()
        .select(&["product", "qty", "tariff"])
        .unwrap();
    let result = run(&c, joined, 2);
    // cherry rows have no tariff; durian never sold.
    assert_eq!(
        sorted_rows(&result),
        vec![
            vec![s("apple"), Value::Null, i(1)],
            vec![s("apple"), i(2), i(1)],
            vec![s("apple"), i(7), i(1)],
            vec![s("apple"), i(10), i(1)],
            vec![s("banana"), i(5), i(2)],
            vec![s("banana"), i(20), i(2)],
        ]
    );
}

// -- acceptance: full stack, stage by stage -------------------------------

/// Drives every layer explicitly (no convenience wrapper) for a
/// scan → filter → two-phase group-by → sort query, asserting both the
/// intermediate structures and the exact row-level result.
#[test]
fn acceptance_full_stack_scan_filter_groupby_sort() {
    let c = catalog();
    let b = LogicalPlanBuilder::scan(&c, "sales").unwrap();
    let pred = Expr::gt(b.col("price").unwrap(), Expr::lit_f64(0.75));
    let b = b.filter(pred).unwrap();
    let aggs = vec![
        b.agg(AggKind::Sum, "qty", "total").unwrap(),
        b.agg(AggKind::Count, "qty", "cnt").unwrap(),
    ];
    let logical = b
        .aggregate(&["region"], aggs)
        .unwrap()
        .top_n(&[("total", true)], 10)
        .unwrap()
        .build();

    // Optimize at DOP 3 and fragment.
    let optimizer = Optimizer::new(OptimizerConfig::default().with_parallelism(3));
    let physical = optimizer.optimize(&logical).unwrap();
    let tree = StageTree::build(physical).unwrap();
    assert_eq!(tree.len(), 3, "scan stage, hash-merge stage, output stage");
    let source = tree.fragment(accordion_common::StageId(2)).unwrap();
    assert_eq!(source.kind, StageKind::Source);
    assert_eq!(source.parallelism, 3, "partial side keeps the scan DOP");
    let merge = tree.fragment(accordion_common::StageId(1)).unwrap();
    assert_eq!(merge.parallelism, 2, "final phase runs distributed");
    let output = tree.root();
    assert_eq!(output.parallelism, 1, "root merge runs at parallelism 1");

    // The merge stage splits at the local exchange into the two pipelines
    // of paper Fig 6; the output stage merges the per-task TopNs.
    let pipelines = split_pipelines(merge).unwrap();
    assert_eq!(pipelines.len(), 2);
    assert_eq!(
        pipelines[0].operator_names(),
        vec!["ExchangeSource", "LocalSink"]
    );
    assert_eq!(
        pipelines[1].operator_names(),
        vec!["LocalSource", "FinalAggregate", "TopN", "Output"]
    );
    assert_eq!(
        split_pipelines(output).unwrap()[0].operator_names(),
        vec!["ExchangeSource", "TopN", "Output"]
    );
    // The source stage is one streaming pipeline ending in the partial agg.
    let scan_pipes = split_pipelines(source).unwrap();
    assert_eq!(
        scan_pipes[0].operator_names(),
        vec!["TableScan", "Filter", "PartialAggregate", "Output"]
    );

    // Execute and check exact rows. price > 0.75 drops only the north
    // cherry row (price 0.5, NULL qty): east {10,5,NULL} → 15/2,
    // west {20,7,1} → 28/3, north {2} → 2/1. Sorted by total DESC.
    let result = execute_tree(&c, &tree, &ExecOptions::with_page_rows(2)).unwrap();
    assert_eq!(
        result.rows(),
        vec![
            vec![s("west"), i(28), i(3)],
            vec![s("east"), i(15), i(2)],
            vec![s("north"), i(2), i(1)],
        ]
    );
}

// -- parallelism invariance -----------------------------------------------

/// The elasticity-critical invariant at the whole-query level: any scan DOP
/// produces the same result set.
#[test]
fn results_invariant_under_parallelism() {
    let c = catalog();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for dop in [1, 2, 3, 5, 8] {
        let b = LogicalPlanBuilder::scan(&c, "sales").unwrap();
        let aggs = vec![
            b.agg(AggKind::Sum, "qty", "total").unwrap(),
            b.agg(AggKind::Avg, "price", "avg_price").unwrap(),
        ];
        let plan = b
            .aggregate(&["region", "product"], aggs)
            .unwrap()
            .top_n(&[("region", false), ("product", false)], 100)
            .unwrap();
        let rows = run(&c, plan, dop).rows();
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(&rows, r, "dop {dop} diverged"),
        }
    }
    assert_eq!(
        reference.unwrap().len(),
        7,
        "7 distinct (region, product) pairs"
    );
}
