//! Seeded property test: `SplitQueue` hands out every split **exactly
//! once** while a controller thread concurrently grows the claimant set,
//! retires live slots, and toggles pause boundaries.
//!
//! This is the concurrency core of intra-query elasticity: if a claim can
//! be lost (a retired task's in-flight claim vanishing) or duplicated (two
//! slots racing `pop_front`), re-parallelization silently corrupts query
//! results. The schedule here is driven by a seeded xorshift RNG so every
//! run explores a different interleaving deterministically per seed.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use accordion_common::{NodeId, SplitId};
use accordion_data::column::Column;
use accordion_data::page::DataPage;
use accordion_exec::SplitQueue;
use accordion_storage::split::{Split, SplitData};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

fn split(id: u64) -> Split {
    let page = DataPage::new(vec![Column::from_i64(vec![id as i64])]);
    let rows = page.row_count() as u64;
    let bytes = page.byte_size() as u64;
    Split {
        id: SplitId(id),
        node: NodeId(0),
        table: "race".into(),
        data: SplitData::Memory(Arc::new(vec![page])),
        rows,
        bytes,
    }
}

/// Spawns a claimant for `slot`: drains claims into the shared log until
/// the queue is exhausted or the slot is retired.
fn spawn_claimant(
    queue: &Arc<SplitQueue>,
    log: &Arc<Mutex<Vec<u64>>>,
    slot: u32,
) -> JoinHandle<()> {
    let queue = queue.clone();
    let log = log.clone();
    std::thread::spawn(move || {
        while let Some(s) = queue.claim(slot, None) {
            log.lock().unwrap().push(s.id.0);
            // A sliver of "work" so claims interleave with retunes.
            std::thread::yield_now();
        }
    })
}

/// One seeded episode: N splits, a schedule of grow/retire/pause events,
/// then drain and check the exactly-once invariant.
fn run_episode(seed: u64) {
    const SPLITS: u64 = 96;
    let mut rng = Rng::new(seed);
    let queue = Arc::new(SplitQueue::new((0..SPLITS).map(split).collect()));
    let log = Arc::new(Mutex::new(Vec::new()));
    let next_slot = AtomicU32::new(0);
    let mut live: Vec<u32> = Vec::new();
    let mut handles: Vec<JoinHandle<()>> = Vec::new();

    // Initial task set: 1-4 claimants.
    for _ in 0..=rng.below(3) {
        let slot = next_slot.fetch_add(1, Ordering::Relaxed);
        handles.push(spawn_claimant(&queue, &log, slot));
        live.push(slot);
    }

    // Controller: a random schedule of retunes racing the claimants.
    for _ in 0..24 {
        match rng.below(4) {
            // Grow: add a fresh slot (slot ids are never reused).
            0 => {
                let slot = next_slot.fetch_add(1, Ordering::Relaxed);
                handles.push(spawn_claimant(&queue, &log, slot));
                live.push(slot);
            }
            // Shrink: retire a random live slot — possibly one blocked at
            // a pause boundary or mid-claim.
            1 if live.len() > 1 => {
                let idx = rng.below(live.len() as u64) as usize;
                queue.retire(live.swap_remove(idx));
            }
            // Pause at a boundary just ahead of the current claim count,
            // hold briefly, then advance — the decision window.
            2 => {
                let threshold = queue.claimed() + rng.below(3);
                queue.set_pause_after(Some(threshold));
                std::thread::sleep(Duration::from_micros(rng.below(200)));
                queue.set_pause_after(Some(threshold + 1 + rng.below(4)));
            }
            _ => std::thread::yield_now(),
        }
    }

    // End of schedule: make sure at least one live claimant exists, then
    // detach the controller so the pool drains.
    let slot = next_slot.fetch_add(1, Ordering::Relaxed);
    handles.push(spawn_claimant(&queue, &log, slot));
    queue.release();
    for h in handles {
        h.join().unwrap();
    }

    let claimed = log.lock().unwrap().clone();
    let unique: HashSet<u64> = claimed.iter().copied().collect();
    assert_eq!(
        claimed.len() as u64,
        SPLITS,
        "seed {seed}: {} claims for {SPLITS} splits — duplication or loss",
        claimed.len()
    );
    assert_eq!(
        unique.len() as u64,
        SPLITS,
        "seed {seed}: duplicate split ids in {claimed:?}"
    );
    assert_eq!(
        queue.claimed(),
        SPLITS,
        "seed {seed}: claim counter drifted"
    );
    assert_eq!(
        queue.remaining_splits(),
        0,
        "seed {seed}: splits left behind"
    );
    assert_eq!(
        queue.remaining_rows(),
        0,
        "seed {seed}: row accounting drifted"
    );
}

#[test]
fn claims_are_exactly_once_under_racing_grow_and_shrink() {
    for seed in 1..=16u64 {
        run_episode(seed);
    }
}

#[test]
fn retiring_every_slot_then_growing_still_drains_the_pool() {
    // The pathological shrink: every live slot is retired while splits
    // remain. A subsequently grown slot must still drain the remainder —
    // nothing is lost with the old task set.
    let queue = Arc::new(SplitQueue::new((0..8).map(split).collect()));
    let log = Arc::new(Mutex::new(Vec::new()));
    // Pause at claim 0 so the first slot is parked at the decision
    // boundary before it can drain anything, then retire it there.
    queue.set_pause_after(Some(0));
    let first = spawn_claimant(&queue, &log, 0);
    queue.retire(0);
    first.join().unwrap();
    assert_eq!(queue.remaining_splits(), 8, "retired before any claim");
    queue.release();
    let second = spawn_claimant(&queue, &log, 1);
    second.join().unwrap();
    let claimed = log.lock().unwrap().clone();
    let unique: HashSet<u64> = claimed.iter().copied().collect();
    assert_eq!(claimed.len(), 8);
    assert_eq!(unique.len(), 8);
}
