//! Open-addressing hash table over encoded row keys.
//!
//! [`GroupTable`] is the raw table behind grouped aggregation and the join
//! build side: `(hash, group_id)` slots probed quadratically, growing at
//! power-of-two capacities, with the key bytes themselves append-only in an
//! internal key arena. Callers hash whole pages with
//! [`crate::hash::hash_columns`], encode each row's key into one amortized
//! scratch buffer ([`crate::rowkey::encode_key_into`]) and probe — no
//! per-row `Vec<u8>` allocation and no tree rebalancing on the hot path.
//!
//! The table does not order its groups; [`GroupTable::sorted_ids`] returns
//! group ids sorted by their encoded key bytes, which is exactly the
//! iteration order of the `BTreeMap<Vec<u8>, _>` it replaced — operators
//! that emit groups in this order keep deterministic, history-independent
//! output.

/// Append-only storage for the distinct encoded keys, one contiguous byte
/// buffer plus offsets (same layout idea as the Utf8 column).
#[derive(Debug, Default)]
struct KeyArena {
    bytes: Vec<u8>,
    /// `offsets.len() == groups + 1`; group `g` spans
    /// `bytes[offsets[g]..offsets[g+1]]`.
    offsets: Vec<u32>,
}

impl KeyArena {
    fn new() -> Self {
        KeyArena {
            bytes: Vec::new(),
            offsets: vec![0],
        }
    }

    #[inline]
    fn key(&self, group: u32) -> &[u8] {
        let g = group as usize;
        &self.bytes[self.offsets[g] as usize..self.offsets[g + 1] as usize]
    }

    #[inline]
    fn push(&mut self, key: &[u8]) -> u32 {
        let id = (self.offsets.len() - 1) as u32;
        self.bytes.extend_from_slice(key);
        self.offsets.push(self.bytes.len() as u32);
        id
    }

    fn len(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// One slot: the full 64-bit hash (cheap early-out on probe) and the group
/// id it maps to. `EMPTY` marks an unused slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    hash: u64,
    group: u32,
}

const EMPTY: u32 = u32::MAX;

/// Open-addressing raw hash table mapping encoded keys to dense group ids
/// (`0..len()`), insertion-ordered.
#[derive(Debug)]
pub struct GroupTable {
    slots: Vec<Slot>,
    arena: KeyArena,
    /// Capacity mask; `slots.len()` is always a power of two.
    mask: usize,
}

impl GroupTable {
    pub fn new() -> Self {
        GroupTable::with_capacity(16)
    }

    pub fn with_capacity(groups: usize) -> Self {
        let cap = (groups * 2).next_power_of_two().max(16);
        GroupTable {
            slots: vec![
                Slot {
                    hash: 0,
                    group: EMPTY
                };
                cap
            ],
            arena: KeyArena::new(),
            mask: cap - 1,
        }
    }

    /// Number of distinct keys inserted so far.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The encoded key bytes of a group id.
    #[inline]
    pub fn key(&self, group: u32) -> &[u8] {
        self.arena.key(group)
    }

    /// Looks `key` up, inserting a fresh group id on miss.
    #[inline]
    pub fn insert(&mut self, hash: u64, key: &[u8]) -> u32 {
        if (self.len() + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mut idx = hash as usize & self.mask;
        let mut step = 0usize;
        loop {
            let slot = self.slots[idx];
            if slot.group == EMPTY {
                let group = self.arena.push(key);
                self.slots[idx] = Slot { hash, group };
                return group;
            }
            if slot.hash == hash && self.arena.key(slot.group) == key {
                return slot.group;
            }
            // Quadratic probing: triangular steps visit every slot of a
            // power-of-two table exactly once.
            step += 1;
            idx = (idx + step) & self.mask;
        }
    }

    /// Read-only lookup (join probe side).
    #[inline]
    pub fn get(&self, hash: u64, key: &[u8]) -> Option<u32> {
        let mut idx = hash as usize & self.mask;
        let mut step = 0usize;
        loop {
            let slot = self.slots[idx];
            if slot.group == EMPTY {
                return None;
            }
            if slot.hash == hash && self.arena.key(slot.group) == key {
                return Some(slot.group);
            }
            step += 1;
            idx = (idx + step) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Slot {
                    hash: 0,
                    group: EMPTY
                };
                new_cap
            ],
        );
        self.mask = new_cap - 1;
        for slot in old {
            if slot.group == EMPTY {
                continue;
            }
            let mut idx = slot.hash as usize & self.mask;
            let mut step = 0usize;
            while self.slots[idx].group != EMPTY {
                step += 1;
                idx = (idx + step) & self.mask;
            }
            self.slots[idx] = slot;
        }
    }

    /// Group ids sorted by encoded key bytes — the deterministic emission
    /// order (identical to iterating the replaced `BTreeMap<Vec<u8>, _>`).
    pub fn sorted_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.len() as u32).collect();
        ids.sort_unstable_by(|&a, &b| self.arena.key(a).cmp(self.arena.key(b)));
        ids
    }
}

impl Default for GroupTable {
    fn default() -> Self {
        GroupTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(key: &[u8]) -> u64 {
        // Any deterministic stand-in hash works for table mechanics.
        key.iter().fold(0x9E37u64, |acc, &b| {
            (acc ^ b as u64).wrapping_mul(0x100000001b3)
        })
    }

    #[test]
    fn insert_dedups_and_ids_are_dense() {
        let mut t = GroupTable::new();
        let a = t.insert(h(b"a"), b"a");
        let b = t.insert(h(b"b"), b"b");
        let a2 = t.insert(h(b"a"), b"a");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a2, a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.key(a), b"a");
        assert_eq!(t.key(b), b"b");
    }

    #[test]
    fn get_finds_only_inserted() {
        let mut t = GroupTable::new();
        t.insert(h(b"k1"), b"k1");
        assert_eq!(t.get(h(b"k1"), b"k1"), Some(0));
        assert_eq!(t.get(h(b"k2"), b"k2"), None);
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut t = GroupTable::with_capacity(1);
        let keys: Vec<Vec<u8>> = (0..10_000i64).map(|i| i.to_le_bytes().to_vec()).collect();
        for k in &keys {
            t.insert(h(k), k);
        }
        assert_eq!(t.len(), keys.len());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(h(k), k), Some(i as u32), "key {i} lost in growth");
            assert_eq!(t.key(i as u32), k.as_slice());
        }
        // Re-inserting returns the existing ids.
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.insert(h(k), k), i as u32);
        }
    }

    #[test]
    fn colliding_hashes_stay_distinct_keys() {
        let mut t = GroupTable::new();
        // Same hash, different bytes: full-key comparison must disambiguate.
        let a = t.insert(42, b"left");
        let b = t.insert(42, b"right");
        assert_ne!(a, b);
        assert_eq!(t.get(42, b"left"), Some(a));
        assert_eq!(t.get(42, b"right"), Some(b));
        assert_eq!(t.get(42, b"missing"), None);
    }

    #[test]
    fn sorted_ids_order_by_key_bytes() {
        let mut t = GroupTable::new();
        t.insert(h(b"zz"), b"zz");
        t.insert(h(b"a"), b"a");
        t.insert(h(b"mm"), b"mm");
        let order = t.sorted_ids();
        let keys: Vec<&[u8]> = order.iter().map(|&g| t.key(g)).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"mm", b"zz"]);
    }

    #[test]
    fn empty_key_is_a_valid_group() {
        let mut t = GroupTable::new();
        let g = t.insert(7, b"");
        assert_eq!(t.insert(7, b""), g);
        assert_eq!(t.key(g), b"");
        assert_eq!(t.sorted_ids(), vec![0]);
    }
}
