//! Row hashing for hash-partitioned shuffles and hash tables.
//!
//! The hash function must be **stable across tasks and nodes** because the
//! paper's shuffle buffers repartition cached pages when the downstream DOP
//! changes (§4.2.1, §4.5): the same row must land in a deterministic
//! partition for any partition count. We therefore use a fixed
//! multiply-xor mix (an FxHash/wyhash-style construction implemented here
//! from scratch) rather than std's randomly-seeded SipHash.

use crate::column::Column;
use crate::page::DataPage;

pub(crate) const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const NULL_SENTINEL: u64 = 0xDEAD_BEEF_0BAD_F00D;

#[inline]
pub(crate) fn mix(mut h: u64, v: u64) -> u64 {
    h ^= v.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h = h.rotate_left(31);
    h.wrapping_mul(0xC4CE_B9FE_1A85_EC53)
}

#[inline]
pub(crate) fn finalize(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 33)
}

/// Hashes one scalar cell into an accumulator.
#[inline]
fn hash_cell(col: &Column, row: usize, acc: u64) -> u64 {
    if !col.is_valid(row) {
        return mix(acc, NULL_SENTINEL);
    }
    match col {
        Column::Int64(v, _) => mix(acc, v[row] as u64),
        Column::Date32(v, _) => mix(acc, v[row] as u64),
        Column::Bool(v, _) => mix(acc, v[row] as u64 + 1),
        Column::Float64(v, _) => mix(acc, v[row].to_bits()),
        Column::Utf8(v, _) => {
            let s = v.value(row).as_bytes();
            let mut h = mix(acc, s.len() as u64);
            for chunk in s.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                h = mix(h, u64::from_le_bytes(word));
            }
            h
        }
    }
}

/// Scalar reference: hashes the key cells of one row. Kept as the
/// cross-check target for the vectorized [`hash_columns`] kernels — both
/// must produce bit-identical output for every input.
pub fn hash_row(page: &DataPage, key_indices: &[usize], row: usize) -> u64 {
    let mut h = SEED;
    for &ki in key_indices {
        h = hash_cell(page.column(ki), row, h);
    }
    finalize(h)
}

/// Folds one whole column into the per-row accumulators, column at a time.
///
/// The fixed-width types run a branch-light inner loop: with no validity
/// bitmap it is a straight `mix` over the typed vector; with one, the null
/// sentinel is selected per row without branching on the data path. Utf8
/// stays per-row (variable width is not a kernel target).
fn hash_column_into(col: &Column, hashes: &mut [u64]) {
    match (col, col.validity()) {
        (Column::Int64(v, _), None) => {
            for (h, &x) in hashes.iter_mut().zip(v.iter()) {
                *h = mix(*h, x as u64);
            }
        }
        (Column::Int64(v, _), Some(valid)) => {
            for (i, (h, &x)) in hashes.iter_mut().zip(v.iter()).enumerate() {
                let word = if valid.is_valid(i) {
                    x as u64
                } else {
                    NULL_SENTINEL
                };
                *h = mix(*h, word);
            }
        }
        (Column::Date32(v, _), None) => {
            for (h, &x) in hashes.iter_mut().zip(v.iter()) {
                *h = mix(*h, x as u64);
            }
        }
        (Column::Date32(v, _), Some(valid)) => {
            for (i, (h, &x)) in hashes.iter_mut().zip(v.iter()).enumerate() {
                let word = if valid.is_valid(i) {
                    x as u64
                } else {
                    NULL_SENTINEL
                };
                *h = mix(*h, word);
            }
        }
        (Column::Bool(v, _), None) => {
            for (h, &x) in hashes.iter_mut().zip(v.iter()) {
                *h = mix(*h, x as u64 + 1);
            }
        }
        (Column::Bool(v, _), Some(valid)) => {
            for (i, (h, &x)) in hashes.iter_mut().zip(v.iter()).enumerate() {
                let word = if valid.is_valid(i) {
                    x as u64 + 1
                } else {
                    NULL_SENTINEL
                };
                *h = mix(*h, word);
            }
        }
        (Column::Float64(v, _), None) => {
            for (h, &x) in hashes.iter_mut().zip(v.iter()) {
                *h = mix(*h, x.to_bits());
            }
        }
        (Column::Float64(v, _), Some(valid)) => {
            for (i, (h, &x)) in hashes.iter_mut().zip(v.iter()).enumerate() {
                let word = if valid.is_valid(i) {
                    x.to_bits()
                } else {
                    NULL_SENTINEL
                };
                *h = mix(*h, word);
            }
        }
        (Column::Utf8(..), _) => {
            for (row, h) in hashes.iter_mut().enumerate() {
                *h = hash_cell(col, row, *h);
            }
        }
    }
}

/// Vectorized hash kernel: hashes the row tuples formed by `cols`,
/// column at a time, returning one finalized hash per row.
///
/// Bit-identical to [`hash_row`] over the same cells — the stable mix is
/// part of the engine contract (§4.2.1 repartitioning must route a row to
/// the same partition at any DOP), so the vectorized and scalar paths may
/// never diverge.
pub fn hash_columns(cols: &[&Column], row_count: usize) -> Vec<u64> {
    let mut hashes = vec![SEED; row_count];
    for col in cols {
        debug_assert_eq!(col.len(), row_count);
        hash_column_into(col, &mut hashes);
    }
    for h in hashes.iter_mut() {
        *h = finalize(*h);
    }
    hashes
}

/// Hashes the key columns (`key_indices`) of every row in `page`.
pub fn hash_rows(page: &DataPage, key_indices: &[usize]) -> Vec<u64> {
    let cols: Vec<&Column> = key_indices.iter().map(|&ki| page.column(ki)).collect();
    hash_columns(&cols, page.row_count())
}

/// Maps a hash to one of `partitions` buckets. A partition count of zero is
/// a caller bug, but it must not mis-route rows in release builds (the old
/// `debug_assert!` compiled away): it is clamped to one bucket, so every row
/// deterministically lands in partition 0.
#[inline]
pub fn partition_of(hash: u64, partitions: u32) -> u32 {
    let partitions = partitions.max(1);
    // Multiply-shift avoids the modulo and keeps high-entropy bits.
    (((hash >> 32) * partitions as u64) >> 32) as u32
}

/// Splits `page` into `partitions` pages by key hash. Returns one (possibly
/// empty) page per partition. This is the kernel inside the shuffle buffer's
/// shuffle executors (paper Fig 10b). Like [`partition_of`], a zero
/// partition count is clamped to one — rows are never silently dropped.
pub fn hash_partition(page: &DataPage, key_indices: &[usize], partitions: u32) -> Vec<DataPage> {
    let partitions = partitions.max(1);
    let hashes = hash_rows(page, key_indices);
    let mut index_lists: Vec<Vec<u32>> = vec![Vec::new(); partitions as usize];
    for (row, h) in hashes.iter().enumerate() {
        index_lists[partition_of(*h, partitions) as usize].push(row as u32);
    }
    index_lists
        .into_iter()
        .map(|idx| page.gather(&idx))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn key_page(keys: Vec<i64>) -> DataPage {
        let n = keys.len();
        DataPage::new(vec![
            Column::from_i64(keys),
            Column::from_i64((0..n as i64).collect()),
        ])
    }

    #[test]
    fn hashing_is_deterministic() {
        let p = key_page(vec![1, 2, 3, 1]);
        let h1 = hash_rows(&p, &[0]);
        let h2 = hash_rows(&p, &[0]);
        assert_eq!(h1, h2);
        assert_eq!(h1[0], h1[3], "equal keys hash equal");
        assert_ne!(h1[0], h1[1], "different keys should differ (whp)");
    }

    #[test]
    fn hash_covers_multiple_key_columns() {
        let p = DataPage::new(vec![
            Column::from_i64(vec![1, 1]),
            Column::from_strings(&["x", "y"]),
        ]);
        let h = hash_rows(&p, &[0, 1]);
        assert_ne!(h[0], h[1]);
        let h_first_only = hash_rows(&p, &[0]);
        assert_eq!(h_first_only[0], h_first_only[1]);
    }

    #[test]
    fn partition_of_in_range() {
        for parts in [1u32, 2, 3, 7, 64] {
            for h in [0u64, 1, u64::MAX, 0x1234_5678_9ABC_DEF0] {
                assert!(partition_of(h, parts) < parts);
            }
        }
    }

    #[test]
    fn partition_union_preserves_rows() {
        let p = key_page((0..1000).collect());
        let parts = hash_partition(&p, &[0], 7);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(|p| p.row_count()).sum();
        assert_eq!(total, 1000);
        // Partitioning is reasonably balanced for sequential keys.
        for part in &parts {
            assert!(
                part.row_count() > 50,
                "partition too small: {}",
                part.row_count()
            );
        }
    }

    #[test]
    fn repartitioning_is_consistent() {
        // A row that lands in partition i of n must land in a deterministic
        // partition for m as well — DOP switching relies on stability.
        let p = key_page(vec![42; 10]);
        let by4 = hash_partition(&p, &[0], 4);
        let by6 = hash_partition(&p, &[0], 6);
        let n4: Vec<usize> = by4.iter().map(|p| p.row_count()).collect();
        let n6: Vec<usize> = by6.iter().map(|p| p.row_count()).collect();
        // All identical keys land in exactly one partition in both layouts.
        assert_eq!(n4.iter().filter(|&&c| c > 0).count(), 1);
        assert_eq!(n6.iter().filter(|&&c| c > 0).count(), 1);
        assert_eq!(n4.iter().sum::<usize>(), 10);
        assert_eq!(n6.iter().sum::<usize>(), 10);
    }

    #[test]
    fn zero_partitions_clamp_to_one_bucket() {
        // Previously only a debug_assert: a release build would mod-by-zero
        // semantics its way into out-of-range buckets. Now zero clamps to
        // one bucket in both profiles and never loses a row.
        for h in [0u64, 1, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            assert_eq!(partition_of(h, 0), 0);
        }
        let p = key_page((0..100).collect());
        let parts = hash_partition(&p, &[0], 0);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].row_count(), 100);
    }

    #[test]
    fn null_hashes_consistently() {
        use crate::column::ColumnBuilder;
        use crate::types::{DataType, Value};
        let mut b = ColumnBuilder::new(DataType::Int64, 2);
        b.push(Value::Null);
        b.push(Value::Null);
        let p = DataPage::new(vec![b.finish()]);
        let h = hash_rows(&p, &[0]);
        assert_eq!(h[0], h[1]);
    }

    #[test]
    fn float_hash_uses_bits() {
        let p = DataPage::new(vec![Column::from_f64(vec![1.0, 1.0, 2.0])]);
        let h = hash_rows(&p, &[0]);
        assert_eq!(h[0], h[1]);
        assert_ne!(h[0], h[2]);
    }

    #[test]
    fn hash_columns_matches_scalar_hash_row() {
        use crate::column::ColumnBuilder;
        use crate::types::{DataType, Value};
        let mut ints = ColumnBuilder::new(DataType::Int64, 5);
        for v in [
            Value::Int64(3),
            Value::Null,
            Value::Int64(-9),
            Value::Int64(i64::MAX),
            Value::Int64(0),
        ] {
            ints.push(v);
        }
        let mut floats = ColumnBuilder::new(DataType::Float64, 5);
        for v in [
            Value::Float64(0.5),
            Value::Float64(-0.0),
            Value::Null,
            Value::Float64(f64::INFINITY),
            Value::Float64(1e300),
        ] {
            floats.push(v);
        }
        let p = DataPage::new(vec![
            ints.finish(),
            floats.finish(),
            Column::from_bool(vec![true, false, true, false, true]),
            Column::from_date32(vec![0, -1, 10000, 5, 5]),
            Column::from_strings(&["", "a", "abcdefgh", "abcdefghi", "ü"]),
        ]);
        let keys = [0usize, 1, 2, 3, 4];
        let vectorized = hash_rows(&p, &keys);
        for (row, &h) in vectorized.iter().enumerate() {
            assert_eq!(h, hash_row(&p, &keys, row), "row {row}");
        }
    }

    #[test]
    fn empty_key_hash_is_uniform() {
        let p = key_page(vec![1, 2, 3]);
        let h = hash_rows(&p, &[]);
        assert_eq!(h[0], h[1]);
        assert_eq!(h[1], h[2]);
        assert_eq!(h[0], hash_row(&p, &[], 0));
    }
}
