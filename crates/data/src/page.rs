//! Pages — the unit of data flow.
//!
//! In the paper's execution model (§2), table-scan data chunks are divided
//! into pages which travel between physical operators, between drivers
//! (through the local exchange structure) and between tasks (through task
//! output buffers and exchange operators). Accordion additionally uses
//! special **end pages** to close drivers and tasks gracefully at runtime
//! (§4.3, Fig 13) — that is what makes mid-query DOP reduction safe.
//!
//! [`Page`] is therefore an enum: a data batch, or an end marker. Data pages
//! are `Arc`-shared so broadcast replication and the intermediate-data cache
//! (Fig 17) never deep-copy.

use std::fmt;
use std::sync::Arc;

use crate::column::{Column, ColumnBuilder};
use crate::schema::SchemaRef;
use crate::types::Value;

/// A batch of rows in columnar layout. All columns have the same length.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPage {
    columns: Vec<Column>,
    row_count: usize,
    byte_size: usize,
}

impl DataPage {
    pub fn new(columns: Vec<Column>) -> Self {
        let row_count = columns.first().map_or(0, |c| c.len());
        for c in &columns {
            assert_eq!(c.len(), row_count, "ragged page: column length mismatch");
        }
        let byte_size = columns.iter().map(|c| c.byte_size()).sum();
        DataPage {
            columns,
            row_count,
            byte_size,
        }
    }

    /// A page with no columns but a positive row count — used by
    /// `SELECT count(*)`-style plans where only cardinality matters.
    pub fn row_count_only(row_count: usize) -> Self {
        DataPage {
            columns: vec![],
            row_count,
            byte_size: 0,
        }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn row_count(&self) -> usize {
        self.row_count
    }

    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Approximate in-memory size; drives byte-based buffer accounting.
    pub fn byte_size(&self) -> usize {
        self.byte_size
    }

    /// Materializes row `i` as owned scalars (testing / result display path).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// All rows as owned scalars — convenient for assertions in tests.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.row_count).map(|i| self.row(i)).collect()
    }

    /// Gathers `indices` from every column into a new page.
    pub fn gather(&self, indices: &[u32]) -> DataPage {
        if self.columns.is_empty() {
            return DataPage::row_count_only(indices.len());
        }
        DataPage::new(self.columns.iter().map(|c| c.gather(indices)).collect())
    }

    /// Contiguous row range as a new page.
    pub fn slice(&self, offset: usize, len: usize) -> DataPage {
        assert!(offset + len <= self.row_count, "slice out of bounds");
        if self.columns.is_empty() {
            return DataPage::row_count_only(len);
        }
        DataPage::new(self.columns.iter().map(|c| c.slice(offset, len)).collect())
    }

    /// Keeps only columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> DataPage {
        let cols: Vec<Column> = indices.iter().map(|&i| self.columns[i].clone()).collect();
        if cols.is_empty() {
            DataPage::row_count_only(self.row_count)
        } else {
            DataPage::new(cols)
        }
    }

    /// Vertically concatenates pages with identical layouts.
    pub fn concat(pages: &[&DataPage]) -> DataPage {
        assert!(!pages.is_empty());
        let ncols = pages[0].num_columns();
        if ncols == 0 {
            return DataPage::row_count_only(pages.iter().map(|p| p.row_count()).sum());
        }
        let mut cols = Vec::with_capacity(ncols);
        for ci in 0..ncols {
            let parts: Vec<&Column> = pages.iter().map(|p| p.column(ci)).collect();
            cols.push(Column::concat(&parts));
        }
        DataPage::new(cols)
    }
}

/// Why an end page was emitted — provenance helps debugging the relay
/// protocol and is asserted on in tests. Mirrors the paper's list of end
/// page producers (§4.3 "End page").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndReason {
    /// Table scan exhausted its splits.
    ScanExhausted,
    /// An upstream task output buffer finished or was asked to close a
    /// downstream consumer.
    UpstreamFinished,
    /// The engine asked this driver to shut down (DOP decrease).
    EndSignal,
    /// Local exchange structure drained after all sinks finished.
    LocalExchangeDrained,
}

/// Marker that terminates a page stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndPage {
    pub reason: EndReason,
}

/// The unit of flow between operators: either a shared data batch or an end
/// marker ("no more pages", Fig 5).
#[derive(Debug, Clone, PartialEq)]
pub enum Page {
    Data(Arc<DataPage>),
    End(EndPage),
}

impl Page {
    pub fn data(page: DataPage) -> Page {
        Page::Data(Arc::new(page))
    }

    pub fn end(reason: EndReason) -> Page {
        Page::End(EndPage { reason })
    }

    pub fn is_end(&self) -> bool {
        matches!(self, Page::End(_))
    }

    pub fn as_data(&self) -> Option<&Arc<DataPage>> {
        match self {
            Page::Data(d) => Some(d),
            Page::End(_) => None,
        }
    }

    pub fn row_count(&self) -> usize {
        match self {
            Page::Data(d) => d.row_count(),
            Page::End(_) => 0,
        }
    }

    pub fn byte_size(&self) -> usize {
        match self {
            Page::Data(d) => d.byte_size(),
            Page::End(_) => 0,
        }
    }

    /// Encodes this page as one contiguous wire frame (see [`crate::wire`]
    /// for the layout). This is the engine's **only** page serialization
    /// entry point — transports add an outer length prefix and ship the
    /// buffer verbatim.
    pub fn encode(&self) -> Vec<u8> {
        crate::wire::encode_page(self)
    }

    /// Decodes a frame produced by [`Page::encode`]. Truncated, corrupt or
    /// version-mismatched input returns a typed
    /// [`accordion_common::AccordionError::Wire`] — never a panic.
    pub fn decode(bytes: &[u8]) -> accordion_common::Result<Page> {
        crate::wire::decode_page(bytes, None)
    }

    /// Like [`Page::decode`], but additionally rejects data frames whose
    /// embedded schema hash differs from `expected` (computed with
    /// [`crate::wire::schema_hash`]) — the receiver-side guard that a frame
    /// actually belongs to the exchange edge it arrived on.
    pub fn decode_expecting(bytes: &[u8], expected: u64) -> accordion_common::Result<Page> {
        crate::wire::decode_page(bytes, Some(expected))
    }
}

impl fmt::Display for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Page::Data(d) => write!(f, "Page[{} rows, {} B]", d.row_count(), d.byte_size()),
            Page::End(e) => write!(f, "EndPage[{:?}]", e.reason),
        }
    }
}

/// Row-at-a-time page builder bound to a schema. Flushes into a [`DataPage`]
/// when `target_rows` is reached.
#[derive(Debug)]
pub struct PageBuilder {
    schema: SchemaRef,
    builders: Vec<ColumnBuilder>,
    target_rows: usize,
}

impl PageBuilder {
    pub fn new(schema: SchemaRef, target_rows: usize) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type, target_rows))
            .collect();
        PageBuilder {
            schema,
            builders,
            target_rows,
        }
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Appends one row; panics when arity mismatches the schema.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.builders.len(), "row arity mismatch");
        for (b, v) in self.builders.iter_mut().zip(row) {
            b.push(v);
        }
    }

    pub fn row_count(&self) -> usize {
        self.builders.first().map_or(0, |b| b.len())
    }

    pub fn is_full(&self) -> bool {
        self.row_count() >= self.target_rows
    }

    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// Takes the accumulated rows as a page, resetting the builder.
    pub fn finish(&mut self) -> DataPage {
        let builders = std::mem::replace(
            &mut self.builders,
            self.schema
                .fields()
                .iter()
                .map(|f| ColumnBuilder::new(f.data_type, self.target_rows))
                .collect(),
        );
        DataPage::new(builders.into_iter().map(|b| b.finish()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn sample_page() -> DataPage {
        DataPage::new(vec![
            Column::from_i64(vec![1, 2, 3]),
            Column::from_strings(&["a", "b", "c"]),
        ])
    }

    #[test]
    fn page_accessors() {
        let p = sample_page();
        assert_eq!(p.row_count(), 3);
        assert_eq!(p.num_columns(), 2);
        assert!(!p.is_empty());
        assert_eq!(
            p.row(1),
            vec![Value::Int64(2), Value::Utf8("b".to_string())]
        );
        assert!(p.byte_size() > 0);
    }

    #[test]
    #[should_panic(expected = "ragged page")]
    fn ragged_page_panics() {
        DataPage::new(vec![
            Column::from_i64(vec![1]),
            Column::from_i64(vec![1, 2]),
        ]);
    }

    #[test]
    fn gather_slice_project_concat() {
        let p = sample_page();
        let g = p.gather(&[2, 0]);
        assert_eq!(g.row(0), vec![Value::Int64(3), Value::Utf8("c".into())]);
        let s = p.slice(1, 2);
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.row(0)[0], Value::Int64(2));
        let pr = p.project(&[1]);
        assert_eq!(pr.num_columns(), 1);
        assert_eq!(pr.row(2), vec![Value::Utf8("c".into())]);
        let c = DataPage::concat(&[&p, &s]);
        assert_eq!(c.row_count(), 5);
        assert_eq!(c.row(4)[0], Value::Int64(3));
    }

    #[test]
    fn row_count_only_pages() {
        let p = DataPage::row_count_only(42);
        assert_eq!(p.row_count(), 42);
        assert_eq!(p.num_columns(), 0);
        assert_eq!(p.byte_size(), 0);
        let s = p.slice(0, 10);
        assert_eq!(s.row_count(), 10);
        let g = p.gather(&[0, 1, 2]);
        assert_eq!(g.row_count(), 3);
    }

    #[test]
    fn end_pages() {
        let e = Page::end(EndReason::EndSignal);
        assert!(e.is_end());
        assert_eq!(e.row_count(), 0);
        assert_eq!(e.byte_size(), 0);
        assert!(e.as_data().is_none());
        let d = Page::data(sample_page());
        assert!(!d.is_end());
        assert_eq!(d.row_count(), 3);
    }

    #[test]
    fn page_builder_flushes() {
        let schema = Schema::shared(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = PageBuilder::new(schema, 2);
        assert!(b.is_empty());
        b.push_row(vec![Value::Int64(1), Value::Float64(0.5)]);
        assert!(!b.is_full());
        b.push_row(vec![Value::Int64(2), Value::Null]);
        assert!(b.is_full());
        let page = b.finish();
        assert_eq!(page.row_count(), 2);
        assert_eq!(page.column(1).null_count(), 1);
        assert!(b.is_empty(), "builder resets after finish");
    }

    #[test]
    fn shared_pages_clone_cheaply() {
        let p = Page::data(sample_page());
        let q = p.clone();
        if let (Page::Data(a), Page::Data(b)) = (&p, &q) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected data pages");
        }
    }
}
