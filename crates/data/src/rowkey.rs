//! Compact byte encodings of key columns.
//!
//! Group-by and join hash tables key on tuples of column values. Encoding
//! the key columns of a row into a single `Vec<u8>` gives hash tables a
//! cheap, hashable, equality-comparable key without boxing per-cell values.
//! The encoding is injective (length-prefixed strings, tagged nulls), so
//! byte equality ⇔ key-tuple equality.

use crate::column::{Column, Utf8Column};
use crate::page::DataPage;
use crate::types::DataType;

const TAG_NULL: u8 = 0;
const TAG_VALUE: u8 = 1;

/// Encodes the key cells of `row` (columns `key_indices`) into `out`.
pub fn encode_key_into(page: &DataPage, key_indices: &[usize], row: usize, out: &mut Vec<u8>) {
    for &ki in key_indices {
        let col = page.column(ki);
        if !col.is_valid(row) {
            out.push(TAG_NULL);
            continue;
        }
        out.push(TAG_VALUE);
        match col {
            Column::Int64(v, _) => out.extend_from_slice(&v[row].to_le_bytes()),
            Column::Float64(v, _) => out.extend_from_slice(&v[row].to_bits().to_le_bytes()),
            Column::Bool(v, _) => out.push(v[row] as u8),
            Column::Date32(v, _) => out.extend_from_slice(&v[row].to_le_bytes()),
            Column::Utf8(v, _) => {
                let s = v.value(row).as_bytes();
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s);
            }
        }
    }
}

/// Encodes the key cells of `row` as an owned byte vector.
pub fn encode_key(page: &DataPage, key_indices: &[usize], row: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(key_indices.len() * 9);
    encode_key_into(page, key_indices, row, &mut out);
    out
}

/// Encodes every row's key; returns one byte key per row. Reuses a scratch
/// buffer to keep allocation per row to exactly one `Vec`.
pub fn encode_keys(page: &DataPage, key_indices: &[usize]) -> Vec<Vec<u8>> {
    (0..page.row_count())
        .map(|row| encode_key(page, key_indices, row))
        .collect()
}

/// Mutable typed decode buffers, one per key column.
enum KeyDecoder {
    Int64(Vec<i64>, Vec<bool>),
    Float64(Vec<f64>, Vec<bool>),
    Bool(Vec<bool>, Vec<bool>),
    Date32(Vec<i32>, Vec<bool>),
    Utf8(Utf8Column, Vec<bool>),
}

impl KeyDecoder {
    fn new(dt: DataType, capacity: usize) -> Self {
        match dt {
            DataType::Int64 => KeyDecoder::Int64(Vec::with_capacity(capacity), Vec::new()),
            DataType::Float64 => KeyDecoder::Float64(Vec::with_capacity(capacity), Vec::new()),
            DataType::Bool => KeyDecoder::Bool(Vec::with_capacity(capacity), Vec::new()),
            DataType::Date32 => KeyDecoder::Date32(Vec::with_capacity(capacity), Vec::new()),
            DataType::Utf8 => KeyDecoder::Utf8(Utf8Column::default(), Vec::new()),
        }
    }

    /// Consumes one cell starting at `key[at]`; returns the next cursor.
    fn decode_cell(&mut self, key: &[u8], at: usize) -> usize {
        let tag = key[at];
        let at = at + 1;
        if tag == TAG_NULL {
            match self {
                KeyDecoder::Int64(d, n) => {
                    d.push(0);
                    n.push(true);
                }
                KeyDecoder::Float64(d, n) => {
                    d.push(0.0);
                    n.push(true);
                }
                KeyDecoder::Bool(d, n) => {
                    d.push(false);
                    n.push(true);
                }
                KeyDecoder::Date32(d, n) => {
                    d.push(0);
                    n.push(true);
                }
                KeyDecoder::Utf8(d, n) => {
                    d.push("");
                    n.push(true);
                }
            }
            return at;
        }
        debug_assert_eq!(tag, TAG_VALUE, "corrupt key encoding: bad tag");
        match self {
            KeyDecoder::Int64(d, n) => {
                d.push(i64::from_le_bytes(key[at..at + 8].try_into().unwrap()));
                n.push(false);
                at + 8
            }
            KeyDecoder::Float64(d, n) => {
                let bits = u64::from_le_bytes(key[at..at + 8].try_into().unwrap());
                d.push(f64::from_bits(bits));
                n.push(false);
                at + 8
            }
            KeyDecoder::Bool(d, n) => {
                d.push(key[at] != 0);
                n.push(false);
                at + 1
            }
            KeyDecoder::Date32(d, n) => {
                d.push(i32::from_le_bytes(key[at..at + 4].try_into().unwrap()));
                n.push(false);
                at + 4
            }
            KeyDecoder::Utf8(d, n) => {
                let len = u32::from_le_bytes(key[at..at + 4].try_into().unwrap()) as usize;
                let at = at + 4;
                d.push(std::str::from_utf8(&key[at..at + len]).expect("corrupt utf8 in key"));
                n.push(false);
                at + len
            }
        }
    }

    fn finish(self) -> Column {
        match self {
            KeyDecoder::Int64(d, n) => Column::from_i64_nullable(d, &n),
            KeyDecoder::Float64(d, n) => Column::from_f64_nullable(d, &n),
            KeyDecoder::Bool(d, n) => Column::from_bool_nullable(d, &n),
            KeyDecoder::Date32(d, n) => Column::from_date32_nullable(d, &n),
            KeyDecoder::Utf8(d, n) => Column::from_utf8_nullable(d, &n),
        }
    }
}

/// Decodes a sequence of encoded keys back into one typed column per key
/// field — the inverse of [`encode_key_into`] for a known type layout.
/// Aggregation emits its group-key output columns through this, straight
/// from the hash table's key arena, with no per-cell `Value` boxing.
pub fn decode_keys_to_columns<'a>(
    keys: impl Iterator<Item = &'a [u8]>,
    types: &[DataType],
    count: usize,
) -> Vec<Column> {
    let mut decoders: Vec<KeyDecoder> =
        types.iter().map(|&dt| KeyDecoder::new(dt, count)).collect();
    for key in keys {
        let mut at = 0;
        for d in decoders.iter_mut() {
            at = d.decode_cell(key, at);
        }
        debug_assert_eq!(at, key.len(), "key not fully consumed");
    }
    decoders.into_iter().map(KeyDecoder::finish).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnBuilder};
    use crate::types::{DataType, Value};

    #[test]
    fn equal_keys_encode_equal() {
        let p = DataPage::new(vec![
            Column::from_i64(vec![7, 7, 8]),
            Column::from_strings(&["x", "x", "x"]),
        ]);
        let keys = encode_keys(&p, &[0, 1]);
        assert_eq!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
    }

    #[test]
    fn encoding_is_injective_across_string_boundaries() {
        // ("ab","c") must differ from ("a","bc") — length prefixes ensure it.
        let p1 = DataPage::new(vec![
            Column::from_strings(&["ab"]),
            Column::from_strings(&["c"]),
        ]);
        let p2 = DataPage::new(vec![
            Column::from_strings(&["a"]),
            Column::from_strings(&["bc"]),
        ]);
        assert_ne!(encode_key(&p1, &[0, 1], 0), encode_key(&p2, &[0, 1], 0));
    }

    #[test]
    fn null_distinct_from_zero() {
        let mut b = ColumnBuilder::new(DataType::Int64, 2);
        b.push(Value::Null);
        b.push(Value::Int64(0));
        let p = DataPage::new(vec![b.finish()]);
        let keys = encode_keys(&p, &[0]);
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn decode_round_trips_all_types_with_nulls() {
        use crate::types::Value;
        let mut ints = ColumnBuilder::new(DataType::Int64, 3);
        ints.push(Value::Int64(-5));
        ints.push(Value::Null);
        ints.push(Value::Int64(i64::MAX));
        let mut strs = ColumnBuilder::new(DataType::Utf8, 3);
        strs.push(Value::Utf8("ab".into()));
        strs.push(Value::Utf8("".into()));
        strs.push(Value::Null);
        let p = DataPage::new(vec![
            ints.finish(),
            Column::from_f64(vec![0.5, -0.0, f64::INFINITY]),
            Column::from_bool(vec![true, false, true]),
            Column::from_date32(vec![0, -400, 12345]),
            strs.finish(),
        ]);
        let kis = [0usize, 1, 2, 3, 4];
        let types = [
            DataType::Int64,
            DataType::Float64,
            DataType::Bool,
            DataType::Date32,
            DataType::Utf8,
        ];
        let keys = encode_keys(&p, &kis);
        let cols = decode_keys_to_columns(keys.iter().map(|k| k.as_slice()), &types, keys.len());
        assert_eq!(cols.len(), types.len());
        for (ci, col) in cols.iter().enumerate() {
            assert_eq!(col.data_type(), types[ci]);
            for row in 0..p.row_count() {
                assert_eq!(
                    col.value(row),
                    p.column(ci).value(row),
                    "col {ci} row {row}"
                );
            }
        }
    }

    #[test]
    fn mixed_type_keys() {
        let p = DataPage::new(vec![
            Column::from_date32(vec![10, 10]),
            Column::from_bool(vec![true, false]),
            Column::from_f64(vec![0.5, 0.5]),
        ]);
        let keys = encode_keys(&p, &[0, 1, 2]);
        assert_ne!(keys[0], keys[1]);
        let only_date = encode_keys(&p, &[0]);
        assert_eq!(only_date[0], only_date[1]);
    }
}
