//! Compact byte encodings of key columns.
//!
//! Group-by and join hash tables key on tuples of column values. Encoding
//! the key columns of a row into a single `Vec<u8>` gives hash tables a
//! cheap, hashable, equality-comparable key without boxing per-cell values.
//! The encoding is injective (length-prefixed strings, tagged nulls), so
//! byte equality ⇔ key-tuple equality.

use crate::column::Column;
use crate::page::DataPage;

const TAG_NULL: u8 = 0;
const TAG_VALUE: u8 = 1;

/// Encodes the key cells of `row` (columns `key_indices`) into `out`.
pub fn encode_key_into(page: &DataPage, key_indices: &[usize], row: usize, out: &mut Vec<u8>) {
    for &ki in key_indices {
        let col = page.column(ki);
        if !col.is_valid(row) {
            out.push(TAG_NULL);
            continue;
        }
        out.push(TAG_VALUE);
        match col {
            Column::Int64(v, _) => out.extend_from_slice(&v[row].to_le_bytes()),
            Column::Float64(v, _) => out.extend_from_slice(&v[row].to_bits().to_le_bytes()),
            Column::Bool(v, _) => out.push(v[row] as u8),
            Column::Date32(v, _) => out.extend_from_slice(&v[row].to_le_bytes()),
            Column::Utf8(v, _) => {
                let s = v.value(row).as_bytes();
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s);
            }
        }
    }
}

/// Encodes the key cells of `row` as an owned byte vector.
pub fn encode_key(page: &DataPage, key_indices: &[usize], row: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(key_indices.len() * 9);
    encode_key_into(page, key_indices, row, &mut out);
    out
}

/// Encodes every row's key; returns one byte key per row. Reuses a scratch
/// buffer to keep allocation per row to exactly one `Vec`.
pub fn encode_keys(page: &DataPage, key_indices: &[usize]) -> Vec<Vec<u8>> {
    (0..page.row_count())
        .map(|row| encode_key(page, key_indices, row))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnBuilder};
    use crate::types::{DataType, Value};

    #[test]
    fn equal_keys_encode_equal() {
        let p = DataPage::new(vec![
            Column::from_i64(vec![7, 7, 8]),
            Column::from_strings(&["x", "x", "x"]),
        ]);
        let keys = encode_keys(&p, &[0, 1]);
        assert_eq!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
    }

    #[test]
    fn encoding_is_injective_across_string_boundaries() {
        // ("ab","c") must differ from ("a","bc") — length prefixes ensure it.
        let p1 = DataPage::new(vec![
            Column::from_strings(&["ab"]),
            Column::from_strings(&["c"]),
        ]);
        let p2 = DataPage::new(vec![
            Column::from_strings(&["a"]),
            Column::from_strings(&["bc"]),
        ]);
        assert_ne!(encode_key(&p1, &[0, 1], 0), encode_key(&p2, &[0, 1], 0));
    }

    #[test]
    fn null_distinct_from_zero() {
        let mut b = ColumnBuilder::new(DataType::Int64, 2);
        b.push(Value::Null);
        b.push(Value::Int64(0));
        let p = DataPage::new(vec![b.finish()]);
        let keys = encode_keys(&p, &[0]);
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn mixed_type_keys() {
        let p = DataPage::new(vec![
            Column::from_date32(vec![10, 10]),
            Column::from_bool(vec![true, false]),
            Column::from_f64(vec![0.5, 0.5]),
        ]);
        let keys = encode_keys(&p, &[0, 1, 2]);
        assert_ne!(keys[0], keys[1]);
        let only_date = encode_keys(&p, &[0]);
        assert_eq!(only_date[0], only_date[1]);
    }
}
