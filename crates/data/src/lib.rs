//! Columnar data plane for the Accordion IQRE engine.
//!
//! The paper's Accordion uses Apache Arrow as its data-exchange format; this
//! crate is the from-scratch substitute (see DESIGN.md §2). It provides:
//!
//! * [`types`] — the type system ([`types::DataType`], scalar
//!   [`types::Value`]s).
//! * [`mod@column`] — typed column vectors with optional validity bitmaps.
//! * [`schema`] — named, typed schemas.
//! * [`page`] — the unit of data flow between operators, drivers and tasks:
//!   a batch of rows in columnar layout plus the *marker* pages used by the
//!   end-page shutdown protocol (paper Fig 13).
//! * [`hash`] — row hashing for hash-partitioned shuffles and hash tables.
//! * [`sort`] — multi-column comparators, sorting and Top-N selection.
//! * [`rowkey`] — compact byte encodings of key columns for group-by and
//!   join hash tables.
//! * [`grouptable`] — the open-addressing raw table over encoded keys that
//!   grouped aggregation and join builds share.
//! * [`wire`] — the versioned binary page codec behind [`page::Page::encode`]
//!   / [`page::Page::decode`]: one buffer per page on the network, with a
//!   schema hash and checksum guarding every frame.

pub mod column;
pub mod grouptable;
pub mod hash;
pub mod page;
pub mod rowkey;
pub mod schema;
pub mod sort;
pub mod types;
pub mod wire;

pub use column::{Column, ColumnBuilder};
pub use page::{DataPage, Page, PageBuilder};
pub use schema::{Field, Schema, SchemaRef};
pub use types::{DataType, Value};
