//! Multi-column sorting and Top-N selection.
//!
//! Used by the ORDER BY / TopN operators (e.g. TPC-H Q3's
//! `ORDER BY revenue DESC, o_orderdate LIMIT 10`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::page::DataPage;
use crate::types::Value;

/// One ORDER BY term: a column index plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub column: usize,
    pub descending: bool,
}

impl SortKey {
    pub fn asc(column: usize) -> Self {
        SortKey {
            column,
            descending: false,
        }
    }

    pub fn desc(column: usize) -> Self {
        SortKey {
            column,
            descending: true,
        }
    }
}

/// Compares row `a` of `pa` with row `b` of `pb` under `keys`.
pub fn compare_rows(
    pa: &DataPage,
    a: usize,
    pb: &DataPage,
    b: usize,
    keys: &[SortKey],
) -> Ordering {
    for k in keys {
        let va = pa.column(k.column).value(a);
        let vb = pb.column(k.column).value(b);
        let ord = va.total_cmp(&vb);
        let ord = if k.descending { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Fully sorts a page by `keys`, returning a new page.
pub fn sort_page(page: &DataPage, keys: &[SortKey]) -> DataPage {
    let mut indices: Vec<u32> = (0..page.row_count() as u32).collect();
    indices.sort_by(|&a, &b| compare_rows(page, a as usize, page, b as usize, keys));
    page.gather(&indices)
}

/// Streaming Top-N accumulator: feeds pages in, keeps the N smallest rows
/// under `keys` (i.e. the first N of the total order — for DESC keys this is
/// the "largest" in user terms).
#[derive(Debug)]
pub struct TopNAccumulator {
    keys: Vec<SortKey>,
    n: usize,
    /// Max-heap of (row values snapshot). The heap root is the *worst* of
    /// the current top-N, evicted when a better row arrives.
    heap: BinaryHeap<HeapRow>,
}

#[derive(Debug)]
struct HeapRow {
    sort_values: Vec<Value>,
    full_row: Vec<Value>,
    descending: Vec<bool>,
}

impl HeapRow {
    fn cmp_keys(&self, other: &Self) -> Ordering {
        for ((a, b), desc) in self
            .sort_values
            .iter()
            .zip(&other.sort_values)
            .zip(&self.descending)
        {
            let ord = a.total_cmp(b);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

impl PartialEq for HeapRow {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_keys(other) == Ordering::Equal
    }
}
impl Eq for HeapRow {}
impl PartialOrd for HeapRow {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapRow {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_keys(other)
    }
}

impl TopNAccumulator {
    pub fn new(keys: Vec<SortKey>, n: usize) -> Self {
        TopNAccumulator {
            keys,
            n,
            heap: BinaryHeap::new(),
        }
    }

    /// Number of rows currently retained (≤ n).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Feeds a page of candidate rows.
    pub fn push_page(&mut self, page: &DataPage) {
        if self.n == 0 {
            return;
        }
        let descending: Vec<bool> = self.keys.iter().map(|k| k.descending).collect();
        for row in 0..page.row_count() {
            let sort_values: Vec<Value> = self
                .keys
                .iter()
                .map(|k| page.column(k.column).value(row))
                .collect();
            let candidate = HeapRow {
                sort_values,
                full_row: page.row(row),
                descending: descending.clone(),
            };
            if self.heap.len() < self.n {
                self.heap.push(candidate);
            } else if let Some(worst) = self.heap.peek() {
                if candidate.cmp_keys(worst) == Ordering::Less {
                    self.heap.pop();
                    self.heap.push(candidate);
                }
            }
        }
    }

    /// Extracts the retained rows in sorted order.
    pub fn finish_rows(self) -> Vec<Vec<Value>> {
        let mut rows: Vec<HeapRow> = self.heap.into_vec();
        rows.sort_by(|a, b| a.cmp_keys(b));
        rows.into_iter().map(|r| r.full_row).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn page(keys: Vec<i64>, payload: Vec<i64>) -> DataPage {
        DataPage::new(vec![Column::from_i64(keys), Column::from_i64(payload)])
    }

    #[test]
    fn sort_asc_desc() {
        let p = page(vec![3, 1, 2], vec![30, 10, 20]);
        let asc = sort_page(&p, &[SortKey::asc(0)]);
        assert_eq!(asc.column(1).as_i64().unwrap(), &[10, 20, 30]);
        let desc = sort_page(&p, &[SortKey::desc(0)]);
        assert_eq!(desc.column(1).as_i64().unwrap(), &[30, 20, 10]);
    }

    #[test]
    fn sort_multi_key_with_ties() {
        let p = DataPage::new(vec![
            Column::from_i64(vec![1, 1, 0]),
            Column::from_strings(&["b", "a", "z"]),
        ]);
        let sorted = sort_page(&p, &[SortKey::asc(0), SortKey::asc(1)]);
        assert_eq!(
            sorted.column(1).value(0),
            Value::Utf8("z".into()),
            "key 0 dominates"
        );
        assert_eq!(sorted.column(1).value(1), Value::Utf8("a".into()));
        assert_eq!(sorted.column(1).value(2), Value::Utf8("b".into()));
    }

    #[test]
    fn topn_matches_full_sort() {
        let keys = vec![SortKey::desc(0)];
        let p1 = page(vec![5, 1, 9], vec![50, 10, 90]);
        let p2 = page(vec![7, 3, 8], vec![70, 30, 80]);
        let mut acc = TopNAccumulator::new(keys.clone(), 3);
        acc.push_page(&p1);
        acc.push_page(&p2);
        let rows = acc.finish_rows();
        let got: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(got, vec![9, 8, 7]);
    }

    #[test]
    fn topn_smaller_than_n() {
        let mut acc = TopNAccumulator::new(vec![SortKey::asc(0)], 10);
        acc.push_page(&page(vec![2, 1], vec![0, 0]));
        assert_eq!(acc.len(), 2);
        let rows = acc.finish_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Int64(1));
    }

    #[test]
    fn topn_zero_keeps_nothing() {
        let mut acc = TopNAccumulator::new(vec![SortKey::asc(0)], 0);
        acc.push_page(&page(vec![1, 2, 3], vec![0, 0, 0]));
        assert!(acc.is_empty());
        assert!(acc.finish_rows().is_empty());
    }

    #[test]
    fn compare_rows_across_pages() {
        let a = page(vec![1], vec![0]);
        let b = page(vec![2], vec![0]);
        assert_eq!(
            compare_rows(&a, 0, &b, 0, &[SortKey::asc(0)]),
            Ordering::Less
        );
        assert_eq!(
            compare_rows(&a, 0, &b, 0, &[SortKey::desc(0)]),
            Ordering::Greater
        );
    }
}
