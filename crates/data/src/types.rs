//! The engine's type system.
//!
//! Deliberately small: the five types below cover the TPC-H evaluation
//! workload. Decimals are mapped to `Float64` (a documented substitution —
//! the experiments measure elasticity, not numeric precision).

use std::cmp::Ordering;
use std::fmt;

/// Physical data types of column vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (keys, counts, quantities).
    Int64,
    /// 64-bit IEEE float (prices, discounts — decimal substitute).
    Float64,
    /// Boolean.
    Bool,
    /// Days since 1970-01-01 (TPC-H dates).
    Date32,
    /// UTF-8 string.
    Utf8,
}

impl DataType {
    /// Fixed width in bytes of one value, `None` for variable-width types.
    pub fn fixed_width(&self) -> Option<usize> {
        match self {
            DataType::Int64 => Some(8),
            DataType::Float64 => Some(8),
            DataType::Bool => Some(1),
            DataType::Date32 => Some(4),
            DataType::Utf8 => None,
        }
    }

    /// True for types on which arithmetic is defined.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// True when values of this type admit a total order usable in ORDER BY.
    pub fn is_orderable(&self) -> bool {
        true
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Bool => "BOOL",
            DataType::Date32 => "DATE",
            DataType::Utf8 => "VARCHAR",
        };
        f.write_str(s)
    }
}

/// An owned scalar value (used in literals, scalar results, test fixtures).
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int64(i64),
    Float64(f64),
    Bool(bool),
    Date32(i32),
    Utf8(String),
}

impl Value {
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date32(_) => Some(DataType::Date32),
            Value::Utf8(_) => Some(DataType::Utf8),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            Value::Date32(v) => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            Value::Int64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(v) => Some(v),
            _ => None,
        }
    }

    /// Total-order comparison used by ORDER BY / Top-N. `Null` sorts first;
    /// NaN sorts last among floats. Mixed numeric types compare as f64;
    /// comparing other mismatched types is a logic error handled upstream by
    /// the analyzer, so it falls back to `Ordering::Equal`.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int64(a), Int64(b)) => a.cmp(b),
            (Date32(a), Date32(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Utf8(a), Utf8(b)) => a.cmp(b),
            (Int64(a), Float64(b)) => (*a as f64).total_cmp(b),
            (Float64(a), Int64(b)) => a.total_cmp(&(*b as f64)),
            _ => Ordering::Equal,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Null != Null for SQL semantics is handled by the evaluator; here we
        // implement *structural* equality so Values can be used in test
        // assertions and hash maps.
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Int64(a), Int64(b)) => a == b,
            (Float64(a), Float64(b)) => a.to_bits() == b.to_bits(),
            (Bool(a), Bool(b)) => a == b,
            (Date32(a), Date32(b)) => a == b,
            (Utf8(a), Utf8(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Date32(v) => write!(f, "{}", format_date32(*v)),
            Value::Utf8(v) => write!(f, "{v}"),
        }
    }
}

/// Days in each month of a non-leap year.
const MONTH_DAYS: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Converts `YYYY-MM-DD` to days since 1970-01-01.
///
/// Valid for years 1 through 9999. Out-of-range month/day components are
/// **clamped** into `1..=12` / `1..=31`: the old `debug_assert!` compiled
/// away in release builds, where a month of 0 or 13 walked the month table
/// out of bounds and produced a silently wrong day count. Callers that need
/// rejection instead of clamping validate first (see [`parse_date32`]).
pub fn date32_from_ymd(year: i64, month: i64, day: i64) -> i32 {
    let month = month.clamp(1, 12);
    let day = day.clamp(1, 31);
    let mut days: i64 = 0;
    if year >= 1970 {
        for y in 1970..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
    } else {
        for y in year..1970 {
            days -= if is_leap(y) { 366 } else { 365 };
        }
    }
    for (m, len) in MONTH_DAYS.iter().enumerate().take((month - 1) as usize) {
        days += len;
        if m == 1 && is_leap(year) {
            days += 1;
        }
    }
    (days + day - 1) as i32
}

/// Parses a `YYYY-MM-DD` literal into days since the epoch.
pub fn parse_date32(s: &str) -> Option<i32> {
    let mut it = s.splitn(3, '-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: i64 = it.next()?.parse().ok()?;
    let d: i64 = it.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(date32_from_ymd(y, m, d))
}

/// Formats days-since-epoch as `YYYY-MM-DD`.
pub fn format_date32(days: i32) -> String {
    let mut remaining = days as i64;
    let mut year = 1970i64;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if remaining >= len {
            remaining -= len;
            year += 1;
        } else if remaining < 0 {
            year -= 1;
            remaining += if is_leap(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let mut month = 0usize;
    loop {
        let mut len = MONTH_DAYS[month];
        if month == 1 && is_leap(year) {
            len += 1;
        }
        if remaining >= len {
            remaining -= len;
            month += 1;
        } else {
            break;
        }
    }
    format!("{:04}-{:02}-{:02}", year, month + 1, remaining + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_epoch() {
        assert_eq!(date32_from_ymd(1970, 1, 1), 0);
        assert_eq!(format_date32(0), "1970-01-01");
    }

    #[test]
    fn date_roundtrip_known_values() {
        // 1994-03-05 appears in the paper's example query.
        let d = parse_date32("1994-03-05").unwrap();
        assert_eq!(format_date32(d), "1994-03-05");
        // Leap day.
        let d = parse_date32("1996-02-29").unwrap();
        assert_eq!(format_date32(d), "1996-02-29");
        // Pre-epoch.
        let d = parse_date32("1969-12-31").unwrap();
        assert_eq!(d, -1);
        assert_eq!(format_date32(d), "1969-12-31");
    }

    #[test]
    fn date_ordering_matches_string_ordering() {
        let a = parse_date32("1992-01-02").unwrap();
        let b = parse_date32("1998-12-01").unwrap();
        assert!(a < b);
    }

    #[test]
    fn out_of_range_components_clamp_in_every_profile() {
        // month 0 / 13 used to index past the month table in release builds
        // (debug_assert only); now both profiles clamp identically.
        assert_eq!(date32_from_ymd(1994, 0, 5), date32_from_ymd(1994, 1, 5));
        assert_eq!(date32_from_ymd(1994, 13, 5), date32_from_ymd(1994, 12, 5));
        assert_eq!(date32_from_ymd(1994, 3, 0), date32_from_ymd(1994, 3, 1));
        assert_eq!(date32_from_ymd(1994, 3, 99), date32_from_ymd(1994, 3, 31));
        // Clamped results still format as real dates.
        assert_eq!(format_date32(date32_from_ymd(1994, 13, 5)), "1994-12-05");
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(parse_date32("1994-13-01").is_none());
        assert!(parse_date32("1994-00-01").is_none());
        assert!(parse_date32("not-a-date").is_none());
        assert!(parse_date32("1994-01").is_none());
    }

    #[test]
    fn value_total_cmp() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int64(1).total_cmp(&Value::Int64(2)), Less);
        assert_eq!(Value::Null.total_cmp(&Value::Int64(0)), Less);
        assert_eq!(
            Value::Utf8("a".into()).total_cmp(&Value::Utf8("b".into())),
            Less
        );
        assert_eq!(Value::Int64(2).total_cmp(&Value::Float64(1.5)), Greater);
        assert_eq!(
            Value::Float64(f64::NAN).total_cmp(&Value::Float64(1.0)),
            Greater,
            "NaN sorts last"
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int64(7).as_i64(), Some(7));
        assert_eq!(Value::Date32(3).as_i64(), Some(3));
        assert_eq!(Value::Int64(7).as_f64(), Some(7.0));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Utf8("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn fixed_widths() {
        assert_eq!(DataType::Int64.fixed_width(), Some(8));
        assert_eq!(DataType::Utf8.fixed_width(), None);
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
    }
}
