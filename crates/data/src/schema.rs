//! Named, typed schemas for pages and plan nodes.

use std::fmt;
use std::sync::Arc;

use crate::types::DataType;

/// One attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.data_type)
    }
}

/// Ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle: schemas are widely copied across plan fragments,
/// tasks and pages, so they are reference-counted.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    pub fn shared(fields: Vec<Field>) -> SchemaRef {
        Arc::new(Schema::new(fields))
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index of the field with the given name (case-sensitive exact match).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Projects a subset of fields into a new schema.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// Horizontal concatenation (e.g. join output = probe ++ build fields).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fd) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fd}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
            Field::new("c", DataType::Float64),
        ])
    }

    #[test]
    fn index_of_and_field() {
        let s = abc();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field(2).data_type, DataType::Float64);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn project_reorders() {
        let s = abc().project(&[2, 0]);
        assert_eq!(s.field(0).name, "c");
        assert_eq!(s.field(1).name, "a");
    }

    #[test]
    fn join_concatenates() {
        let s = abc().join(&Schema::new(vec![Field::new("d", DataType::Bool)]));
        assert_eq!(s.len(), 4);
        assert_eq!(s.field(3).name, "d");
    }

    #[test]
    fn display_format() {
        let s = Schema::new(vec![Field::new("x", DataType::Int64)]);
        assert_eq!(s.to_string(), "(x: INT64)");
        assert!(Schema::empty().is_empty());
    }
}
