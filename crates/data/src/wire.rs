//! Binary page wire codec — version 1.
//!
//! The one encoding boundary of the engine: [`Page::encode`] /
//! [`Page::decode`] (defined on [`Page`], implemented here) turn a page
//! into a single contiguous buffer and back, so a cross-process exchange
//! transfer is one buffer write instead of a deep clone. The transport adds
//! its own outer length prefix; this module defines everything inside it.
//!
//! ## Frame layout
//!
//! ```text
//! byte 0        WIRE_VERSION (currently 1)
//! byte 1        kind: 0 = data page, 1 = end page
//!
//! end page:
//! byte 2        EndReason discriminant (0..=3)
//!
//! data page:
//! bytes 2..10   schema hash   u64 LE  (column count + per-column type tags)
//! bytes 10..14  row count     u32 LE
//! bytes 14..18  column count  u32 LE
//! per column:
//!   tag           u8   (0 Int64, 1 Float64, 2 Bool, 3 Date32, 4 Utf8)
//!   has_validity  u8   (0 absent = all rows valid, 1 bitmap follows)
//!   [validity]    ceil(rows/64) × u64 LE bitmap words
//!   data          Int64/Float64: rows × 8 B LE (floats via `to_bits`, so
//!                 NaN payloads and −0.0 survive bit-exactly)
//!                 Date32: rows × 4 B LE · Bool: rows × 1 B
//!                 Utf8: (rows+1) × u32 LE offsets, then the byte arena
//! trailer       checksum u64 LE over bytes [2, len−8)
//! ```
//!
//! ## Versioning rule
//!
//! A frame opens with its version byte; decoders reject versions they do
//! not speak with a typed [`AccordionError::Wire`] — never a panic — so a
//! mixed-version fleet fails queries loudly instead of misreading buffers.
//! Any layout change bumps `WIRE_VERSION`.
//!
//! ## Size bound
//!
//! `encoded_len ≤ DataPage::byte_size() + FRAME_OVERHEAD +
//! PER_COLUMN_OVERHEAD × num_columns` — the codec adds framing, never
//! inflates data. The property suite in `tests/wire_roundtrip.rs` pins
//! this bound.

use std::sync::Arc;

use accordion_common::{AccordionError, Result};

use crate::column::{Column, Utf8Column, Validity};
use crate::hash::{finalize, mix, SEED};
use crate::page::{DataPage, EndPage, EndReason, Page};
use crate::types::DataType;

/// Current frame version; bumped on any layout change.
pub const WIRE_VERSION: u8 = 1;

/// Fixed framing bytes of a data frame: version + kind + schema hash +
/// row count + column count + checksum.
pub const FRAME_OVERHEAD: usize = 2 + 8 + 4 + 4 + 8;

/// Worst-case per-column overhead beyond [`DataPage::byte_size`]: type tag
/// and validity flag (2), bitmap word padding (≤ 8), and the Utf8 offsets
/// slot a degenerate empty column never accounted for (≤ 4).
pub const PER_COLUMN_OVERHEAD: usize = 2 + 8 + 4;

const KIND_DATA: u8 = 0;
const KIND_END: u8 = 1;

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Bool => 2,
        DataType::Date32 => 3,
        DataType::Utf8 => 4,
    }
}

fn tag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Bool,
        3 => DataType::Date32,
        4 => DataType::Utf8,
        other => return Err(err(format!("unknown column type tag {other}"))),
    })
}

fn err(msg: impl Into<String>) -> AccordionError {
    AccordionError::Wire(msg.into())
}

/// Stable hash of a column-type layout — the value carried in every data
/// frame's header. Both ends of an exchange edge derive it independently
/// from the planned schema; a mismatch means the frame belongs to a
/// different edge (or a different plan) and is rejected before any data is
/// interpreted.
pub fn schema_hash(types: &[DataType]) -> u64 {
    let mut h = mix(SEED, types.len() as u64);
    for &dt in types {
        h = mix(h, u64::from(type_tag(dt)) + 1);
    }
    finalize(h)
}

/// Checksum over the frame payload, chunked into 8-byte LE words (the tail
/// chunk zero-padded), seeded with the payload length so truncation to a
/// chunk boundary still fails.
fn checksum(payload: &[u8]) -> u64 {
    let mut h = mix(SEED, payload.len() as u64);
    for chunk in payload.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h, u64::from_le_bytes(word));
    }
    finalize(h)
}

fn end_reason_tag(reason: EndReason) -> u8 {
    match reason {
        EndReason::ScanExhausted => 0,
        EndReason::UpstreamFinished => 1,
        EndReason::EndSignal => 2,
        EndReason::LocalExchangeDrained => 3,
    }
}

fn tag_end_reason(tag: u8) -> Result<EndReason> {
    Ok(match tag {
        0 => EndReason::ScanExhausted,
        1 => EndReason::UpstreamFinished,
        2 => EndReason::EndSignal,
        3 => EndReason::LocalExchangeDrained,
        other => return Err(err(format!("unknown end reason {other}"))),
    })
}

pub(crate) fn encode_page(page: &Page) -> Vec<u8> {
    match page {
        Page::End(end) => vec![WIRE_VERSION, KIND_END, end_reason_tag(end.reason)],
        Page::Data(data) => encode_data_page(data),
    }
}

fn encode_data_page(page: &DataPage) -> Vec<u8> {
    let types: Vec<DataType> = page.columns().iter().map(|c| c.data_type()).collect();
    let mut buf = Vec::with_capacity(
        page.byte_size() + FRAME_OVERHEAD + PER_COLUMN_OVERHEAD * page.num_columns(),
    );
    buf.push(WIRE_VERSION);
    buf.push(KIND_DATA);
    buf.extend_from_slice(&schema_hash(&types).to_le_bytes());
    buf.extend_from_slice(&(page.row_count() as u32).to_le_bytes());
    buf.extend_from_slice(&(page.num_columns() as u32).to_le_bytes());
    for col in page.columns() {
        buf.push(type_tag(col.data_type()));
        match col.validity() {
            Some(v) => {
                buf.push(1);
                for word in v.words() {
                    buf.extend_from_slice(&word.to_le_bytes());
                }
            }
            None => buf.push(0),
        }
        match col {
            Column::Int64(v, _) => {
                for x in v.iter() {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            Column::Float64(v, _) => {
                for x in v.iter() {
                    buf.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            Column::Bool(v, _) => buf.extend(v.iter().map(|&b| u8::from(b))),
            Column::Date32(v, _) => {
                for x in v.iter() {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            Column::Utf8(v, _) => {
                let offsets = v.offsets();
                if offsets.is_empty() {
                    // Degenerate never-pushed column: canonical `[0]`.
                    buf.extend_from_slice(&0u32.to_le_bytes());
                } else {
                    for o in offsets {
                        buf.extend_from_slice(&o.to_le_bytes());
                    }
                }
                buf.extend_from_slice(v.data_bytes());
            }
        }
    }
    let sum = checksum(&buf[2..]);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Bounds-checked little-endian reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(err(format!(
                "truncated frame: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

pub(crate) fn decode_page(bytes: &[u8], expected_schema: Option<u64>) -> Result<Page> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    let version = c.u8()?;
    if version != WIRE_VERSION {
        return Err(err(format!(
            "unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )));
    }
    match c.u8()? {
        KIND_END => {
            let reason = tag_end_reason(c.u8()?)?;
            if c.pos != bytes.len() {
                return Err(err("trailing bytes after end frame"));
            }
            Ok(Page::End(EndPage { reason }))
        }
        KIND_DATA => decode_data_page(bytes, expected_schema),
        other => Err(err(format!("unknown frame kind {other}"))),
    }
}

fn decode_data_page(bytes: &[u8], expected_schema: Option<u64>) -> Result<Page> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(err(format!(
            "truncated frame: {} bytes is below the {FRAME_OVERHEAD}-byte minimum",
            bytes.len()
        )));
    }
    // Verify the trailer before interpreting anything inside the payload —
    // corruption surfaces as one uniform error instead of a parse artifact.
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    let actual = checksum(&bytes[2..body_end]);
    if stored != actual {
        return Err(err(format!(
            "checksum mismatch: frame carries {stored:#018x}, payload hashes to {actual:#018x}"
        )));
    }
    let mut c = Cursor {
        buf: &bytes[..body_end],
        pos: 2,
    };
    let frame_schema = c.u64()?;
    if let Some(expected) = expected_schema {
        if frame_schema != expected {
            return Err(err(format!(
                "schema hash mismatch: frame carries {frame_schema:#018x}, \
                 edge expects {expected:#018x}"
            )));
        }
    }
    let rows = c.u32()? as usize;
    let ncols = c.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(1024));
    let mut types = Vec::with_capacity(ncols.min(1024));
    for _ in 0..ncols {
        let dt = tag_type(c.u8()?)?;
        types.push(dt);
        let validity = match c.u8()? {
            0 => None,
            1 => {
                let words = c
                    .take(rows.div_ceil(64) * 8)?
                    .chunks_exact(8)
                    .map(|w| u64::from_le_bytes(w.try_into().unwrap()))
                    .collect();
                Some(Arc::new(Validity::from_words(words, rows).map_err(err)?))
            }
            other => return Err(err(format!("invalid validity flag {other}"))),
        };
        let column = match dt {
            DataType::Int64 => Column::Int64(
                Arc::new(
                    c.take(rows * 8)?
                        .chunks_exact(8)
                        .map(|w| i64::from_le_bytes(w.try_into().unwrap()))
                        .collect(),
                ),
                validity,
            ),
            DataType::Float64 => Column::Float64(
                Arc::new(
                    c.take(rows * 8)?
                        .chunks_exact(8)
                        .map(|w| f64::from_bits(u64::from_le_bytes(w.try_into().unwrap())))
                        .collect(),
                ),
                validity,
            ),
            DataType::Bool => Column::Bool(
                Arc::new(c.take(rows)?.iter().map(|&b| b != 0).collect()),
                validity,
            ),
            DataType::Date32 => Column::Date32(
                Arc::new(
                    c.take(rows * 4)?
                        .chunks_exact(4)
                        .map(|w| i32::from_le_bytes(w.try_into().unwrap()))
                        .collect(),
                ),
                validity,
            ),
            DataType::Utf8 => {
                let offsets: Vec<u32> = c
                    .take((rows + 1) * 4)?
                    .chunks_exact(4)
                    .map(|w| u32::from_le_bytes(w.try_into().unwrap()))
                    .collect();
                let arena_len = *offsets.last().unwrap() as usize;
                let data = c.take(arena_len)?.to_vec();
                Column::Utf8(
                    Arc::new(Utf8Column::from_raw(data, offsets).map_err(err)?),
                    validity,
                )
            }
        };
        columns.push(column);
    }
    if c.pos != body_end {
        return Err(err(format!(
            "trailing bytes: {} unread before the checksum",
            body_end - c.pos
        )));
    }
    if schema_hash(&types) != frame_schema {
        return Err(err("schema hash does not match the frame's own columns"));
    }
    let page = if columns.is_empty() {
        DataPage::row_count_only(rows)
    } else {
        if columns.iter().any(|col| col.len() != rows) {
            return Err(err("column length does not match frame row count"));
        }
        DataPage::new(columns)
    };
    Ok(Page::Data(Arc::new(page)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_hash_discriminates_layouts() {
        let a = schema_hash(&[DataType::Int64, DataType::Utf8]);
        let b = schema_hash(&[DataType::Utf8, DataType::Int64]);
        let c = schema_hash(&[DataType::Int64]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, schema_hash(&[DataType::Int64, DataType::Utf8]));
    }

    #[test]
    fn end_pages_are_three_bytes() {
        for reason in [
            EndReason::ScanExhausted,
            EndReason::UpstreamFinished,
            EndReason::EndSignal,
            EndReason::LocalExchangeDrained,
        ] {
            let buf = Page::end(reason).encode();
            assert_eq!(buf.len(), 3);
            assert_eq!(Page::decode(&buf).unwrap(), Page::end(reason));
        }
    }

    #[test]
    fn bad_end_reason_is_a_typed_error() {
        let err = Page::decode(&[WIRE_VERSION, KIND_END, 9]).unwrap_err();
        assert!(matches!(err, AccordionError::Wire(_)), "{err}");
    }

    #[test]
    fn version_gate() {
        let mut buf = Page::end(EndReason::EndSignal).encode();
        buf[0] = 2;
        let err = Page::decode(&buf).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
