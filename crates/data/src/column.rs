//! Typed column vectors.
//!
//! A [`Column`] stores one attribute of a page in a dense, type-specialized
//! vector plus an optional validity bitmap (absent bitmap = all valid).
//! Columns are immutable once built; operators create new columns via
//! [`ColumnBuilder`] or the vectorized `gather`/`slice` kernels.

use std::sync::Arc;

use crate::types::{DataType, Value};

/// Validity bitmap: bit `i` set ⇒ row `i` is non-null.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validity {
    bits: Vec<u64>,
    len: usize,
}

impl Validity {
    pub fn new_all_valid(len: usize) -> Self {
        Validity {
            bits: vec![u64::MAX; len.div_ceil(64)],
            len,
        }
    }

    pub fn new_all_null(len: usize) -> Self {
        Validity {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    #[inline]
    pub fn set(&mut self, i: usize, valid: bool) {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        if valid {
            self.bits[w] |= 1 << b;
        } else {
            self.bits[w] &= !(1 << b);
        }
    }

    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw bitmap words (row `i` lives at bit `i % 64` of word `i / 64`).
    /// Exposed for the wire codec only — word padding bits are
    /// representation, not data.
    pub(crate) fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Rebuilds a bitmap from raw words (wire-codec decode path).
    pub(crate) fn from_words(bits: Vec<u64>, len: usize) -> Result<Validity, String> {
        if bits.len() != len.div_ceil(64) {
            return Err(format!(
                "validity word count {} does not match {} rows",
                bits.len(),
                len
            ));
        }
        Ok(Validity { bits, len })
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        let mut valid = 0usize;
        for (w, word) in self.bits.iter().enumerate() {
            let bits_in_word = if (w + 1) * 64 <= self.len {
                64
            } else {
                self.len - w * 64
            };
            let mask = if bits_in_word == 64 {
                u64::MAX
            } else {
                (1u64 << bits_in_word) - 1
            };
            valid += (word & mask).count_ones() as usize;
        }
        self.len - valid
    }
}

/// A typed, immutable column vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Int64(Arc<Vec<i64>>, Option<Arc<Validity>>),
    Float64(Arc<Vec<f64>>, Option<Arc<Validity>>),
    Bool(Arc<Vec<bool>>, Option<Arc<Validity>>),
    Date32(Arc<Vec<i32>>, Option<Arc<Validity>>),
    Utf8(Arc<Utf8Column>, Option<Arc<Validity>>),
}

/// Variable-width UTF-8 column stored as a contiguous byte buffer plus
/// offsets (the classic Arrow layout, rebuilt from scratch here).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Utf8Column {
    data: Vec<u8>,
    /// `offsets.len() == row_count + 1`; row `i` spans
    /// `data[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
}

impl Utf8Column {
    pub fn from_strings<S: AsRef<str>>(vals: &[S]) -> Self {
        let mut c = Utf8Column {
            data: Vec::new(),
            offsets: Vec::with_capacity(vals.len() + 1),
        };
        c.offsets.push(0);
        for v in vals {
            c.data.extend_from_slice(v.as_ref().as_bytes());
            c.offsets.push(c.data.len() as u32);
        }
        c
    }

    pub fn push(&mut self, s: &str) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.data.extend_from_slice(s.as_bytes());
        self.offsets.push(self.data.len() as u32);
    }

    #[inline]
    pub fn value(&self, i: usize) -> &str {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        // SAFETY-free: data was built from &str pushes, always valid UTF-8.
        std::str::from_utf8(&self.data[start..end]).expect("utf8 column corrupted")
    }

    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn byte_size(&self) -> usize {
        self.data.len() + self.offsets.len() * 4
    }

    /// Raw byte arena (wire-codec encode path).
    pub(crate) fn data_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Raw offsets; `offsets[rows]` is the arena length. May be empty for a
    /// never-pushed column — encoders must treat that as `[0]`.
    pub(crate) fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Rebuilds a column from a raw arena + offsets, validating every
    /// invariant `value()` later relies on (wire-codec decode path: the
    /// input crossed a network and cannot be trusted).
    pub(crate) fn from_raw(data: Vec<u8>, offsets: Vec<u32>) -> Result<Utf8Column, String> {
        if offsets.first() != Some(&0) {
            return Err("utf8 offsets must start at 0".to_string());
        }
        let mut prev = 0u32;
        for &o in &offsets {
            if o < prev {
                return Err("utf8 offsets are not monotonic".to_string());
            }
            prev = o;
        }
        if prev as usize != data.len() {
            return Err(format!(
                "utf8 arena is {} bytes but final offset is {prev}",
                data.len()
            ));
        }
        for w in offsets.windows(2) {
            if std::str::from_utf8(&data[w[0] as usize..w[1] as usize]).is_err() {
                return Err("utf8 value is not valid UTF-8".to_string());
            }
        }
        Ok(Utf8Column { data, offsets })
    }
}

/// Builds a validity bitmap from a nulls mask — `None` when fully valid
/// (the all-valid fast path skips the bitmap entirely).
fn validity_from_nulls(nulls: &[bool]) -> Option<Arc<Validity>> {
    if !nulls.iter().any(|&n| n) {
        return None;
    }
    let mut v = Validity::new_all_valid(nulls.len());
    for (i, &n) in nulls.iter().enumerate() {
        if n {
            v.set(i, false);
        }
    }
    Some(Arc::new(v))
}

impl Column {
    pub fn from_i64(vals: Vec<i64>) -> Self {
        Column::Int64(Arc::new(vals), None)
    }

    pub fn from_f64(vals: Vec<f64>) -> Self {
        Column::Float64(Arc::new(vals), None)
    }

    pub fn from_bool(vals: Vec<bool>) -> Self {
        Column::Bool(Arc::new(vals), None)
    }

    pub fn from_date32(vals: Vec<i32>) -> Self {
        Column::Date32(Arc::new(vals), None)
    }

    pub fn from_strings<S: AsRef<str>>(vals: &[S]) -> Self {
        Column::Utf8(Arc::new(Utf8Column::from_strings(vals)), None)
    }

    /// Typed constructors taking a parallel nulls mask (`nulls[i]` ⇒ row `i`
    /// is NULL; its data slot is a don't-care). These let kernels build
    /// output columns straight from accumulator vectors without a
    /// per-value [`ColumnBuilder`] round trip.
    pub fn from_i64_nullable(vals: Vec<i64>, nulls: &[bool]) -> Self {
        debug_assert_eq!(vals.len(), nulls.len());
        let v = validity_from_nulls(nulls);
        Column::Int64(Arc::new(vals), v)
    }

    pub fn from_f64_nullable(vals: Vec<f64>, nulls: &[bool]) -> Self {
        debug_assert_eq!(vals.len(), nulls.len());
        let v = validity_from_nulls(nulls);
        Column::Float64(Arc::new(vals), v)
    }

    pub fn from_bool_nullable(vals: Vec<bool>, nulls: &[bool]) -> Self {
        debug_assert_eq!(vals.len(), nulls.len());
        let v = validity_from_nulls(nulls);
        Column::Bool(Arc::new(vals), v)
    }

    pub fn from_date32_nullable(vals: Vec<i32>, nulls: &[bool]) -> Self {
        debug_assert_eq!(vals.len(), nulls.len());
        let v = validity_from_nulls(nulls);
        Column::Date32(Arc::new(vals), v)
    }

    pub fn from_utf8_nullable(vals: Utf8Column, nulls: &[bool]) -> Self {
        debug_assert_eq!(vals.len(), nulls.len());
        let v = validity_from_nulls(nulls);
        Column::Utf8(Arc::new(vals), v)
    }

    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(..) => DataType::Int64,
            Column::Float64(..) => DataType::Float64,
            Column::Bool(..) => DataType::Bool,
            Column::Date32(..) => DataType::Date32,
            Column::Utf8(..) => DataType::Utf8,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v, _) => v.len(),
            Column::Float64(v, _) => v.len(),
            Column::Bool(v, _) => v.len(),
            Column::Date32(v, _) => v.len(),
            Column::Utf8(v, _) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn validity(&self) -> Option<&Validity> {
        match self {
            Column::Int64(_, v)
            | Column::Float64(_, v)
            | Column::Bool(_, v)
            | Column::Date32(_, v)
            | Column::Utf8(_, v) => v.as_deref(),
        }
    }

    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity().is_none_or(|v| v.is_valid(i))
    }

    pub fn null_count(&self) -> usize {
        self.validity().map_or(0, |v| v.null_count())
    }

    /// Approximate heap size in bytes — drives buffer capacity accounting
    /// (the paper's buffers are sized in bytes/pages).
    pub fn byte_size(&self) -> usize {
        let data = match self {
            Column::Int64(v, _) => v.len() * 8,
            Column::Float64(v, _) => v.len() * 8,
            Column::Bool(v, _) => v.len(),
            Column::Date32(v, _) => v.len() * 4,
            Column::Utf8(v, _) => v.byte_size(),
        };
        data + self.validity().map_or(0, |v| v.len() / 8)
    }

    /// Scalar accessor (boundary/testing path; hot kernels use the typed
    /// accessors below).
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self {
            Column::Int64(v, _) => Value::Int64(v[i]),
            Column::Float64(v, _) => Value::Float64(v[i]),
            Column::Bool(v, _) => Value::Bool(v[i]),
            Column::Date32(v, _) => Value::Date32(v[i]),
            Column::Utf8(v, _) => Value::Utf8(v.value(i).to_string()),
        }
    }

    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Column::Int64(v, _) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Column::Float64(v, _) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            Column::Bool(v, _) => Some(v),
            _ => None,
        }
    }

    pub fn as_date32(&self) -> Option<&[i32]> {
        match self {
            Column::Date32(v, _) => Some(v),
            _ => None,
        }
    }

    pub fn as_utf8(&self) -> Option<&Utf8Column> {
        match self {
            Column::Utf8(v, _) => Some(v),
            _ => None,
        }
    }

    /// Materializes `self[indices]` as a new column (the take/gather kernel
    /// behind filters, joins and sorts).
    pub fn gather(&self, indices: &[u32]) -> Column {
        let validity = self.validity().map(|v| {
            let mut nv = Validity::new_all_valid(indices.len());
            for (out, &src) in indices.iter().enumerate() {
                nv.set(out, v.is_valid(src as usize));
            }
            Arc::new(nv)
        });
        match self {
            Column::Int64(v, _) => Column::Int64(
                Arc::new(indices.iter().map(|&i| v[i as usize]).collect()),
                validity,
            ),
            Column::Float64(v, _) => Column::Float64(
                Arc::new(indices.iter().map(|&i| v[i as usize]).collect()),
                validity,
            ),
            Column::Bool(v, _) => Column::Bool(
                Arc::new(indices.iter().map(|&i| v[i as usize]).collect()),
                validity,
            ),
            Column::Date32(v, _) => Column::Date32(
                Arc::new(indices.iter().map(|&i| v[i as usize]).collect()),
                validity,
            ),
            Column::Utf8(v, _) => {
                let mut out = Utf8Column::default();
                out.offsets.push(0);
                for &i in indices {
                    out.push(v.value(i as usize));
                }
                Column::Utf8(Arc::new(out), validity)
            }
        }
    }

    /// Contiguous slice `self[range]` as a new column.
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        let indices: Vec<u32> = (offset..offset + len).map(|i| i as u32).collect();
        self.gather(&indices)
    }

    /// Vertically concatenates columns of identical type.
    pub fn concat(cols: &[&Column]) -> Column {
        assert!(!cols.is_empty(), "concat of zero columns");
        let total: usize = cols.iter().map(|c| c.len()).sum();
        let mut b = ColumnBuilder::new(cols[0].data_type(), total);
        for c in cols {
            for i in 0..c.len() {
                b.push(c.value(i));
            }
        }
        b.finish()
    }
}

/// Incremental column builder.
#[derive(Debug)]
pub enum ColumnBuilder {
    Int64(Vec<i64>, Vec<bool>),
    Float64(Vec<f64>, Vec<bool>),
    Bool(Vec<bool>, Vec<bool>),
    Date32(Vec<i32>, Vec<bool>),
    Utf8(Utf8Column, Vec<bool>),
}

impl ColumnBuilder {
    pub fn new(dt: DataType, capacity: usize) -> Self {
        match dt {
            DataType::Int64 => ColumnBuilder::Int64(Vec::with_capacity(capacity), Vec::new()),
            DataType::Float64 => ColumnBuilder::Float64(Vec::with_capacity(capacity), Vec::new()),
            DataType::Bool => ColumnBuilder::Bool(Vec::with_capacity(capacity), Vec::new()),
            DataType::Date32 => ColumnBuilder::Date32(Vec::with_capacity(capacity), Vec::new()),
            DataType::Utf8 => ColumnBuilder::Utf8(Utf8Column::default(), Vec::new()),
        }
    }

    /// Appends a value; `Value::Null` appends a null of the builder's type.
    /// Int64⇄Float64 coercion is performed to match analyzer semantics.
    pub fn push(&mut self, v: Value) {
        match self {
            ColumnBuilder::Int64(data, nulls) => match v {
                Value::Int64(x) => {
                    data.push(x);
                    nulls.push(false);
                }
                Value::Date32(x) => {
                    data.push(x as i64);
                    nulls.push(false);
                }
                Value::Null => {
                    data.push(0);
                    nulls.push(true);
                }
                other => panic!("type mismatch pushing {other:?} into Int64 builder"),
            },
            ColumnBuilder::Float64(data, nulls) => match v {
                Value::Float64(x) => {
                    data.push(x);
                    nulls.push(false);
                }
                Value::Int64(x) => {
                    data.push(x as f64);
                    nulls.push(false);
                }
                Value::Null => {
                    data.push(0.0);
                    nulls.push(true);
                }
                other => panic!("type mismatch pushing {other:?} into Float64 builder"),
            },
            ColumnBuilder::Bool(data, nulls) => match v {
                Value::Bool(x) => {
                    data.push(x);
                    nulls.push(false);
                }
                Value::Null => {
                    data.push(false);
                    nulls.push(true);
                }
                other => panic!("type mismatch pushing {other:?} into Bool builder"),
            },
            ColumnBuilder::Date32(data, nulls) => match v {
                Value::Date32(x) => {
                    data.push(x);
                    nulls.push(false);
                }
                Value::Int64(x) => {
                    data.push(x as i32);
                    nulls.push(false);
                }
                Value::Null => {
                    data.push(0);
                    nulls.push(true);
                }
                other => panic!("type mismatch pushing {other:?} into Date32 builder"),
            },
            ColumnBuilder::Utf8(data, nulls) => match v {
                Value::Utf8(x) => {
                    data.push(&x);
                    nulls.push(false);
                }
                Value::Null => {
                    data.push("");
                    nulls.push(true);
                }
                other => panic!("type mismatch pushing {other:?} into Utf8 builder"),
            },
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnBuilder::Int64(d, _) => d.len(),
            ColumnBuilder::Float64(d, _) => d.len(),
            ColumnBuilder::Bool(d, _) => d.len(),
            ColumnBuilder::Date32(d, _) => d.len(),
            ColumnBuilder::Utf8(d, _) => d.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn finish(self) -> Column {
        fn validity(nulls: &[bool]) -> Option<Arc<Validity>> {
            if nulls.iter().any(|&n| n) {
                let mut v = Validity::new_all_valid(nulls.len());
                for (i, &n) in nulls.iter().enumerate() {
                    if n {
                        v.set(i, false);
                    }
                }
                Some(Arc::new(v))
            } else {
                None
            }
        }
        match self {
            ColumnBuilder::Int64(d, n) => {
                let v = validity(&n);
                Column::Int64(Arc::new(d), v)
            }
            ColumnBuilder::Float64(d, n) => {
                let v = validity(&n);
                Column::Float64(Arc::new(d), v)
            }
            ColumnBuilder::Bool(d, n) => {
                let v = validity(&n);
                Column::Bool(Arc::new(d), v)
            }
            ColumnBuilder::Date32(d, n) => {
                let v = validity(&n);
                Column::Date32(Arc::new(d), v)
            }
            ColumnBuilder::Utf8(d, n) => {
                let v = validity(&n);
                Column::Utf8(Arc::new(d), v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_bitmap() {
        let mut v = Validity::new_all_valid(70);
        assert_eq!(v.null_count(), 0);
        v.set(0, false);
        v.set(65, false);
        assert!(!v.is_valid(0));
        assert!(v.is_valid(1));
        assert!(!v.is_valid(65));
        assert_eq!(v.null_count(), 2);
        let n = Validity::new_all_null(10);
        assert_eq!(n.null_count(), 10);
    }

    #[test]
    fn utf8_column_roundtrip() {
        let c = Utf8Column::from_strings(&["hello", "", "world"]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), "hello");
        assert_eq!(c.value(1), "");
        assert_eq!(c.value(2), "world");
    }

    #[test]
    fn gather_preserves_values_and_nulls() {
        let mut b = ColumnBuilder::new(DataType::Int64, 4);
        b.push(Value::Int64(10));
        b.push(Value::Null);
        b.push(Value::Int64(30));
        b.push(Value::Int64(40));
        let c = b.finish();
        assert_eq!(c.null_count(), 1);
        let g = c.gather(&[3, 1, 0]);
        assert_eq!(g.value(0), Value::Int64(40));
        assert_eq!(g.value(1), Value::Null);
        assert_eq!(g.value(2), Value::Int64(10));
        assert_eq!(g.null_count(), 1);
    }

    #[test]
    fn gather_strings() {
        let c = Column::from_strings(&["a", "bb", "ccc"]);
        let g = c.gather(&[2, 0]);
        assert_eq!(g.value(0), Value::Utf8("ccc".into()));
        assert_eq!(g.value(1), Value::Utf8("a".into()));
    }

    #[test]
    fn slice_and_concat() {
        let c = Column::from_i64(vec![1, 2, 3, 4, 5]);
        let s = c.slice(1, 3);
        assert_eq!(s.as_i64().unwrap(), &[2, 3, 4]);
        let joined = Column::concat(&[&s, &c]);
        assert_eq!(joined.len(), 8);
        assert_eq!(joined.value(3), Value::Int64(1));
    }

    #[test]
    fn byte_size_accounts_data() {
        let c = Column::from_i64(vec![0; 100]);
        assert_eq!(c.byte_size(), 800);
        let s = Column::from_strings(&["abcd"; 10]);
        assert_eq!(s.byte_size(), 40 + 11 * 4);
    }

    #[test]
    fn builder_coerces_ints_to_float() {
        let mut b = ColumnBuilder::new(DataType::Float64, 2);
        b.push(Value::Int64(2));
        b.push(Value::Float64(0.5));
        let c = b.finish();
        assert_eq!(c.as_f64().unwrap(), &[2.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn builder_rejects_wrong_type() {
        let mut b = ColumnBuilder::new(DataType::Int64, 1);
        b.push(Value::Utf8("oops".into()));
    }

    #[test]
    fn nullable_constructors_build_validity_lazily() {
        let c = Column::from_i64_nullable(vec![1, 2], &[false, false]);
        assert!(c.validity().is_none(), "all-valid column carries no bitmap");
        let c = Column::from_f64_nullable(vec![1.0, 0.0], &[false, true]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0), Value::Float64(1.0));
        assert_eq!(c.value(1), Value::Null);
        let c = Column::from_date32_nullable(vec![9, 0], &[false, true]);
        assert_eq!(c.value(0), Value::Date32(9));
        assert_eq!(c.value(1), Value::Null);
        let c = Column::from_bool_nullable(vec![true, false], &[true, false]);
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(1), Value::Bool(false));
        let c = Column::from_utf8_nullable(Utf8Column::from_strings(&["x", ""]), &[false, true]);
        assert_eq!(c.value(0), Value::Utf8("x".into()));
        assert_eq!(c.value(1), Value::Null);
    }

    #[test]
    fn typed_accessors() {
        let c = Column::from_bool(vec![true, false]);
        assert_eq!(c.as_bool().unwrap(), &[true, false]);
        assert!(c.as_i64().is_none());
        let d = Column::from_date32(vec![7]);
        assert_eq!(d.as_date32().unwrap(), &[7]);
        assert_eq!(d.data_type(), DataType::Date32);
    }
}
