//! Seeded property suite for the wire codec: random pages round-trip
//! bit-identically, malformed frames return typed errors (never panic),
//! and the encoded size stays within the documented bound.

use std::sync::Arc;

use accordion_common::AccordionError;
use accordion_data::column::{Column, Utf8Column};
use accordion_data::page::{DataPage, EndReason, Page};
use accordion_data::types::DataType;
use accordion_data::wire::{FRAME_OVERHEAD, PER_COLUMN_OVERHEAD};

/// Tiny deterministic PRNG (xorshift*) — no external deps allowed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Interesting scalar pools — extremes are drawn often so every seed hits
/// them.
const I64_POOL: &[i64] = &[0, 1, -1, i64::MAX, i64::MIN, 42, -9_999_999_999];
const F64_POOL: &[f64] = &[
    0.0,
    -0.0,
    1.5,
    -2.25,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::MIN_POSITIVE,
    f64::MAX,
];
const STR_POOL: &[&str] = &[
    "",
    "a",
    "héllo wörld",
    "日本語テキスト",
    "x\u{1F600}y",
    "\0nul",
];

fn random_nulls(rng: &mut Rng, rows: usize) -> Vec<bool> {
    match rng.below(3) {
        0 => vec![false; rows],                           // all valid
        1 => vec![true; rows],                            // all null
        _ => (0..rows).map(|_| rng.chance(30)).collect(), // mixed
    }
}

fn random_column(rng: &mut Rng, rows: usize) -> Column {
    let nulls = random_nulls(rng, rows);
    match rng.below(5) {
        0 => Column::from_i64_nullable(
            (0..rows)
                .map(|_| I64_POOL[rng.below(I64_POOL.len() as u64) as usize])
                .collect(),
            &nulls,
        ),
        1 => Column::from_f64_nullable(
            (0..rows)
                .map(|_| F64_POOL[rng.below(F64_POOL.len() as u64) as usize])
                .collect(),
            &nulls,
        ),
        2 => Column::from_bool_nullable((0..rows).map(|_| rng.chance(50)).collect(), &nulls),
        3 => Column::from_date32_nullable(
            (0..rows)
                .map(|_| [0, 1, -1, i32::MAX, i32::MIN, 19_000][rng.below(6) as usize])
                .collect(),
            &nulls,
        ),
        _ => {
            let vals: Vec<&str> = (0..rows)
                .map(|_| STR_POOL[rng.below(STR_POOL.len() as u64) as usize])
                .collect();
            Column::from_utf8_nullable(Utf8Column::from_strings(&vals), &nulls)
        }
    }
}

fn random_page(rng: &mut Rng) -> DataPage {
    let rows = [0, 1, 2, 63, 64, 65, 200][rng.below(7) as usize];
    if rng.chance(10) {
        return DataPage::row_count_only(rows);
    }
    let ncols = 1 + rng.below(5) as usize;
    DataPage::new((0..ncols).map(|_| random_column(rng, rows)).collect())
}

/// Bit-exact column comparison. Derived `PartialEq` is not enough: NaN
/// compares unequal to itself, so floats go through `to_bits`.
fn assert_columns_bit_identical(a: &Column, b: &Column) {
    assert_eq!(a.data_type(), b.data_type());
    assert_eq!(a.len(), b.len());
    assert_eq!(
        a.validity().is_some(),
        b.validity().is_some(),
        "validity presence must round-trip (absent bitmap = all valid)"
    );
    if let (Some(va), Some(vb)) = (a.validity(), b.validity()) {
        assert_eq!(va, vb, "validity bitmap words must round-trip exactly");
    }
    match (a, b) {
        (Column::Float64(x, _), Column::Float64(y, _)) => {
            for (l, r) in x.iter().zip(y.iter()) {
                assert_eq!(l.to_bits(), r.to_bits(), "float bits must round-trip");
            }
        }
        _ => assert_eq!(a, b),
    }
}

fn assert_pages_bit_identical(a: &DataPage, b: &DataPage) {
    assert_eq!(a.row_count(), b.row_count());
    assert_eq!(a.num_columns(), b.num_columns());
    assert_eq!(a.byte_size(), b.byte_size());
    for (ca, cb) in a.columns().iter().zip(b.columns().iter()) {
        assert_columns_bit_identical(ca, cb);
    }
}

fn roundtrip(page: &DataPage) -> Arc<DataPage> {
    let encoded = Page::data(page.clone()).encode();
    match Page::decode(&encoded).expect("well-formed frame must decode") {
        Page::Data(d) => d,
        Page::End(_) => panic!("data frame decoded as end frame"),
    }
}

#[test]
fn random_pages_roundtrip_bit_identically() {
    let mut rng = Rng(0xA11C_E5ED_5EED_0001);
    for _ in 0..300 {
        let page = random_page(&mut rng);
        let decoded = roundtrip(&page);
        assert_pages_bit_identical(&page, &decoded);
        // Encoding is deterministic: re-encoding the decoded page gives
        // the same bytes.
        assert_eq!(
            Page::data(page.clone()).encode(),
            Page::Data(decoded).encode()
        );
    }
}

#[test]
fn encoded_size_stays_within_documented_bound() {
    let mut rng = Rng(0xA11C_E5ED_5EED_0002);
    for _ in 0..200 {
        let page = random_page(&mut rng);
        let encoded = Page::data(page.clone()).encode();
        let bound = page.byte_size() + FRAME_OVERHEAD + PER_COLUMN_OVERHEAD * page.num_columns();
        assert!(
            encoded.len() <= bound,
            "encoded {} bytes exceeds bound {bound} (byte_size {}, {} cols)",
            encoded.len(),
            page.byte_size(),
            page.num_columns()
        );
    }
}

#[test]
fn special_values_roundtrip() {
    let page = DataPage::new(vec![
        Column::from_i64(vec![i64::MIN, i64::MAX, 0, -1]),
        Column::from_f64(vec![f64::NAN, -0.0, 0.0, f64::NEG_INFINITY]),
        Column::from_strings(&["", "\u{0}", "héllo", "末"]),
    ]);
    let decoded = roundtrip(&page);
    assert_pages_bit_identical(&page, &decoded);
    let f = decoded.column(1).as_f64().unwrap();
    assert!(f[0].is_nan());
    assert_eq!(f[1].to_bits(), (-0.0f64).to_bits(), "-0.0 must stay -0.0");
    assert_eq!(decoded.column(2).as_utf8().unwrap().value(0), "");
}

#[test]
fn empty_and_row_count_only_pages_roundtrip() {
    let empty = DataPage::new(vec![
        Column::from_i64(vec![]),
        Column::from_strings::<&str>(&[]),
    ]);
    assert_pages_bit_identical(&empty, &roundtrip(&empty));
    let counted = DataPage::row_count_only(12345);
    let decoded = roundtrip(&counted);
    assert_eq!(decoded.row_count(), 12345);
    assert_eq!(decoded.num_columns(), 0);
}

#[test]
fn truncation_at_every_length_is_a_typed_error_never_a_panic() {
    let mut rng = Rng(0xA11C_E5ED_5EED_0003);
    for _ in 0..20 {
        let page = random_page(&mut rng);
        let encoded = Page::data(page).encode();
        for len in 0..encoded.len() {
            match Page::decode(&encoded[..len]) {
                Err(AccordionError::Wire(_)) => {}
                Err(other) => panic!("expected Wire error, got {other}"),
                Ok(_) => panic!("truncated frame of {len}/{} bytes decoded", encoded.len()),
            }
        }
    }
}

#[test]
fn corruption_of_any_byte_is_detected() {
    let mut rng = Rng(0xA11C_E5ED_5EED_0004);
    let page = random_page(&mut rng);
    let encoded = Page::data(page.clone()).encode();
    // Flip a bit at a sample of positions across the frame (every position
    // for small frames). The checksum (or version/kind gate) must catch it —
    // decode may never panic and never silently return different data.
    for pos in 0..encoded.len() {
        let mut bad = encoded.clone();
        bad[pos] ^= 0x40;
        if let Ok(Page::Data(d)) = Page::decode(&bad) {
            assert_pages_bit_identical(&page, &d);
        }
    }
}

#[test]
fn wrong_schema_hash_is_rejected() {
    let page = DataPage::new(vec![Column::from_i64(vec![1, 2, 3])]);
    let encoded = Page::data(page).encode();
    let right = accordion_data::wire::schema_hash(&[DataType::Int64]);
    let wrong = accordion_data::wire::schema_hash(&[DataType::Utf8]);
    assert!(Page::decode_expecting(&encoded, right).is_ok());
    match Page::decode_expecting(&encoded, wrong) {
        Err(AccordionError::Wire(m)) => assert!(m.contains("schema hash"), "{m}"),
        other => panic!("expected schema-hash rejection, got {other:?}"),
    }
    // End frames carry no schema and pass any expectation.
    let end = Page::end(EndReason::ScanExhausted).encode();
    assert!(Page::decode_expecting(&end, wrong).is_ok());
}

#[test]
fn garbage_input_never_panics() {
    let mut rng = Rng(0xA11C_E5ED_5EED_0005);
    for _ in 0..500 {
        let len = rng.below(256) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // Any outcome but a panic is acceptable; Ok is astronomically
        // unlikely but not wrong per se (checksum collision).
        let _ = Page::decode(&garbage);
    }
}
