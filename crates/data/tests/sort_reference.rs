//! Property-style ordering tests: `sort_page` and `TopNAccumulator` are
//! cross-checked against a naive row-materializing reference sort on
//! randomized-but-seeded inputs (nulls included).

use std::cmp::Ordering;

use accordion_data::column::ColumnBuilder;
use accordion_data::page::DataPage;
use accordion_data::sort::{compare_rows, sort_page, SortKey, TopNAccumulator};
use accordion_data::types::{DataType, Value};

/// Deterministic xorshift64* generator (no external rand crate).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Random 3-column page: small-domain Int64 (forces ties), Utf8, Float64 —
/// each with ~1/6 NULLs.
fn random_page(rng: &mut Rng, rows: usize) -> DataPage {
    let mut c0 = ColumnBuilder::new(DataType::Int64, rows);
    let mut c1 = ColumnBuilder::new(DataType::Utf8, rows);
    let mut c2 = ColumnBuilder::new(DataType::Float64, rows);
    for _ in 0..rows {
        c0.push(if rng.below(6) == 0 {
            Value::Null
        } else {
            Value::Int64(rng.below(5) as i64)
        });
        c1.push(if rng.below(6) == 0 {
            Value::Null
        } else {
            Value::Utf8(format!("s{}", rng.below(4)))
        });
        c2.push(if rng.below(6) == 0 {
            Value::Null
        } else {
            Value::Float64(rng.below(100) as f64 / 4.0)
        });
    }
    DataPage::new(vec![c0.finish(), c1.finish(), c2.finish()])
}

fn cmp_value_rows(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for k in keys {
        let ord = a[k.column].total_cmp(&b[k.column]);
        let ord = if k.descending { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Naive reference: materialize rows, stable-sort with the same comparator.
fn reference_sort(page: &DataPage, keys: &[SortKey]) -> Vec<Vec<Value>> {
    let mut rows = page.rows();
    rows.sort_by(|a, b| cmp_value_rows(a, b, keys));
    rows
}

fn key_tuples(rows: &[Vec<Value>], keys: &[SortKey]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|r| keys.iter().map(|k| r[k.column].clone()).collect())
        .collect()
}

#[test]
fn sort_page_matches_reference_across_seeds() {
    let key_sets: Vec<Vec<SortKey>> = vec![
        vec![SortKey::asc(0)],
        vec![SortKey::desc(2)],
        vec![SortKey::asc(0), SortKey::desc(1)],
        vec![SortKey::desc(1), SortKey::asc(2), SortKey::asc(0)],
    ];
    for seed in 1..=15u64 {
        let mut rng = Rng::new(seed * 7919);
        let rows = 1 + rng.below(60) as usize;
        let page = random_page(&mut rng, rows);
        for keys in &key_sets {
            let sorted = sort_page(&page, keys);
            let expected = reference_sort(&page, keys);
            // Both sorts are stable with the same comparator ⇒ rows match
            // exactly, payload columns included.
            assert_eq!(
                sorted.rows(),
                expected,
                "seed {seed}, keys {keys:?} diverged"
            );
        }
    }
}

#[test]
fn topn_matches_reference_prefix_across_seeds() {
    let keys = vec![SortKey::asc(0), SortKey::desc(2)];
    for seed in 1..=15u64 {
        let mut rng = Rng::new(seed * 104_729);
        // Feed the accumulator in several pages; the reference sees the
        // concatenation.
        let mut pages: Vec<DataPage> = Vec::new();
        for _ in 0..3 {
            let rows = 1 + rng.below(25) as usize;
            pages.push(random_page(&mut rng, rows));
        }
        let whole = DataPage::concat(&pages.iter().collect::<Vec<_>>());
        for n in [0usize, 1, 3, 10, 1000] {
            let mut acc = TopNAccumulator::new(keys.clone(), n);
            for p in &pages {
                acc.push_page(p);
            }
            let got = acc.finish_rows();
            let expected = reference_sort(&whole, &keys);
            let expected_prefix = &expected[..n.min(expected.len())];
            // Ties at the cut line make retained payloads ambiguous, so
            // compare the sort-key tuples, which the heap must get right.
            assert_eq!(
                key_tuples(&got, &keys),
                key_tuples(expected_prefix, &keys),
                "seed {seed}, n {n} diverged"
            );
        }
    }
}

#[test]
fn compare_rows_agrees_with_value_comparator() {
    let mut rng = Rng::new(31);
    let page = random_page(&mut rng, 40);
    let keys = vec![SortKey::desc(0), SortKey::asc(1)];
    let rows = page.rows();
    for a in 0..page.row_count() {
        for b in 0..page.row_count() {
            assert_eq!(
                compare_rows(&page, a, &page, b, &keys),
                cmp_value_rows(&rows[a], &rows[b], &keys),
                "rows {a} vs {b}"
            );
        }
    }
}

#[test]
fn nulls_sort_first_ascending_last_descending() {
    let mut b = ColumnBuilder::new(DataType::Int64, 4);
    b.push(Value::Int64(5));
    b.push(Value::Null);
    b.push(Value::Int64(1));
    b.push(Value::Null);
    let page = DataPage::new(vec![b.finish()]);
    let asc = sort_page(&page, &[SortKey::asc(0)]);
    assert_eq!(
        asc.rows(),
        vec![
            vec![Value::Null],
            vec![Value::Null],
            vec![Value::Int64(1)],
            vec![Value::Int64(5)],
        ]
    );
    let desc = sort_page(&page, &[SortKey::desc(0)]);
    assert_eq!(
        desc.rows(),
        vec![
            vec![Value::Int64(5)],
            vec![Value::Int64(1)],
            vec![Value::Null],
            vec![Value::Null],
        ]
    );
}
