//! Property-style CSV codec tests: randomized-but-seeded pages round-trip
//! through write → read bit-exactly, covering quoted fields, embedded
//! commas, quotes, LF/CRLF, and empty trailing fields.

use accordion_data::page::DataPage;
use accordion_data::schema::{Field, Schema, SchemaRef};
use accordion_data::types::{DataType, Value};
use accordion_storage::csv::{parse_csv_line, CsvReader, CsvWriter};

/// Tiny deterministic xorshift64* generator — no external rand crate.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn schema() -> SchemaRef {
    Schema::shared(vec![
        Field::new("id", DataType::Int64),
        Field::new("label", DataType::Utf8),
        Field::new("score", DataType::Float64),
        Field::new("flag", DataType::Bool),
        Field::new("day", DataType::Date32),
    ])
}

/// Random string drawing heavily from CSV-hostile characters.
fn random_label(rng: &mut Rng) -> String {
    const NASTY: &[&str] = &[
        ",", "\"", "\"\"", "\n", "\r\n", "a", "payload", "é", " ", "",
    ];
    let parts = rng.below(5);
    let mut s = String::new();
    for _ in 0..parts {
        s.push_str(NASTY[rng.below(NASTY.len() as u64) as usize]);
    }
    s
}

fn random_page(rng: &mut Rng, rows: usize) -> DataPage {
    use accordion_data::page::PageBuilder;
    let mut b = PageBuilder::new(schema(), rows.max(1));
    for _ in 0..rows {
        let row = vec![
            if rng.below(8) == 0 {
                Value::Null
            } else {
                Value::Int64(rng.next() as i64 % 1000)
            },
            Value::Utf8(random_label(rng)),
            if rng.below(8) == 0 {
                Value::Null
            } else {
                // Halves are exactly representable, so Display → parse is
                // lossless.
                Value::Float64(rng.below(2000) as f64 / 2.0 - 500.0)
            },
            if rng.below(8) == 0 {
                Value::Null
            } else {
                Value::Bool(rng.below(2) == 1)
            },
            if rng.below(8) == 0 {
                Value::Null
            } else {
                Value::Date32(rng.below(20000) as i32)
            },
        ];
        b.push_row(row);
    }
    b.finish()
}

fn roundtrip(page: &DataPage, page_rows: usize, tag: &str) {
    let dir = std::env::temp_dir().join("accordion-csv-prop");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.csv"));
    let mut w = CsvWriter::create(&path).unwrap();
    w.write_page(page).unwrap();
    w.finish().unwrap();

    let mut r = CsvReader::open(&path, schema(), page_rows).unwrap();
    let mut pages = Vec::new();
    while let Some(p) = r.next_page().unwrap() {
        pages.push(p);
    }
    let got: Vec<Vec<Value>> = pages.iter().flat_map(|p| p.rows()).collect();
    // NULL Utf8 serializes as an empty unquoted field, which reads back as
    // the empty string — the documented lossy corner of a schema-typed CSV.
    let expected: Vec<Vec<Value>> = page
        .rows()
        .into_iter()
        .map(|mut row| {
            if row[1] == Value::Null {
                row[1] = Value::Utf8(String::new());
            }
            row
        })
        .collect();
    assert_eq!(got, expected, "roundtrip diverged ({tag})");
    std::fs::remove_file(path).ok();
}

#[test]
fn random_pages_roundtrip_across_seeds() {
    for seed in 1..=20u64 {
        let mut rng = Rng::new(seed * 0x9E37_79B9);
        let rows = 1 + rng.below(40) as usize;
        let page = random_page(&mut rng, rows);
        roundtrip(&page, 1 + (seed % 7) as usize, &format!("seed{seed}"));
    }
}

#[test]
fn hostile_fixture_roundtrips() {
    use accordion_data::column::Column;
    let page = DataPage::new(vec![
        Column::from_i64(vec![1, 2, 3, 4]),
        Column::from_strings(&[
            "plain",
            "comma, inside",
            "quote \" and \"\" doubles",
            "multi\nline\r\nwith crlf",
        ]),
        Column::from_f64(vec![0.5, -1.25, 3.0, 4.75]),
        Column::from_bool(vec![true, false, true, false]),
        Column::from_date32(vec![0, 1, 10000, 19999]),
    ]);
    roundtrip(&page, 2, "hostile");
    roundtrip(&page, 100, "hostile-one-page");
}

#[test]
fn empty_trailing_fields_parse() {
    assert_eq!(parse_csv_line("a,,").unwrap(), vec!["a", "", ""]);
    assert_eq!(parse_csv_line(",").unwrap(), vec!["", ""]);
    assert_eq!(parse_csv_line("\"\",\"\"").unwrap(), vec!["", ""]);
}

#[test]
fn stray_quotes_error_instead_of_corrupting() {
    // A quote inside an unquoted field is malformed input, not data.
    assert!(parse_csv_line("a\"b,1").is_err());
    // Trailing garbage after a closing quote is malformed too.
    assert!(parse_csv_line("\"x\"y,1").is_err());
    // And a whole file of such lines fails loudly rather than silently
    // merging rows through the multi-line record accumulator.
    let dir = std::env::temp_dir().join("accordion-csv-prop");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stray.csv");
    std::fs::write(
        &path,
        "a\"b,1,0.5,true,1994-03-05\nc\"d,2,0.5,true,1994-03-05\n",
    )
    .unwrap();
    let mut r = CsvReader::open(&path, schema(), 8).unwrap();
    assert!(r.next_page().is_err());
    std::fs::remove_file(path).ok();
}

#[test]
fn crlf_terminated_records_read_back() {
    let dir = std::env::temp_dir().join("accordion-csv-prop");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("crlf.csv");
    std::fs::write(
        &path,
        "1,a,0.5,true,1994-03-05\r\n2,\"b\r\nc\",1.5,false,1998-12-01\r\n",
    )
    .unwrap();
    let mut r = CsvReader::open(&path, schema(), 10).unwrap();
    let page = r.next_page().unwrap().unwrap();
    assert_eq!(page.row_count(), 2);
    assert_eq!(page.column(1).value(0), Value::Utf8("a".into()));
    assert_eq!(page.column(1).value(1), Value::Utf8("b\r\nc".into()));
    assert!(r.next_page().unwrap().is_none());
    std::fs::remove_file(path).ok();
}

#[test]
fn page_chunking_respects_page_rows() {
    let mut rng = Rng::new(42);
    let page = random_page(&mut rng, 25);
    let dir = std::env::temp_dir().join("accordion-csv-prop");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chunks.csv");
    let mut w = CsvWriter::create(&path).unwrap();
    w.write_page(&page).unwrap();
    w.finish().unwrap();
    let mut r = CsvReader::open(&path, schema(), 10).unwrap();
    let mut sizes = Vec::new();
    while let Some(p) = r.next_page().unwrap() {
        sizes.push(p.row_count());
    }
    assert_eq!(sizes, vec![10, 10, 5]);
    std::fs::remove_file(path).ok();
}
