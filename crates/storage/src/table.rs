//! Table construction helpers.
//!
//! [`TableBuilder`] accumulates rows, chunks them into pages, partitions the
//! pages into splits laid out across storage nodes (reproducing the paper's
//! Table 1 schemes, e.g. "10 nodes, 7 splits/node" for lineitem) and
//! registers the result in a [`Catalog`].

use std::sync::Arc;

use accordion_common::id::IdGen;
use accordion_common::{NodeId, SplitId};
use accordion_data::page::{DataPage, PageBuilder};
use accordion_data::schema::SchemaRef;
use accordion_data::types::Value;

use crate::catalog::{Catalog, TableMeta};
use crate::split::{Split, SplitData, SplitSet};

/// Process-wide split id allocator (splits must be unique across tables).
static SPLIT_IDS: IdGen = IdGen::new();

/// Describes how a table is spread over storage nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitioningScheme {
    /// Number of storage nodes holding the table.
    pub nodes: u32,
    /// Splits per node.
    pub splits_per_node: u32,
}

impl PartitioningScheme {
    pub fn new(nodes: u32, splits_per_node: u32) -> Self {
        assert!(nodes > 0 && splits_per_node > 0);
        PartitioningScheme {
            nodes,
            splits_per_node,
        }
    }

    pub fn total_splits(&self) -> u32 {
        self.nodes * self.splits_per_node
    }
}

/// Chunks `pages` into `scheme.total_splits()` splits, assigning them
/// round-robin to nodes `0..scheme.nodes` (offset by `first_node`).
pub fn partition_rows(
    table: &str,
    pages: Vec<DataPage>,
    scheme: PartitioningScheme,
    first_node: u32,
) -> SplitSet {
    let total_rows: usize = pages.iter().map(|p| p.row_count()).sum();
    let total_splits = scheme.total_splits() as usize;
    let rows_per_split = total_rows.div_ceil(total_splits).max(1);

    // Flatten into per-split page groups of ~rows_per_split rows.
    let mut groups: Vec<Vec<DataPage>> = vec![Vec::new(); total_splits];
    let mut group_rows = vec![0usize; total_splits];
    let mut g = 0usize;
    for page in pages {
        let mut offset = 0;
        while offset < page.row_count() {
            if g < total_splits - 1 && group_rows[g] >= rows_per_split {
                g += 1;
            }
            let take = (rows_per_split.saturating_sub(group_rows[g]))
                .min(page.row_count() - offset)
                .max(1);
            groups[g].push(page.slice(offset, take));
            group_rows[g] += take;
            offset += take;
        }
    }

    let mut set = SplitSet::default();
    for (i, group) in groups.into_iter().enumerate() {
        let rows: u64 = group.iter().map(|p| p.row_count() as u64).sum();
        let bytes: u64 = group.iter().map(|p| p.byte_size() as u64).sum();
        // Node assignment: split i lives on node (i % nodes); this spreads
        // each table evenly, like the paper's "1 split/node" schemes.
        let node = NodeId(first_node + (i as u32 % scheme.nodes));
        set.push(Split {
            id: SplitId(SPLIT_IDS.next_u64()),
            node,
            table: table.to_string(),
            data: SplitData::Memory(Arc::new(group)),
            rows,
            bytes,
        });
    }
    set
}

/// Row-at-a-time table builder.
pub struct TableBuilder {
    name: String,
    schema: SchemaRef,
    builder: PageBuilder,
    pages: Vec<DataPage>,
}

impl TableBuilder {
    pub fn new(name: impl Into<String>, schema: SchemaRef, page_rows: usize) -> Self {
        let builder = PageBuilder::new(schema.clone(), page_rows);
        TableBuilder {
            name: name.into(),
            schema,
            builder,
            pages: Vec::new(),
        }
    }

    pub fn push_row(&mut self, row: Vec<Value>) {
        self.builder.push_row(row);
        if self.builder.is_full() {
            self.pages.push(self.builder.finish());
        }
    }

    pub fn row_count(&self) -> usize {
        self.pages.iter().map(|p| p.row_count()).sum::<usize>() + self.builder.row_count()
    }

    /// Finishes the table, partitions it and registers it in `catalog`.
    pub fn register(
        mut self,
        catalog: &Catalog,
        scheme: PartitioningScheme,
        first_node: u32,
    ) -> Arc<TableMeta> {
        if !self.builder.is_empty() {
            self.pages.push(self.builder.finish());
        }
        let splits = partition_rows(&self.name, self.pages, scheme, first_node);
        let meta = TableMeta {
            name: self.name.clone(),
            schema: self.schema,
            splits,
        };
        catalog.register(meta);
        catalog.get(&self.name).expect("just registered")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::column::Column;
    use accordion_data::schema::{Field, Schema};
    use accordion_data::types::DataType;

    fn pages(n: usize, rows_per_page: usize) -> Vec<DataPage> {
        (0..n)
            .map(|i| {
                DataPage::new(vec![Column::from_i64(
                    (0..rows_per_page as i64)
                        .map(|r| (i * rows_per_page) as i64 + r)
                        .collect(),
                )])
            })
            .collect()
    }

    #[test]
    fn partitioning_preserves_all_rows() {
        let scheme = PartitioningScheme::new(3, 2);
        let set = partition_rows("t", pages(5, 100), scheme, 0);
        assert_eq!(set.len(), 6);
        assert_eq!(set.total_rows(), 500);
        // Every node got two splits.
        for node in 0..3 {
            assert_eq!(set.on_node(NodeId(node)).len(), 2);
        }
    }

    #[test]
    fn partitioning_balances_rows() {
        let scheme = PartitioningScheme::new(2, 2);
        let set = partition_rows("t", pages(4, 50), scheme, 0);
        let sizes: Vec<u64> = set.splits().iter().map(|s| s.rows).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 200);
        for s in &sizes {
            assert!(*s >= 40 && *s <= 60, "unbalanced split: {s} rows");
        }
    }

    #[test]
    fn first_node_offsets_assignment() {
        let scheme = PartitioningScheme::new(2, 1);
        let set = partition_rows("t", pages(2, 10), scheme, 5);
        let nodes: Vec<u32> = set.splits().iter().map(|s| s.node.0).collect();
        assert!(nodes.iter().all(|&n| n == 5 || n == 6));
    }

    #[test]
    fn builder_flushes_partial_pages_and_registers() {
        let catalog = Catalog::new();
        let schema = Schema::shared(vec![Field::new("x", DataType::Int64)]);
        let mut b = TableBuilder::new("nums", schema, 4);
        for i in 0..10 {
            b.push_row(vec![Value::Int64(i)]);
        }
        assert_eq!(b.row_count(), 10);
        let meta = b.register(&catalog, PartitioningScheme::new(1, 2), 0);
        assert_eq!(meta.row_count(), 10);
        assert_eq!(meta.splits.len(), 2);
        assert!(catalog.contains("nums"));
        // Streaming all splits yields exactly the input rows.
        let mut seen = Vec::new();
        for split in meta.splits.splits() {
            let mut it = split.open(3).unwrap();
            while let Some(p) = it.next_page().unwrap() {
                seen.extend_from_slice(p.column(0).as_i64().unwrap());
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_table_registers_with_empty_splits() {
        let catalog = Catalog::new();
        let schema = Schema::shared(vec![Field::new("x", DataType::Int64)]);
        let b = TableBuilder::new("empty", schema, 4);
        let meta = b.register(&catalog, PartitioningScheme::new(2, 1), 0);
        assert_eq!(meta.row_count(), 0);
    }

    #[test]
    fn scheme_total() {
        assert_eq!(PartitioningScheme::new(10, 7).total_splits(), 70);
    }
}
