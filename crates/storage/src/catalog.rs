//! Table catalog.
//!
//! The catalog is shared by the SQL analyzer (name → schema resolution),
//! the planner (statistics for broadcast-vs-partitioned join decisions) and
//! the scheduler (split enumeration for scan stages).

use std::collections::BTreeMap;
use std::sync::Arc;

use accordion_common::sync::RwLock;
use accordion_common::{AccordionError, Result};
use accordion_data::schema::SchemaRef;

use crate::split::SplitSet;

/// Metadata of one registered table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub name: String,
    pub schema: SchemaRef,
    pub splits: SplitSet,
}

impl TableMeta {
    pub fn row_count(&self) -> u64 {
        self.splits.total_rows()
    }

    pub fn byte_size(&self) -> u64 {
        self.splits.total_bytes()
    }
}

/// Thread-safe table registry. Cheap to clone (shared internals).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Arc<RwLock<BTreeMap<String, Arc<TableMeta>>>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table. Names are case-insensitive and
    /// stored lower-case, matching common SQL engines.
    pub fn register(&self, meta: TableMeta) {
        let key = meta.name.to_ascii_lowercase();
        self.tables.write().insert(key, Arc::new(meta));
    }

    /// Looks up a table by name (case-insensitive).
    pub fn get(&self, name: &str) -> Result<Arc<TableMeta>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| AccordionError::Analysis(format!("table '{name}' does not exist")))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::schema::{Field, Schema};
    use accordion_data::types::DataType;

    fn meta(name: &str) -> TableMeta {
        TableMeta {
            name: name.to_string(),
            schema: Schema::shared(vec![Field::new("x", DataType::Int64)]),
            splits: SplitSet::default(),
        }
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let c = Catalog::new();
        c.register(meta("Lineitem"));
        assert!(c.contains("lineitem"));
        assert!(c.contains("LINEITEM"));
        let t = c.get("lineItem").unwrap();
        assert_eq!(t.name, "Lineitem");
        assert!(c.get("orders").is_err());
    }

    #[test]
    fn replace_and_enumerate() {
        let c = Catalog::new();
        c.register(meta("a"));
        c.register(meta("b"));
        c.register(meta("a")); // replace
        assert_eq!(c.len(), 2);
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert!(!c.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let c = Catalog::new();
        let c2 = c.clone();
        c.register(meta("t"));
        assert!(c2.contains("t"));
    }
}
