//! Storage layer: catalog, table splits and CSV I/O.
//!
//! The paper stores TPC-H tables as CSV files manually divided into splits
//! across 10 storage nodes (Table 1), read through the Arrow CSV reader.
//! This crate reproduces that model:
//!
//! * [`catalog`] — table metadata registry shared by the analyzer, planner
//!   and scheduler.
//! * [`split`] — the **system split** model (paper §2 "Driver Execution"):
//!   a split is a chunk of a base table living on a storage node; scan tasks
//!   fetch and process splits. Splits carry byte/row sizes so the progress
//!   monitor can compute `V_remain` for the what-if predictor (§5.2).
//! * [`csv`] — a from-scratch RFC-4180-ish CSV codec (the Arrow CSV reader
//!   substitute).
//! * [`table`] — helpers to build in-memory tables, partition them into
//!   splits over storage nodes (Table 1 partitioning schemes) and to
//!   register them in the catalog.

pub mod catalog;
pub mod csv;
pub mod split;
pub mod table;

pub use catalog::{Catalog, TableMeta};
pub use split::{Split, SplitData, SplitSet};
pub use table::{partition_rows, TableBuilder};
