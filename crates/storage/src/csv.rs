//! CSV codec — the Arrow CSV reader substitute.
//!
//! Implements the RFC-4180 essentials: comma separation, `"` quoting with
//! doubled-quote escapes, quoted fields may contain commas and newlines.
//! The reader streams a file into pages of a configurable row count; the
//! writer serializes pages. Values are parsed according to the supplied
//! schema (CSV itself is untyped).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use accordion_common::{AccordionError, Result};
use accordion_data::page::{DataPage, PageBuilder};
use accordion_data::schema::SchemaRef;
use accordion_data::types::{parse_date32, DataType, Value};

/// Streaming CSV file reader producing [`DataPage`]s.
pub struct CsvReader {
    reader: BufReader<File>,
    schema: SchemaRef,
    page_rows: usize,
    record: String,
    exhausted: bool,
}

impl CsvReader {
    pub fn open(path: &Path, schema: SchemaRef, page_rows: usize) -> Result<Self> {
        let file = File::open(path)
            .map_err(|e| AccordionError::Storage(format!("cannot open {}: {e}", path.display())))?;
        Ok(CsvReader {
            reader: BufReader::new(file),
            schema,
            page_rows,
            record: String::new(),
            exhausted: false,
        })
    }

    /// Accumulates one logical record into `self.record`. A record spans
    /// multiple physical lines when a quoted field contains a newline, so
    /// lines are appended until the quote count balances. Returns `false`
    /// at end of file.
    fn read_record(&mut self) -> Result<bool> {
        self.record.clear();
        loop {
            let n = self.reader.read_line(&mut self.record)?;
            if n == 0 {
                // EOF: any partial record (unterminated quote) surfaces as
                // a parse error downstream.
                return Ok(!self.record.is_empty());
            }
            // Quotes appear only as field delimiters or doubled escapes, so
            // an even count means every quoted field is closed.
            if self.record.bytes().filter(|&b| b == b'"').count() % 2 == 0 {
                return Ok(true);
            }
        }
    }

    /// Reads the next page, or `None` at end of file.
    pub fn next_page(&mut self) -> Result<Option<DataPage>> {
        if self.exhausted {
            return Ok(None);
        }
        let mut builder = PageBuilder::new(self.schema.clone(), self.page_rows);
        while builder.row_count() < self.page_rows {
            if !self.read_record()? {
                self.exhausted = true;
                break;
            }
            // Trim the record terminator (LF or CRLF); quoted embedded
            // newlines live before the closing quote and are untouched.
            let trimmed = self.record.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            let fields = parse_csv_line(trimmed)?;
            if fields.len() != self.schema.len() {
                return Err(AccordionError::Storage(format!(
                    "csv arity mismatch: {} fields, schema has {}",
                    fields.len(),
                    self.schema.len()
                )));
            }
            let row: Vec<Value> = fields
                .iter()
                .zip(self.schema.fields())
                .map(|(text, field)| parse_value(text, field.data_type))
                .collect::<Result<_>>()?;
            builder.push_row(row);
        }
        if builder.is_empty() {
            Ok(None)
        } else {
            Ok(Some(builder.finish()))
        }
    }
}

fn parse_value(text: &str, dt: DataType) -> Result<Value> {
    if text.is_empty() && dt != DataType::Utf8 {
        return Ok(Value::Null);
    }
    match dt {
        DataType::Int64 => text
            .parse::<i64>()
            .map(Value::Int64)
            .map_err(|e| AccordionError::Storage(format!("bad int {text:?}: {e}"))),
        DataType::Float64 => text
            .parse::<f64>()
            .map(Value::Float64)
            .map_err(|e| AccordionError::Storage(format!("bad float {text:?}: {e}"))),
        DataType::Bool => match text {
            "true" | "TRUE" | "1" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "0" => Ok(Value::Bool(false)),
            _ => Err(AccordionError::Storage(format!("bad bool {text:?}"))),
        },
        DataType::Date32 => parse_date32(text)
            .map(Value::Date32)
            .ok_or_else(|| AccordionError::Storage(format!("bad date {text:?}"))),
        DataType::Utf8 => Ok(Value::Utf8(text.to_string())),
    }
}

/// Splits one CSV record into unquoted field strings. Strict per RFC 4180:
/// quotes may only open a field, escape inside a quoted field (doubled), or
/// close it — a stray quote is an error, not data, so corrupted input fails
/// loudly instead of silently merging rows.
pub fn parse_csv_line(line: &str) -> Result<Vec<String>> {
    #[derive(PartialEq)]
    enum FieldState {
        /// At the start of a (possibly empty) field.
        Start,
        /// Inside an unquoted field.
        Unquoted,
        /// Inside a quoted field.
        Quoted,
        /// A quoted field just closed; only `,` or end-of-record may follow.
        Closed,
    }
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut state = FieldState::Start;
    while let Some(c) = chars.next() {
        match state {
            FieldState::Start => match c {
                '"' => state = FieldState::Quoted,
                ',' => fields.push(std::mem::take(&mut cur)),
                other => {
                    cur.push(other);
                    state = FieldState::Unquoted;
                }
            },
            FieldState::Unquoted => match c {
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                    state = FieldState::Start;
                }
                '"' => {
                    return Err(AccordionError::Storage(format!(
                        "stray quote inside unquoted csv field: {line:?}"
                    )))
                }
                other => cur.push(other),
            },
            FieldState::Quoted => match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        state = FieldState::Closed;
                    }
                }
                other => cur.push(other),
            },
            FieldState::Closed => match c {
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                    state = FieldState::Start;
                }
                other => {
                    return Err(AccordionError::Storage(format!(
                        "unexpected {other:?} after closing quote in csv line: {line:?}"
                    )))
                }
            },
        }
    }
    if state == FieldState::Quoted {
        return Err(AccordionError::Storage(format!(
            "unterminated quote in csv line: {line:?}"
        )));
    }
    fields.push(cur);
    Ok(fields)
}

/// Serializes one field with quoting when needed.
fn write_field(out: &mut impl Write, v: &Value) -> std::io::Result<()> {
    match v {
        Value::Null => Ok(()),
        Value::Utf8(s) => {
            if s.contains([',', '"', '\n', '\r']) {
                write!(out, "\"{}\"", s.replace('"', "\"\""))
            } else {
                write!(out, "{s}")
            }
        }
        other => write!(out, "{other}"),
    }
}

/// Writes pages to a CSV file (no header row, matching the reader).
pub struct CsvWriter {
    out: BufWriter<File>,
}

impl CsvWriter {
    pub fn create(path: &Path) -> Result<Self> {
        let file = File::create(path).map_err(|e| {
            AccordionError::Storage(format!("cannot create {}: {e}", path.display()))
        })?;
        Ok(CsvWriter {
            out: BufWriter::new(file),
        })
    }

    pub fn write_page(&mut self, page: &DataPage) -> Result<()> {
        for row in 0..page.row_count() {
            for col in 0..page.num_columns() {
                if col > 0 {
                    self.out.write_all(b",")?;
                }
                write_field(&mut self.out, &page.column(col).value(row))?;
            }
            self.out.write_all(b"\n")?;
        }
        Ok(())
    }

    pub fn finish(mut self) -> Result<()> {
        self.out.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::column::Column;
    use accordion_data::schema::{Field, Schema};

    fn schema() -> SchemaRef {
        Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("price", DataType::Float64),
            Field::new("day", DataType::Date32),
        ])
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("accordion-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        let page = DataPage::new(vec![
            Column::from_i64(vec![1, 2, 3]),
            Column::from_strings(&["plain", "with,comma", "with\"quote"]),
            Column::from_f64(vec![1.5, 2.0, -0.25]),
            Column::from_date32(vec![0, 100, 10000]),
        ]);
        let mut w = CsvWriter::create(&path).unwrap();
        w.write_page(&page).unwrap();
        w.finish().unwrap();

        let mut r = CsvReader::open(&path, schema(), 2).unwrap();
        let mut pages = Vec::new();
        while let Some(p) = r.next_page().unwrap() {
            pages.push(p);
        }
        assert_eq!(pages.len(), 2, "3 rows at page_rows=2 → 2 pages");
        let all = DataPage::concat(&pages.iter().collect::<Vec<_>>());
        assert_eq!(all.rows(), page.rows());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_line_quoting() {
        assert_eq!(parse_csv_line("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(parse_csv_line("\"a,b\",c").unwrap(), vec!["a,b", "c"]);
        assert_eq!(
            parse_csv_line("\"he said \"\"hi\"\"\",x").unwrap(),
            vec!["he said \"hi\"", "x"]
        );
        assert_eq!(parse_csv_line(",,").unwrap(), vec!["", "", ""]);
        assert!(parse_csv_line("\"unterminated").is_err());
    }

    #[test]
    fn empty_non_string_fields_parse_as_null() {
        assert_eq!(parse_value("", DataType::Int64).unwrap(), Value::Null);
        assert_eq!(
            parse_value("", DataType::Utf8).unwrap(),
            Value::Utf8(String::new())
        );
    }

    #[test]
    fn bad_values_error() {
        assert!(parse_value("xyz", DataType::Int64).is_err());
        assert!(parse_value("1.2.3", DataType::Float64).is_err());
        assert!(parse_value("maybe", DataType::Bool).is_err());
        assert!(parse_value("2020-13-01", DataType::Date32).is_err());
    }

    #[test]
    fn bool_forms() {
        assert_eq!(
            parse_value("true", DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            parse_value("0", DataType::Bool).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn arity_mismatch_detected() {
        let dir = std::env::temp_dir().join("accordion-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad-arity.csv");
        std::fs::write(&path, "1,x\n").unwrap();
        let mut r = CsvReader::open(&path, schema(), 8).unwrap();
        assert!(r.next_page().is_err());
        std::fs::remove_file(path).ok();
    }
}
