//! The split model.
//!
//! A [`Split`] is the unit of table-scan work distribution: a contiguous
//! chunk of one base table, resident on a storage node. The coordinator
//! hands splits to scan tasks ("system splits", paper Fig 5); a scan task
//! opens the split and streams its pages.
//!
//! Splits know their byte and row sizes up front — the runtime progress
//! monitor sums outstanding split volume to get `V_remain` for the
//! remaining-time predictor (paper §5.2).

use std::path::PathBuf;
use std::sync::Arc;

use accordion_common::{AccordionError, NodeId, Result, SplitId};
use accordion_data::page::DataPage;
use accordion_data::schema::SchemaRef;

use crate::csv::CsvReader;

/// Where a split's bytes live.
#[derive(Debug, Clone)]
pub enum SplitData {
    /// Pages resident in memory on the storage node (pre-chunked).
    Memory(Arc<Vec<DataPage>>),
    /// A CSV file (or a byte range of one) on disk.
    Csv { path: PathBuf, schema: SchemaRef },
}

/// One chunk of a base table.
#[derive(Debug, Clone)]
pub struct Split {
    pub id: SplitId,
    /// Storage node holding the data (drives NIC accounting for scans).
    pub node: NodeId,
    pub table: String,
    pub data: SplitData,
    /// Total rows in this split.
    pub rows: u64,
    /// Approximate bytes in this split.
    pub bytes: u64,
}

impl Split {
    /// Opens the split as a page iterator producing pages of at most
    /// `page_rows` rows.
    pub fn open(&self, page_rows: usize) -> Result<SplitPages> {
        match &self.data {
            SplitData::Memory(pages) => Ok(SplitPages::Memory {
                pages: pages.clone(),
                next: 0,
                page_rows,
                pending: None,
            }),
            SplitData::Csv { path, schema } => {
                let reader = CsvReader::open(path, schema.clone(), page_rows)?;
                Ok(SplitPages::Csv(reader))
            }
        }
    }
}

/// Streaming page iterator over one split.
pub enum SplitPages {
    Memory {
        pages: Arc<Vec<DataPage>>,
        next: usize,
        page_rows: usize,
        /// Remainder of a stored page larger than `page_rows`.
        pending: Option<(DataPage, usize)>,
    },
    Csv(CsvReader),
}

impl SplitPages {
    /// Next page, or `None` when the split is exhausted.
    pub fn next_page(&mut self) -> Result<Option<DataPage>> {
        match self {
            SplitPages::Memory {
                pages,
                next,
                page_rows,
                pending,
            } => loop {
                if let Some((page, offset)) = pending.take() {
                    let remaining = page.row_count() - offset;
                    let take = remaining.min(*page_rows);
                    let out = page.slice(offset, take);
                    if offset + take < page.row_count() {
                        *pending = Some((page, offset + take));
                    }
                    return Ok(Some(out));
                }
                if *next >= pages.len() {
                    return Ok(None);
                }
                let page = pages[*next].clone();
                *next += 1;
                if page.row_count() == 0 {
                    continue;
                }
                if page.row_count() <= *page_rows {
                    return Ok(Some(page));
                }
                *pending = Some((page, 0));
            },
            SplitPages::Csv(reader) => reader.next_page(),
        }
    }
}

/// An ordered collection of splits for one table, with totals.
#[derive(Debug, Clone, Default)]
pub struct SplitSet {
    splits: Vec<Split>,
}

impl SplitSet {
    pub fn new(splits: Vec<Split>) -> Self {
        SplitSet { splits }
    }

    pub fn splits(&self) -> &[Split] {
        &self.splits
    }

    pub fn len(&self) -> usize {
        self.splits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.splits.is_empty()
    }

    pub fn total_rows(&self) -> u64 {
        self.splits.iter().map(|s| s.rows).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.splits.iter().map(|s| s.bytes).sum()
    }

    /// Splits resident on `node`.
    pub fn on_node(&self, node: NodeId) -> Vec<&Split> {
        self.splits.iter().filter(|s| s.node == node).collect()
    }

    pub fn push(&mut self, split: Split) {
        self.splits.push(split);
    }

    pub fn get(&self, id: SplitId) -> Result<&Split> {
        self.splits
            .iter()
            .find(|s| s.id == id)
            .ok_or_else(|| AccordionError::Storage(format!("unknown split {id}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_common::{NodeId, SplitId};
    use accordion_data::column::Column;

    fn mem_split(id: u64, pages: Vec<DataPage>) -> Split {
        let rows = pages.iter().map(|p| p.row_count() as u64).sum();
        let bytes = pages.iter().map(|p| p.byte_size() as u64).sum();
        Split {
            id: SplitId(id),
            node: NodeId(0),
            table: "t".into(),
            data: SplitData::Memory(Arc::new(pages)),
            rows,
            bytes,
        }
    }

    fn page(vals: Vec<i64>) -> DataPage {
        DataPage::new(vec![Column::from_i64(vals)])
    }

    #[test]
    fn memory_split_streams_all_rows() {
        let s = mem_split(0, vec![page(vec![1, 2, 3]), page(vec![4])]);
        let mut it = s.open(10).unwrap();
        let mut rows = 0;
        while let Some(p) = it.next_page().unwrap() {
            rows += p.row_count();
        }
        assert_eq!(rows, 4);
    }

    #[test]
    fn memory_split_rechunks_large_pages() {
        let s = mem_split(0, vec![page((0..10).collect())]);
        let mut it = s.open(4).unwrap();
        let mut sizes = Vec::new();
        let mut all = Vec::new();
        while let Some(p) = it.next_page().unwrap() {
            sizes.push(p.row_count());
            all.extend_from_slice(p.column(0).as_i64().unwrap());
        }
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(all, (0..10).collect::<Vec<i64>>());
    }

    #[test]
    fn memory_split_skips_empty_pages() {
        let s = mem_split(0, vec![page(vec![]), page(vec![7])]);
        let mut it = s.open(4).unwrap();
        let p = it.next_page().unwrap().unwrap();
        assert_eq!(p.row_count(), 1);
        assert!(it.next_page().unwrap().is_none());
    }

    #[test]
    fn split_set_totals_and_lookup() {
        let mut set = SplitSet::default();
        set.push(mem_split(1, vec![page(vec![1, 2])]));
        set.push(mem_split(2, vec![page(vec![3])]));
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_rows(), 3);
        assert!(set.total_bytes() > 0);
        assert!(set.get(SplitId(2)).is_ok());
        assert!(set.get(SplitId(9)).is_err());
        assert_eq!(set.on_node(NodeId(0)).len(), 2);
        assert_eq!(set.on_node(NodeId(1)).len(), 0);
    }
}
