//! SQL front-end for the Accordion IQRE engine.
//!
//! Zero-dependency, hand-written pipeline from query text to a logical
//! plan the executor can run:
//!
//! 1. [`lexer`] — tokens with byte spans.
//! 2. [`parser`] — recursive-descent parse into the typed, span-carrying
//!    [`ast`]. SELECT (projection/aliases, WHERE, INNER JOIN … ON, GROUP
//!    BY, HAVING, ORDER BY, LIMIT), `SET`, and `SHOW`; batch parsing
//!    recovers at `;` boundaries and reports every error.
//! 3. [`analyzer`] — resolves names against a [`Catalog`], lowers to
//!    [`LogicalPlan`], and maps type errors (from the engine's expression
//!    type checker) back to source spans.
//!
//! The one-call entry point is [`plan_select`]:
//!
//! ```
//! use accordion_data::schema::{Field, Schema};
//! use accordion_data::types::DataType;
//! use accordion_plan::catalog::MemoryCatalog;
//!
//! let mut catalog = MemoryCatalog::new();
//! catalog.register(
//!     "t",
//!     Schema::shared(vec![Field::new("x", DataType::Int64)]),
//! );
//! let plan = accordion_sql::plan_select(&catalog, "SELECT x FROM t WHERE x > 3").unwrap();
//! assert_eq!(plan.schema().field(0).name, "x");
//! ```

pub mod analyzer;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

use std::sync::Arc;

use accordion_common::{AccordionError, Result};
use accordion_plan::catalog::Catalog;
use accordion_plan::logical::LogicalPlan;

pub use analyzer::Analyzer;
pub use ast::Statement;
pub use error::{Span, SqlError, SqlErrorKind};
pub use parser::{parse_one, parse_statements};

/// Parses and analyzes a single SELECT statement into a logical plan.
/// Errors are rendered against `sql` with caret diagnostics.
pub fn plan_select(catalog: &dyn Catalog, sql: &str) -> Result<Arc<LogicalPlan>> {
    match parse_one(sql).map_err(|e| e.into_engine(sql))? {
        Statement::Select(select) => Analyzer::new(catalog, sql)
            .analyze(&select)
            .map_err(|e| e.into_engine(sql)),
        other => Err(AccordionError::Analysis(format!(
            "expected a SELECT statement, got {}",
            statement_kind(&other)
        ))),
    }
}

/// Short display name of a statement variant, for messages.
pub fn statement_kind(s: &Statement) -> &'static str {
    match s {
        Statement::Select(_) => "SELECT",
        Statement::Set { .. } => "SET",
        Statement::Show { .. } => "SHOW",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::schema::{Field, Schema};
    use accordion_data::types::DataType;
    use accordion_plan::catalog::MemoryCatalog;

    fn catalog() -> MemoryCatalog {
        let mut c = MemoryCatalog::new();
        c.register(
            "t",
            Schema::shared(vec![
                Field::new("x", DataType::Int64),
                Field::new("s", DataType::Utf8),
            ]),
        );
        c
    }

    #[test]
    fn plan_select_end_to_end() {
        let c = catalog();
        let p = plan_select(
            &c,
            "SELECT s, x + 1 AS y FROM t WHERE x > 1 ORDER BY y LIMIT 2",
        )
        .unwrap();
        let s = p.schema();
        assert_eq!(s.field(0).name, "s");
        assert_eq!(s.field(1).name, "y");
    }

    #[test]
    fn errors_are_rendered_with_carets() {
        let c = catalog();
        let err = plan_select(&c, "SELECT nope FROM t").unwrap_err();
        let AccordionError::Analysis(msg) = err else {
            panic!("expected analysis error")
        };
        assert!(msg.contains("unknown column 'nope'"), "{msg}");
        assert!(msg.contains("^^^^"), "{msg}");

        let err = plan_select(&c, "SELECT FROM t").unwrap_err();
        assert!(matches!(err, AccordionError::Parse(_)));
    }

    #[test]
    fn non_select_statements_are_rejected() {
        let c = catalog();
        let err = plan_select(&c, "SET dop = 4").unwrap_err();
        let AccordionError::Analysis(msg) = err else {
            panic!()
        };
        assert!(msg.contains("SET"), "{msg}");
    }
}
