//! Source spans and caret-rendered diagnostics.
//!
//! Every token, AST node and front-end error carries a [`Span`] — a
//! half-open byte range into the original SQL text. [`SqlError::render`]
//! turns a spanned error into a readable multi-line diagnostic:
//!
//! ```text
//! analysis error: unknown column 'l_shipdat'
//!   --> line 2, column 7
//!   WHERE l_shipdat <= DATE '1998-09-02'
//!         ^^^^^^^^^
//! ```

use std::fmt;

use accordion_common::AccordionError;

/// Half-open byte range `[start, end)` into the SQL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Which front-end phase produced the error — maps onto
/// [`AccordionError::Parse`] vs [`AccordionError::Analysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlErrorKind {
    Parse,
    Analysis,
}

/// A spanned SQL front-end error. Produced by the lexer, parser and
/// analyzer; rendered against the source text for display.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    pub kind: SqlErrorKind,
    pub message: String,
    pub span: Span,
}

impl SqlError {
    pub fn parse(message: impl Into<String>, span: Span) -> SqlError {
        SqlError {
            kind: SqlErrorKind::Parse,
            message: message.into(),
            span,
        }
    }

    pub fn analysis(message: impl Into<String>, span: Span) -> SqlError {
        SqlError {
            kind: SqlErrorKind::Analysis,
            message: message.into(),
            span,
        }
    }

    /// Renders the error against the SQL text it was produced from, with
    /// the offending source line and a caret underline.
    pub fn render(&self, sql: &str) -> String {
        let phase = match self.kind {
            SqlErrorKind::Parse => "parse error",
            SqlErrorKind::Analysis => "analysis error",
        };
        let start = self.span.start.min(sql.len());
        let (line_no, col_no, line) = locate(sql, start);
        let mut out = format!(
            "{phase}: {}\n  --> line {line_no}, column {col_no}",
            self.message
        );
        if !line.is_empty() {
            let width = self
                .span
                .end
                .saturating_sub(self.span.start)
                .clamp(1, line.len().saturating_sub(col_no - 1).max(1));
            out.push_str(&format!(
                "\n  {line}\n  {}{}",
                " ".repeat(col_no - 1),
                "^".repeat(width)
            ));
        }
        out
    }

    /// Converts into the engine-wide error type, rendering the diagnostic
    /// against the source text.
    pub fn into_engine(self, sql: &str) -> AccordionError {
        let rendered = self.render(sql);
        match self.kind {
            SqlErrorKind::Parse => AccordionError::Parse(rendered),
            SqlErrorKind::Analysis => AccordionError::Analysis(rendered),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// `(1-based line, 1-based column, line text)` for a byte offset.
fn locate(sql: &str, offset: usize) -> (usize, usize, &str) {
    let before = &sql[..offset];
    let line_no = before.matches('\n').count() + 1;
    let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = sql[line_start..]
        .find('\n')
        .map(|i| line_start + i)
        .unwrap_or(sql.len());
    let col_no = offset - line_start + 1;
    (line_no, col_no, &sql[line_start..line_end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_line_and_caret() {
        let sql = "SELECT x\nFROM nope";
        let err = SqlError::analysis("table 'nope' does not exist", Span::new(14, 18));
        let r = err.render(sql);
        assert!(
            r.contains("analysis error: table 'nope' does not exist"),
            "{r}"
        );
        assert!(r.contains("line 2, column 6"), "{r}");
        assert!(r.contains("FROM nope"), "{r}");
        assert!(r.contains("     ^^^^"), "{r}");
    }

    #[test]
    fn span_merge_and_engine_conversion() {
        let s = Span::new(3, 5).to(Span::new(1, 4));
        assert_eq!(s, Span::new(1, 5));
        let e = SqlError::parse("unexpected token", Span::new(0, 3)).into_engine("abc def");
        assert!(matches!(e, AccordionError::Parse(_)));
    }

    #[test]
    fn render_tolerates_out_of_range_span() {
        let err = SqlError::parse("unexpected end of input", Span::new(100, 101));
        let r = err.render("SELECT");
        assert!(r.contains("parse error"), "{r}");
    }
}
