//! Recursive-descent SQL parser with multi-statement error recovery.
//!
//! Grammar (statements separated by `;`):
//!
//! ```text
//! statement  := select | set | show
//! select     := SELECT item (',' item)* FROM table join*
//!               [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
//!               [ORDER BY order (',' order)*] [LIMIT int]
//! item       := '*' | expr [[AS] ident]
//! table      := ident [[AS] ident]
//! join       := [INNER] JOIN table ON expr
//! set        := SET ident ['=' | TO] raw-value
//! show       := SHOW ident
//! ```
//!
//! Expressions use precedence climbing: `OR < AND < NOT < comparison /
//! BETWEEN / IN / LIKE / IS < addition < multiplication < unary < primary`.
//! On a syntax error inside a statement, [`parse_statements`] records the
//! spanned error and resynchronizes at the next `;`, so one bad statement
//! in a batch does not hide diagnostics for the rest.

use accordion_expr::scalar::BinaryOp;

use crate::ast::{
    Expr, ExprKind, From, Ident, Join, Limit, OrderItem, Select, SelectItem, Statement, TableFactor,
};
use crate::error::{Span, SqlError};
use crate::lexer::{tokenize, Token, TokenKind};

/// Words that terminate an implicit (AS-less) alias or a bare identifier.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "by", "having", "order", "limit", "join", "inner", "on",
    "as", "and", "or", "not", "between", "in", "like", "is", "null", "true", "false", "case",
    "when", "then", "else", "end", "extract", "date", "set", "show", "asc", "desc",
];

/// Parses a batch of `;`-separated statements. On syntax errors, recovers at
/// statement boundaries and reports every error found.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, Vec<SqlError>> {
    let tokens = match tokenize(sql) {
        Ok(t) => t,
        Err(e) => return Err(vec![e]),
    };
    let mut p = Parser {
        tokens,
        pos: 0,
        src: sql,
    };
    let mut statements = Vec::new();
    let mut errors = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at(&TokenKind::Eof) {
            break;
        }
        match p.parse_statement() {
            Ok(s) => {
                statements.push(s);
                if !p.at(&TokenKind::Semicolon) && !p.at(&TokenKind::Eof) {
                    errors.push(p.unexpected("';' between statements"));
                    p.recover_to_semicolon();
                }
            }
            Err(e) => {
                errors.push(e);
                p.recover_to_semicolon();
            }
        }
    }
    if errors.is_empty() {
        Ok(statements)
    } else {
        Err(errors)
    }
}

/// Parses exactly one statement (a trailing `;` is allowed).
pub fn parse_one(sql: &str) -> Result<Statement, SqlError> {
    let mut statements = parse_statements(sql).map_err(|mut es| es.remove(0))?;
    match statements.len() {
        0 => Err(SqlError::parse("empty statement", Span::new(0, sql.len()))),
        1 => Ok(statements.remove(0)),
        _ => Err(SqlError::parse(
            "expected a single statement",
            Span::new(0, sql.len()),
        )),
    }
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek().kind == *kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, SqlError> {
        if self.at(kind) {
            Ok(self.next())
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    /// True when the current token is the given keyword (case-insensitive).
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Token, SqlError> {
        if self.at_kw(kw) {
            Ok(self.next())
        } else {
            Err(self.unexpected(&kw.to_ascii_uppercase()))
        }
    }

    fn unexpected(&self, expected: &str) -> SqlError {
        let t = self.peek();
        SqlError::parse(
            format!("expected {expected}, found {}", t.kind.describe()),
            t.span,
        )
    }

    /// Consumes a non-reserved identifier (table/column/alias/variable).
    fn ident(&mut self, what: &str) -> Result<Ident, SqlError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                let ident = Ident {
                    value: s.clone(),
                    span: self.peek().span,
                };
                self.next();
                Ok(ident)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn recover_to_semicolon(&mut self) {
        while !self.at(&TokenKind::Semicolon) && !self.at(&TokenKind::Eof) {
            self.next();
        }
    }

    // ---- statements ----------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement, SqlError> {
        if self.at_kw("select") {
            Ok(Statement::Select(Box::new(self.parse_select()?)))
        } else if self.at_kw("set") {
            self.parse_set()
        } else if self.at_kw("show") {
            self.parse_show()
        } else {
            Err(self.unexpected("SELECT, SET or SHOW"))
        }
    }

    fn parse_set(&mut self) -> Result<Statement, SqlError> {
        let kw = self.expect_kw("set")?;
        let name = self.ident("a variable name")?;
        if !self.eat(&TokenKind::Eq) {
            self.eat_kw("to");
        }
        // The value is everything up to the statement boundary, taken as a
        // raw source slice (so `auto:4000` needs no quoting); a single
        // string literal is unquoted.
        let first = self.peek().clone();
        if matches!(first.kind, TokenKind::Semicolon | TokenKind::Eof) {
            return Err(self.unexpected("a value"));
        }
        if let TokenKind::String(s) = &first.kind {
            self.next();
            if self.at(&TokenKind::Semicolon) || self.at(&TokenKind::Eof) {
                return Ok(Statement::Set {
                    span: kw.span.to(first.span),
                    name,
                    value: s.clone(),
                    value_span: first.span,
                });
            }
        }
        let mut last = first.span;
        while !self.at(&TokenKind::Semicolon) && !self.at(&TokenKind::Eof) {
            last = self.next().span;
        }
        let value_span = first.span.to(last);
        Ok(Statement::Set {
            span: kw.span.to(value_span),
            name,
            value: self.src[value_span.start..value_span.end]
                .trim()
                .to_string(),
            value_span,
        })
    }

    fn parse_show(&mut self) -> Result<Statement, SqlError> {
        let kw = self.expect_kw("show")?;
        let name = self.ident("a variable name or TABLES")?;
        Ok(Statement::Show {
            span: kw.span.to(name.span),
            name,
        })
    }

    // ---- SELECT --------------------------------------------------------

    fn parse_select(&mut self) -> Result<Select, SqlError> {
        let kw = self.expect_kw("select")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.parse_select_item()?);
        }
        self.expect_kw("from")?;
        let from = self.parse_from()?;
        let selection = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.parse_expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let descending = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, descending });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            let t = self.peek().clone();
            match t.kind {
                TokenKind::Int(n) if n >= 0 => {
                    self.next();
                    Some(Limit {
                        n: n as u64,
                        span: t.span,
                    })
                }
                _ => return Err(self.unexpected("a non-negative integer")),
            }
        } else {
            None
        };
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(Select {
            items,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
            span: kw.span.to(end),
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.at(&TokenKind::Star) {
            let t = self.next();
            return Ok(SelectItem::Wildcard(t.span));
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// `[AS] ident`, where an AS-less alias must not be a reserved word.
    fn parse_alias(&mut self) -> Result<Option<Ident>, SqlError> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident("an alias")?));
        }
        if let TokenKind::Ident(s) = &self.peek().kind {
            if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) {
                return Ok(Some(self.ident("an alias")?));
            }
        }
        Ok(None)
    }

    fn parse_from(&mut self) -> Result<From, SqlError> {
        let base = self.parse_table_factor()?;
        let mut joins = Vec::new();
        loop {
            let start = self.peek().span;
            if self.eat_kw("inner") {
                self.expect_kw("join")?;
            } else if !self.eat_kw("join") {
                break;
            }
            let table = self.parse_table_factor()?;
            self.expect_kw("on")?;
            let on = self.parse_expr()?;
            let span = start.to(on.span);
            joins.push(Join { table, on, span });
        }
        Ok(From { base, joins })
    }

    fn parse_table_factor(&mut self) -> Result<TableFactor, SqlError> {
        let name = self.ident("a table name")?;
        let alias = self.parse_alias()?;
        Ok(TableFactor { name, alias })
    }

    // ---- expressions ---------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, SqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::Binary {
                    left: Box::new(left),
                    op: BinaryOp::Or,
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::Binary {
                    left: Box::new(left),
                    op: BinaryOp::And,
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, SqlError> {
        if self.at_kw("not") {
            let kw = self.next();
            let inner = self.parse_not()?;
            let span = kw.span.to(inner.span);
            return Ok(Expr::new(ExprKind::Not(Box::new(inner)), span));
        }
        self.parse_comparison()
    }

    fn comparison_op(&self) -> Option<BinaryOp> {
        match self.peek().kind {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, SqlError> {
        let mut expr = self.parse_additive()?;
        loop {
            if let Some(op) = self.comparison_op() {
                self.next();
                let right = self.parse_additive()?;
                let span = expr.span.to(right.span);
                expr = Expr::new(
                    ExprKind::Binary {
                        left: Box::new(expr),
                        op,
                        right: Box::new(right),
                    },
                    span,
                );
                continue;
            }
            // `NOT` directly followed by BETWEEN / IN / LIKE negates the
            // postfix predicate.
            let negated = if self.at_kw("not") {
                let save = self.pos;
                self.next();
                if self.at_kw("between") || self.at_kw("in") || self.at_kw("like") {
                    true
                } else {
                    self.pos = save;
                    break;
                }
            } else {
                false
            };
            if self.eat_kw("between") {
                let low = self.parse_additive()?;
                self.expect_kw("and")?;
                let high = self.parse_additive()?;
                let span = expr.span.to(high.span);
                expr = Expr::new(
                    ExprKind::Between {
                        expr: Box::new(expr),
                        negated,
                        low: Box::new(low),
                        high: Box::new(high),
                    },
                    span,
                );
            } else if self.eat_kw("in") {
                self.expect(&TokenKind::LParen)?;
                let mut list = vec![self.parse_expr()?];
                while self.eat(&TokenKind::Comma) {
                    list.push(self.parse_expr()?);
                }
                let close = self.expect(&TokenKind::RParen)?;
                let span = expr.span.to(close.span);
                expr = Expr::new(
                    ExprKind::InList {
                        expr: Box::new(expr),
                        negated,
                        list,
                    },
                    span,
                );
            } else if self.eat_kw("like") {
                let pattern = self.parse_additive()?;
                let span = expr.span.to(pattern.span);
                expr = Expr::new(
                    ExprKind::Like {
                        expr: Box::new(expr),
                        negated,
                        pattern: Box::new(pattern),
                    },
                    span,
                );
            } else if self.at_kw("is") {
                let kw = self.next();
                let negated = self.eat_kw("not");
                let null_kw = self.expect_kw("null")?;
                let span = expr.span.to(kw.span).to(null_kw.span);
                expr = Expr::new(
                    ExprKind::IsNull {
                        expr: Box::new(expr),
                        negated,
                    },
                    span,
                );
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.next();
            let right = self.parse_multiplicative()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::Binary {
                    left: Box::new(left),
                    op,
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => break,
            };
            self.next();
            let right = self.parse_unary()?;
            let span = left.span.to(right.span);
            left = Expr::new(
                ExprKind::Binary {
                    left: Box::new(left),
                    op,
                    right: Box::new(right),
                },
                span,
            );
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, SqlError> {
        if self.at(&TokenKind::Plus) {
            self.next();
            return self.parse_unary();
        }
        if self.at(&TokenKind::Minus) {
            let minus = self.next();
            let inner = self.parse_unary()?;
            let span = minus.span.to(inner.span);
            // Fold `-literal`; otherwise multiply by -1 (preserves the
            // int/float typing rules of the engine).
            return Ok(match inner.kind {
                ExprKind::IntLit(v) => Expr::new(ExprKind::IntLit(-v), span),
                ExprKind::FloatLit(v) => Expr::new(ExprKind::FloatLit(-v), span),
                _ => Expr::new(
                    ExprKind::Binary {
                        left: Box::new(Expr::new(ExprKind::IntLit(-1), minus.span)),
                        op: BinaryOp::Mul,
                        right: Box::new(inner),
                    },
                    span,
                ),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, SqlError> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::LParen => {
                self.next();
                let inner = self.parse_expr()?;
                let close = self.expect(&TokenKind::RParen)?;
                Ok(Expr::new(inner.kind, t.span.to(close.span)))
            }
            TokenKind::Int(v) => {
                self.next();
                Ok(Expr::new(ExprKind::IntLit(*v), t.span))
            }
            TokenKind::Float(v) => {
                self.next();
                Ok(Expr::new(ExprKind::FloatLit(*v), t.span))
            }
            TokenKind::String(s) => {
                self.next();
                Ok(Expr::new(ExprKind::StringLit(s.clone()), t.span))
            }
            TokenKind::Ident(word) => {
                let lower = word.to_ascii_lowercase();
                match lower.as_str() {
                    "true" | "false" => {
                        self.next();
                        Ok(Expr::new(ExprKind::BoolLit(lower == "true"), t.span))
                    }
                    "null" => {
                        self.next();
                        Ok(Expr::new(ExprKind::NullLit, t.span))
                    }
                    "date" => {
                        self.next();
                        let lit = self.peek().clone();
                        match lit.kind {
                            TokenKind::String(s) => {
                                self.next();
                                Ok(Expr::new(ExprKind::DateLit(s), t.span.to(lit.span)))
                            }
                            _ => Err(self.unexpected("a date string like '1998-09-02'")),
                        }
                    }
                    "case" => self.parse_case(),
                    "extract" => self.parse_extract(),
                    _ => self.parse_column_or_function(),
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn parse_case(&mut self) -> Result<Expr, SqlError> {
        let kw = self.expect_kw("case")?;
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.parse_expr()?;
            self.expect_kw("then")?;
            let value = self.parse_expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let otherwise = if self.eat_kw("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let end = self.expect_kw("end")?;
        Ok(Expr::new(
            ExprKind::Case {
                branches,
                otherwise,
            },
            kw.span.to(end.span),
        ))
    }

    fn parse_extract(&mut self) -> Result<Expr, SqlError> {
        let kw = self.expect_kw("extract")?;
        self.expect(&TokenKind::LParen)?;
        self.expect_kw("year")?;
        self.expect_kw("from")?;
        let inner = self.parse_expr()?;
        let close = self.expect(&TokenKind::RParen)?;
        Ok(Expr::new(
            ExprKind::ExtractYear(Box::new(inner)),
            kw.span.to(close.span),
        ))
    }

    fn parse_column_or_function(&mut self) -> Result<Expr, SqlError> {
        let name = self.ident("a column name")?;
        // Function call.
        if self.at(&TokenKind::LParen) {
            self.next();
            if self.at(&TokenKind::Star) {
                self.next();
                let close = self.expect(&TokenKind::RParen)?;
                let span = name.span.to(close.span);
                return Ok(Expr::new(
                    ExprKind::Function {
                        name,
                        args: Vec::new(),
                        is_star: true,
                    },
                    span,
                ));
            }
            let mut args = Vec::new();
            if !self.at(&TokenKind::RParen) {
                args.push(self.parse_expr()?);
                while self.eat(&TokenKind::Comma) {
                    args.push(self.parse_expr()?);
                }
            }
            let close = self.expect(&TokenKind::RParen)?;
            let span = name.span.to(close.span);
            return Ok(Expr::new(
                ExprKind::Function {
                    name,
                    args,
                    is_star: false,
                },
                span,
            ));
        }
        // Qualified column.
        if self.eat(&TokenKind::Dot) {
            let col = self.ident("a column name")?;
            let span = name.span.to(col.span);
            return Ok(Expr::new(
                ExprKind::Column {
                    qualifier: Some(name),
                    name: col,
                },
                span,
            ));
        }
        let span = name.span;
        Ok(Expr::new(
            ExprKind::Column {
                qualifier: None,
                name,
            },
            span,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(sql: &str) -> Select {
        match parse_one(sql).unwrap() {
            Statement::Select(s) => *s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_full_select_shape() {
        let s = select(
            "SELECT l_returnflag AS flag, sum(l_quantity) qty, count(*) \
             FROM lineitem \
             WHERE l_shipdate <= DATE '1998-09-02' AND l_discount BETWEEN 0.05 AND 0.07 \
             GROUP BY l_returnflag HAVING count(*) > 1 \
             ORDER BY flag DESC, qty LIMIT 10;",
        );
        assert_eq!(s.items.len(), 3);
        assert!(s.selection.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].descending);
        assert!(!s.order_by[1].descending);
        assert_eq!(s.limit.unwrap().n, 10);
        match &s.items[0] {
            SelectItem::Expr { alias: Some(a), .. } => assert_eq!(a.value, "flag"),
            other => panic!("expected aliased item, got {other:?}"),
        }
    }

    #[test]
    fn parses_joins_left_deep() {
        let s = select(
            "SELECT * FROM customer c \
             INNER JOIN orders o ON c.c_custkey = o.o_custkey \
             JOIN lineitem ON o.o_orderkey = lineitem.l_orderkey",
        );
        assert_eq!(s.from.base.qualifier(), "c");
        assert_eq!(s.from.joins.len(), 2);
        assert_eq!(s.from.joins[0].table.qualifier(), "o");
        assert_eq!(s.from.joins[1].table.qualifier(), "lineitem");
    }

    #[test]
    fn precedence_or_binds_weakest() {
        let s = select("SELECT a FROM t WHERE a = 1 OR b = 2 AND NOT c = 3");
        let ExprKind::Binary { op, right, .. } = s.selection.unwrap().kind else {
            panic!("expected binary")
        };
        assert_eq!(op, BinaryOp::Or);
        let ExprKind::Binary { op, right, .. } = right.kind else {
            panic!("expected AND under OR")
        };
        assert_eq!(op, BinaryOp::And);
        assert!(matches!(right.kind, ExprKind::Not(_)));
    }

    #[test]
    fn arithmetic_precedence_and_parens() {
        let s = select("SELECT a + b * (c - 1) FROM t");
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        let ExprKind::Binary { op, right, .. } = &expr.kind else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Add);
        let ExprKind::Binary { op, .. } = &right.kind else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Mul);
    }

    #[test]
    fn postfix_predicates() {
        let s = select(
            "SELECT a FROM t WHERE a NOT IN (1, 2) AND b NOT LIKE 'x%' \
             AND c IS NOT NULL AND d NOT BETWEEN 1 AND 2 AND e IS NULL",
        );
        let mut found = Vec::new();
        fn walk(e: &Expr, found: &mut Vec<&'static str>) {
            match &e.kind {
                ExprKind::Binary { left, right, .. } => {
                    walk(left, found);
                    walk(right, found);
                }
                ExprKind::InList { negated, .. } => found.push(if *negated { "!in" } else { "in" }),
                ExprKind::Like { negated, .. } => {
                    found.push(if *negated { "!like" } else { "like" })
                }
                ExprKind::IsNull { negated, .. } => {
                    found.push(if *negated { "!null" } else { "null" })
                }
                ExprKind::Between { negated, .. } => {
                    found.push(if *negated { "!between" } else { "between" })
                }
                _ => {}
            }
        }
        walk(&s.selection.unwrap(), &mut found);
        assert_eq!(found, vec!["!in", "!like", "!null", "!between", "null"]);
    }

    #[test]
    fn unary_minus_folds_literals() {
        let s = select("SELECT -3, -2.5, -a FROM t");
        let kinds: Vec<&ExprKind> = s
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Expr { expr, .. } => &expr.kind,
                _ => panic!(),
            })
            .collect();
        assert_eq!(*kinds[0], ExprKind::IntLit(-3));
        assert_eq!(*kinds[1], ExprKind::FloatLit(-2.5));
        assert!(matches!(kinds[2], ExprKind::Binary { .. }));
    }

    #[test]
    fn case_extract_date() {
        let s = select(
            "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END, \
             EXTRACT(YEAR FROM d) FROM t WHERE d < DATE '1995-01-01'",
        );
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        assert!(matches!(expr.kind, ExprKind::Case { .. }));
        let SelectItem::Expr { expr, .. } = &s.items[1] else {
            panic!()
        };
        assert!(matches!(expr.kind, ExprKind::ExtractYear(_)));
        assert!(matches!(s.selection.unwrap().kind, ExprKind::Binary { .. }));
    }

    #[test]
    fn set_and_show_statements() {
        match parse_one("SET deadline_ms = 4000").unwrap() {
            Statement::Set { name, value, .. } => {
                assert_eq!(name.value, "deadline_ms");
                assert_eq!(value, "4000");
            }
            other => panic!("{other:?}"),
        }
        match parse_one("SET elasticity = auto:2500;").unwrap() {
            Statement::Set { value, .. } => assert_eq!(value, "auto:2500"),
            other => panic!("{other:?}"),
        }
        match parse_one("SET elasticity = 'auto:2500'").unwrap() {
            Statement::Set { value, .. } => assert_eq!(value, "auto:2500"),
            other => panic!("{other:?}"),
        }
        match parse_one("SHOW tables").unwrap() {
            Statement::Show { name, .. } => assert_eq!(name.value, "tables"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_recovery_reports_every_bad_statement() {
        let errs = parse_statements("SELECT FROM t; SELECT a FROM t; SELECT a FROM WHERE; SET;")
            .unwrap_err();
        assert_eq!(errs.len(), 3, "{errs:?}");
        // Spans point into the right statements.
        assert!(errs[0].span.start < 14);
        assert!(errs[1].span.start > 14);
        assert!(errs[2].span.start > errs[1].span.start);
    }

    #[test]
    fn spans_cover_the_reported_token() {
        let sql = "SELECT a FROM t WHERE a ><";
        let errs = parse_statements(sql).unwrap_err();
        assert_eq!(&sql[errs[0].span.start..errs[0].span.end], "<");
    }

    #[test]
    fn eof_mid_statement_is_an_error_not_a_hang() {
        assert!(parse_one("SELECT a FROM").is_err());
        assert!(parse_one("SELECT a FROM t WHERE").is_err());
        assert!(parse_one("SELECT CASE WHEN a THEN").is_err());
        assert!(parse_one("").is_err());
    }

    #[test]
    fn single_statement_enforced() {
        assert!(parse_one("SELECT a FROM t; SELECT b FROM t").is_err());
    }
}
