//! Hand-written SQL lexer.
//!
//! Produces a flat [`Token`] stream with byte [`Span`]s. Keywords are not
//! distinguished from identifiers here — the parser matches identifier text
//! case-insensitively, which keeps the token set small and lets keyword-ish
//! words (`year`, `date`) still be used as column names where unambiguous.

use crate::error::{Span, SqlError};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (original casing preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    String(String),
    Comma,
    LParen,
    RParen,
    Semicolon,
    Dot,
    Colon,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// End of input (always the final token).
    Eof,
}

impl TokenKind {
    /// Human-readable description for "expected X, found Y" messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("'{s}'"),
            TokenKind::Int(v) => format!("number {v}"),
            TokenKind::Float(v) => format!("number {v}"),
            TokenKind::String(_) => "string literal".to_string(),
            TokenKind::Comma => "','".to_string(),
            TokenKind::LParen => "'('".to_string(),
            TokenKind::RParen => "')'".to_string(),
            TokenKind::Semicolon => "';'".to_string(),
            TokenKind::Dot => "'.'".to_string(),
            TokenKind::Colon => "':'".to_string(),
            TokenKind::Star => "'*'".to_string(),
            TokenKind::Plus => "'+'".to_string(),
            TokenKind::Minus => "'-'".to_string(),
            TokenKind::Slash => "'/'".to_string(),
            TokenKind::Eq => "'='".to_string(),
            TokenKind::NotEq => "'<>'".to_string(),
            TokenKind::Lt => "'<'".to_string(),
            TokenKind::LtEq => "'<='".to_string(),
            TokenKind::Gt => "'>'".to_string(),
            TokenKind::GtEq => "'>='".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// Tokenizes `sql` into a vector ending with an [`TokenKind::Eof`] token.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // `-- line comment`.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(sql[start..i].to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        // Number: digits, optional fraction.
        if c.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes
                    .get(i + 1)
                    .map(|b| (*b as char).is_ascii_digit())
                    .unwrap_or(false)
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &sql[start..i];
            let span = Span::new(start, i);
            let kind = if is_float {
                TokenKind::Float(text.parse::<f64>().map_err(|_| {
                    SqlError::parse(format!("invalid numeric literal '{text}'"), span)
                })?)
            } else {
                TokenKind::Int(text.parse::<i64>().map_err(|_| {
                    SqlError::parse(format!("integer literal '{text}' out of range"), span)
                })?)
            };
            tokens.push(Token { kind, span });
            continue;
        }
        // String literal with '' escaping.
        if c == '\'' {
            let mut value = String::new();
            i += 1;
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(SqlError::parse(
                            "unterminated string literal",
                            Span::new(start, sql.len()),
                        ))
                    }
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                        value.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // Advance one full UTF-8 character.
                        let ch = sql[i..].chars().next().expect("in-bounds char");
                        value.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            tokens.push(Token {
                kind: TokenKind::String(value),
                span: Span::new(start, i),
            });
            continue;
        }
        // Operators and punctuation.
        let (kind, len) = match c {
            ',' => (TokenKind::Comma, 1),
            '(' => (TokenKind::LParen, 1),
            ')' => (TokenKind::RParen, 1),
            ';' => (TokenKind::Semicolon, 1),
            '.' => (TokenKind::Dot, 1),
            ':' => (TokenKind::Colon, 1),
            '*' => (TokenKind::Star, 1),
            '+' => (TokenKind::Plus, 1),
            '-' => (TokenKind::Minus, 1),
            '/' => (TokenKind::Slash, 1),
            '=' => (TokenKind::Eq, 1),
            '<' => match bytes.get(i + 1) {
                Some(b'=') => (TokenKind::LtEq, 2),
                Some(b'>') => (TokenKind::NotEq, 2),
                _ => (TokenKind::Lt, 1),
            },
            '>' => match bytes.get(i + 1) {
                Some(b'=') => (TokenKind::GtEq, 2),
                _ => (TokenKind::Gt, 1),
            },
            '!' => match bytes.get(i + 1) {
                Some(b'=') => (TokenKind::NotEq, 2),
                _ => {
                    return Err(SqlError::parse(
                        "unexpected character '!'",
                        Span::new(i, i + 1),
                    ))
                }
            },
            other => {
                return Err(SqlError::parse(
                    format!("unexpected character '{other}'"),
                    Span::new(i, i + other.len_utf8()),
                ))
            }
        };
        tokens.push(Token {
            kind,
            span: Span::new(i, i + len),
        });
        i += len;
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(sql.len(), sql.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_small_query() {
        let k = kinds("SELECT a, b FROM t WHERE a >= 1.5;");
        assert_eq!(k[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(k[4], TokenKind::Ident("FROM".into()));
        assert!(k.contains(&TokenKind::GtEq));
        assert!(k.contains(&TokenKind::Float(1.5)));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn string_escapes_and_comments() {
        let k = kinds("-- a comment\n'it''s' <> 'x'");
        assert_eq!(k[0], TokenKind::String("it's".into()));
        assert_eq!(k[1], TokenKind::NotEq);
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = tokenize("ab + cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }

    #[test]
    fn errors_carry_spans() {
        let e = tokenize("select 'oops").unwrap_err();
        assert!(e.message.contains("unterminated"));
        assert_eq!(e.span.start, 7);
        let e = tokenize("a ? b").unwrap_err();
        assert_eq!(e.span, Span::new(2, 3));
    }

    #[test]
    fn bang_eq_is_not_eq() {
        assert!(kinds("a != b").contains(&TokenKind::NotEq));
        assert!(tokenize("a ! b").is_err());
    }
}
