//! Semantic analysis: names → indices, AST → [`LogicalPlan`].
//!
//! The analyzer resolves table/column names against a [`Catalog`], lowers
//! AST expressions onto the engine's positional [`Expr`] surface, and
//! assembles the logical plan (scan → join → filter → aggregate → having →
//! project → order/limit). Type checking comes free from
//! [`Expr::data_type`] — the analyzer's job is to run it at every lowered
//! node and map failures back to the **source span** of the AST node that
//! produced them, so a type mismatch three joins deep still points at the
//! right characters of the query text.

use std::sync::Arc;

use accordion_data::schema::Schema;
use accordion_data::sort::SortKey;
use accordion_data::types::{parse_date32, Value};
use accordion_expr::agg::{AggKind, AggSpec};
use accordion_expr::scalar::{BinaryOp, Expr};
use accordion_plan::catalog::Catalog;
use accordion_plan::logical::{JoinType, LogicalPlan};

use crate::ast;
use crate::error::{Span, SqlError};

/// Lowers parsed [`ast::Select`] statements to logical plans.
pub struct Analyzer<'a> {
    catalog: &'a dyn Catalog,
    /// Original SQL text — used to derive output column names for
    /// unaliased expression items (`count(*)` keeps its spelling) and to
    /// match `ORDER BY` expressions against projected items.
    src: &'a str,
}

/// One resolvable column: where it came from and where it lives.
struct ScopeColumn {
    qualifier: String,
    name: String,
}

/// The flat namespace of the current FROM clause: columns of every joined
/// table, in plan output order.
struct Scope {
    columns: Vec<ScopeColumn>,
    schema: Schema,
}

impl Scope {
    fn resolve(
        &self,
        qualifier: Option<&ast::Ident>,
        name: &ast::Ident,
    ) -> Result<usize, SqlError> {
        let want_q = qualifier.map(|q| q.lower());
        let want_n = name.lower();
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name == want_n && want_q.as_deref().map(|q| c.qualifier == q).unwrap_or(true)
            })
            .map(|(i, _)| i)
            .collect();
        let span = qualifier.map(|q| q.span.to(name.span)).unwrap_or(name.span);
        let display = match qualifier {
            Some(q) => format!("{}.{}", q.value, name.value),
            None => name.value.clone(),
        };
        match matches.len() {
            0 => Err(SqlError::analysis(
                format!("unknown column '{display}'"),
                span,
            )),
            1 => Ok(matches[0]),
            _ => Err(SqlError::analysis(
                format!("ambiguous column '{display}' (qualify it with a table name)"),
                span,
            )),
        }
    }
}

/// A collected aggregate call, keyed for structural dedup.
struct CollectedAgg {
    kind: AggKind,
    /// Lowered input expression; `None` for `count(*)`.
    input: Option<Expr>,
    spec: AggSpec,
}

impl<'a> Analyzer<'a> {
    pub fn new(catalog: &'a dyn Catalog, src: &'a str) -> Analyzer<'a> {
        Analyzer { catalog, src }
    }

    /// Analyzes a SELECT into a validated logical plan.
    pub fn analyze(&self, select: &ast::Select) -> Result<Arc<LogicalPlan>, SqlError> {
        let (mut plan, scope) = self.build_from(&select.from)?;

        // WHERE.
        if let Some(pred) = &select.selection {
            let lowered = self.lower(pred, &scope)?;
            self.require_bool(&lowered, &scope.schema, pred.span, "WHERE")?;
            plan = Arc::new(LogicalPlan::Filter {
                input: plan,
                predicate: lowered,
            });
        }

        let is_agg = !select.group_by.is_empty()
            || select.items.iter().any(|i| match i {
                ast::SelectItem::Expr { expr, .. } => contains_function(expr),
                ast::SelectItem::Wildcard(_) => false,
            })
            || select
                .having
                .as_ref()
                .map(contains_function)
                .unwrap_or(false);

        let output = if is_agg {
            self.analyze_aggregate(select, plan, &scope)?
        } else {
            if let Some(h) = &select.having {
                return Err(SqlError::analysis(
                    "HAVING requires GROUP BY or an aggregate in the query",
                    h.span,
                ));
            }
            self.analyze_plain_projection(select, plan, &scope)?
        };

        self.apply_order_limit(select, output)
    }

    // ---- FROM / JOIN ---------------------------------------------------

    fn scan(&self, factor: &ast::TableFactor) -> Result<(Arc<LogicalPlan>, Scope), SqlError> {
        let t = self
            .catalog
            .table(&factor.name.value)
            .map_err(|e| SqlError::analysis(error_text(e), factor.name.span))?;
        let qualifier = factor.qualifier();
        let columns = t
            .schema
            .fields()
            .iter()
            .map(|f| ScopeColumn {
                qualifier: qualifier.clone(),
                name: f.name.to_ascii_lowercase(),
            })
            .collect();
        let schema = t.schema.as_ref().clone();
        let projection: Vec<usize> = (0..t.schema.len()).collect();
        let plan = Arc::new(LogicalPlan::TableScan {
            table: t.name,
            table_schema: t.schema,
            projection,
        });
        Ok((plan, Scope { columns, schema }))
    }

    fn build_from(&self, from: &ast::From) -> Result<(Arc<LogicalPlan>, Scope), SqlError> {
        let (mut plan, mut scope) = self.scan(&from.base)?;
        for join in &from.joins {
            let (right_plan, right_scope) = self.scan(&join.table)?;
            let rq = &right_scope.columns[0].qualifier;
            if scope.columns.iter().any(|c| &c.qualifier == rq) {
                return Err(SqlError::analysis(
                    format!("duplicate table alias '{rq}' (alias one of the occurrences)"),
                    join.table.name.span,
                ));
            }
            let left_width = scope.columns.len();
            // Combined scope: left columns then right columns — exactly the
            // join's output layout.
            let mut columns = scope.columns;
            columns.extend(right_scope.columns);
            let mut fields = scope.schema.fields().to_vec();
            fields.extend(right_scope.schema.fields().iter().cloned());
            let combined = Scope {
                columns,
                schema: Schema::new(fields),
            };

            // Split the ON condition into equi pairs and a residual filter.
            let mut equi: Vec<(usize, usize)> = Vec::new();
            let mut residual: Option<Expr> = None;
            for conjunct in split_conjuncts(&join.on) {
                let lowered = self.lower(conjunct, &combined)?;
                if let Expr::Binary { left, op, right } = &lowered {
                    if *op == BinaryOp::Eq {
                        if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref())
                        {
                            let (l, r) = if *a < left_width && *b >= left_width {
                                (*a, *b - left_width)
                            } else if *b < left_width && *a >= left_width {
                                (*b, *a - left_width)
                            } else {
                                return Err(SqlError::analysis(
                                    "join equality must compare a column from each side",
                                    conjunct.span,
                                ));
                            };
                            equi.push((l, r));
                            continue;
                        }
                    }
                }
                self.require_bool(&lowered, &combined.schema, conjunct.span, "JOIN ON")?;
                residual = Some(match residual {
                    None => lowered,
                    Some(prev) => Expr::and(prev, lowered),
                });
            }
            if equi.is_empty() {
                return Err(SqlError::analysis(
                    "join condition must contain at least one equality between the joined tables",
                    join.on.span,
                ));
            }

            let joined = Arc::new(LogicalPlan::Join {
                left: plan,
                right: right_plan,
                on: equi,
                join_type: JoinType::Inner,
            });
            joined
                .validate()
                .map_err(|e| SqlError::analysis(error_text(e), join.span))?;
            plan = match residual {
                Some(pred) => Arc::new(LogicalPlan::Filter {
                    input: joined,
                    predicate: pred,
                }),
                None => joined,
            };
            scope = combined;
        }
        Ok((plan, scope))
    }

    // ---- projection (no aggregation) -----------------------------------

    fn analyze_plain_projection(
        &self,
        select: &ast::Select,
        plan: Arc<LogicalPlan>,
        scope: &Scope,
    ) -> Result<Arc<LogicalPlan>, SqlError> {
        let mut exprs: Vec<(Expr, String)> = Vec::new();
        for item in &select.items {
            match item {
                ast::SelectItem::Wildcard(_) => {
                    for (i, f) in scope.schema.fields().iter().enumerate() {
                        exprs.push((Expr::Column(i), f.name.clone()));
                    }
                }
                ast::SelectItem::Expr { expr, alias } => {
                    let lowered = self.lower(expr, scope)?;
                    exprs.push((lowered, self.output_name(expr, alias)));
                }
            }
        }
        let projected = Arc::new(LogicalPlan::Project { input: plan, exprs });
        projected
            .validate()
            .map_err(|e| SqlError::analysis(error_text(e), select.span))?;
        Ok(projected)
    }

    // ---- aggregation ---------------------------------------------------

    fn analyze_aggregate(
        &self,
        select: &ast::Select,
        plan: Arc<LogicalPlan>,
        scope: &Scope,
    ) -> Result<Arc<LogicalPlan>, SqlError> {
        // Resolve GROUP BY items to input column indices. A positional
        // integer refers to a SELECT item (1-based, `GROUP BY 1, 2`).
        let mut group_indices: Vec<usize> = Vec::new();
        for g in &select.group_by {
            let target = match &g.kind {
                ast::ExprKind::IntLit(k) => {
                    let idx = *k;
                    if idx < 1 || idx as usize > select.items.len() {
                        return Err(SqlError::analysis(
                            format!(
                                "GROUP BY position {idx} is out of range (1..={})",
                                select.items.len()
                            ),
                            g.span,
                        ));
                    }
                    match &select.items[idx as usize - 1] {
                        ast::SelectItem::Expr { expr, .. } => expr,
                        ast::SelectItem::Wildcard(_) => {
                            return Err(SqlError::analysis(
                                "GROUP BY position cannot refer to '*'",
                                g.span,
                            ))
                        }
                    }
                }
                _ => g,
            };
            let lowered = self.lower(target, scope)?;
            match lowered {
                Expr::Column(i) => group_indices.push(i),
                _ => {
                    return Err(SqlError::analysis(
                        "GROUP BY supports plain columns (or SELECT item positions)",
                        g.span,
                    ))
                }
            }
        }

        // Collect aggregate calls from the SELECT list and HAVING, deduping
        // structurally identical calls.
        let mut aggs: Vec<CollectedAgg> = Vec::new();
        for item in &select.items {
            match item {
                ast::SelectItem::Wildcard(span) => {
                    return Err(SqlError::analysis(
                        "SELECT * cannot be combined with GROUP BY or aggregates",
                        *span,
                    ))
                }
                ast::SelectItem::Expr { expr, .. } => self.collect_aggs(expr, scope, &mut aggs)?,
            }
        }
        if let Some(h) = &select.having {
            self.collect_aggs(h, scope, &mut aggs)?;
        }
        if aggs.is_empty() && select.group_by.is_empty() {
            return Err(SqlError::analysis(
                "HAVING requires GROUP BY or an aggregate in the query",
                select
                    .having
                    .as_ref()
                    .map(|h| h.span)
                    .unwrap_or(select.span),
            ));
        }

        let agg_plan = Arc::new(LogicalPlan::Aggregate {
            input: plan,
            group_by: group_indices.clone(),
            aggs: aggs.iter().map(|a| a.spec.clone()).collect(),
        });
        agg_plan
            .validate()
            .map_err(|e| SqlError::analysis(error_text(e), select.span))?;
        let agg_schema = agg_plan.schema();

        // Project SELECT items over the aggregate's output.
        let mut exprs: Vec<(Expr, String)> = Vec::new();
        for item in &select.items {
            let ast::SelectItem::Expr { expr, alias } = item else {
                unreachable!("wildcard rejected above")
            };
            let lowered = self.lower_post_agg(expr, scope, &group_indices, &aggs)?;
            exprs.push((lowered, self.output_name(expr, alias)));
        }

        // HAVING filters between the aggregate and the projection.
        let filtered = match &select.having {
            Some(h) => {
                let lowered = self.lower_post_agg(h, scope, &group_indices, &aggs)?;
                self.require_bool(&lowered, &agg_schema, h.span, "HAVING")?;
                Arc::new(LogicalPlan::Filter {
                    input: agg_plan,
                    predicate: lowered,
                })
            }
            None => agg_plan,
        };

        let projected = Arc::new(LogicalPlan::Project {
            input: filtered,
            exprs,
        });
        projected
            .validate()
            .map_err(|e| SqlError::analysis(error_text(e), select.span))?;
        Ok(projected)
    }

    /// Recursively collects aggregate function calls lowered against the
    /// pre-aggregation scope.
    fn collect_aggs(
        &self,
        e: &ast::Expr,
        scope: &Scope,
        out: &mut Vec<CollectedAgg>,
    ) -> Result<(), SqlError> {
        match &e.kind {
            ast::ExprKind::Function {
                name,
                args,
                is_star,
            } => {
                let kind = agg_kind(name)?;
                let input = if *is_star {
                    if kind != AggKind::Count {
                        return Err(SqlError::analysis(
                            format!("{}(*) is not supported — only count(*)", name.value),
                            e.span,
                        ));
                    }
                    None
                } else {
                    if args.len() != 1 {
                        return Err(SqlError::analysis(
                            format!(
                                "{} takes exactly one argument, got {}",
                                name.value,
                                args.len()
                            ),
                            e.span,
                        ));
                    }
                    if contains_function(&args[0]) {
                        return Err(SqlError::analysis(
                            "aggregate calls cannot be nested",
                            args[0].span,
                        ));
                    }
                    Some((self.lower(&args[0], scope)?, args[0].span))
                };
                if out
                    .iter()
                    .any(|a| a.kind == kind && a.input == input.as_ref().map(|(e, _)| e.clone()))
                {
                    return Ok(());
                }
                let internal = format!("__agg{}", out.len());
                let spec = match &input {
                    None => AggSpec::count_star(internal),
                    Some((expr, span)) => {
                        let dt = expr
                            .data_type(&scope.schema)
                            .map_err(|err| SqlError::analysis(error_text(err), *span))?;
                        AggSpec::new(kind, expr.clone(), dt, internal)
                    }
                };
                out.push(CollectedAgg {
                    kind,
                    input: input.map(|(e, _)| e),
                    spec,
                });
                Ok(())
            }
            _ => {
                for child in child_exprs(e) {
                    self.collect_aggs(child, scope, out)?;
                }
                Ok(())
            }
        }
    }

    /// Lowers an expression in the post-aggregation namespace: group-by
    /// columns and aggregate calls are the only inputs that exist.
    fn lower_post_agg(
        &self,
        e: &ast::Expr,
        pre: &Scope,
        group_indices: &[usize],
        aggs: &[CollectedAgg],
    ) -> Result<Expr, SqlError> {
        match &e.kind {
            ast::ExprKind::Function {
                name,
                args,
                is_star,
            } => {
                let kind = agg_kind(name)?;
                let input = if *is_star {
                    None
                } else {
                    Some(self.lower(&args[0], pre)?)
                };
                let pos = aggs
                    .iter()
                    .position(|a| a.kind == kind && a.input == input)
                    .expect("aggregate collected in the first pass");
                Ok(Expr::Column(group_indices.len() + pos))
            }
            ast::ExprKind::Column { qualifier, name } => {
                let idx = pre.resolve(qualifier.as_ref(), name)?;
                match group_indices.iter().position(|g| *g == idx) {
                    Some(pos) => Ok(Expr::Column(pos)),
                    None => Err(SqlError::analysis(
                        format!(
                            "column '{}' must appear in GROUP BY or inside an aggregate",
                            name.value
                        ),
                        e.span,
                    )),
                }
            }
            _ => self.lower_generic(e, &|child| {
                self.lower_post_agg(child, pre, group_indices, aggs)
            }),
        }
    }

    // ---- ORDER BY / LIMIT ----------------------------------------------

    fn apply_order_limit(
        &self,
        select: &ast::Select,
        plan: Arc<LogicalPlan>,
    ) -> Result<Arc<LogicalPlan>, SqlError> {
        if select.order_by.is_empty() {
            return Ok(match select.limit {
                Some(l) => Arc::new(LogicalPlan::Limit {
                    input: plan,
                    n: l.n as usize,
                }),
                None => plan,
            });
        }
        let out_schema = plan.schema();
        let mut keys = Vec::new();
        for item in &select.order_by {
            let column = self.resolve_order_target(&item.expr, &out_schema)?;
            keys.push(SortKey {
                column,
                descending: item.descending,
            });
        }
        // ORDER BY without LIMIT: a Top-N over every row. The accumulator
        // heap grows lazily, so an unbounded N costs nothing extra.
        let n = select.limit.map(|l| l.n as usize).unwrap_or(usize::MAX);
        Ok(Arc::new(LogicalPlan::TopN {
            input: plan,
            keys,
            n,
        }))
    }

    /// `ORDER BY` targets an output column: by 1-based position, by output
    /// name (alias or derived), or by spelling the projected expression.
    fn resolve_order_target(&self, e: &ast::Expr, out: &Schema) -> Result<usize, SqlError> {
        if let ast::ExprKind::IntLit(k) = &e.kind {
            if *k >= 1 && (*k as usize) <= out.len() {
                return Ok(*k as usize - 1);
            }
            return Err(SqlError::analysis(
                format!("ORDER BY position {k} is out of range (1..={})", out.len()),
                e.span,
            ));
        }
        let text = self.text(e.span);
        let candidates = [
            text.trim().to_ascii_lowercase(),
            match &e.kind {
                ast::ExprKind::Column { name, .. } => name.lower(),
                _ => String::new(),
            },
        ];
        for (i, f) in out.fields().iter().enumerate() {
            let fname = f.name.to_ascii_lowercase();
            if candidates.iter().any(|c| !c.is_empty() && *c == fname) {
                return Ok(i);
            }
        }
        Err(SqlError::analysis(
            format!(
                "ORDER BY must name an output column (one of: {})",
                out.fields()
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            e.span,
        ))
    }

    // ---- expression lowering -------------------------------------------

    /// Lowers a scalar expression against `scope`, type-checking every node
    /// and mapping failures to that node's span.
    fn lower(&self, e: &ast::Expr, scope: &Scope) -> Result<Expr, SqlError> {
        match &e.kind {
            ast::ExprKind::Column { qualifier, name } => {
                Ok(Expr::Column(scope.resolve(qualifier.as_ref(), name)?))
            }
            ast::ExprKind::Function { name, .. } => Err(SqlError::analysis(
                format!("aggregate function '{}' is not allowed here", name.value),
                e.span,
            )),
            _ => {
                let lowered = self.lower_generic(e, &|child| self.lower(child, scope))?;
                self.type_check(&lowered, &scope.schema, e.span)?;
                Ok(lowered)
            }
        }
    }

    /// Structure-preserving lowering for the variants that don't touch the
    /// namespace; children are lowered by `rec` (so this is shared between
    /// the plain and post-aggregate contexts).
    fn lower_generic(
        &self,
        e: &ast::Expr,
        rec: &dyn Fn(&ast::Expr) -> Result<Expr, SqlError>,
    ) -> Result<Expr, SqlError> {
        match &e.kind {
            ast::ExprKind::Column { .. } | ast::ExprKind::Function { .. } => {
                unreachable!("handled by the calling context")
            }
            ast::ExprKind::IntLit(v) => Ok(Expr::lit_i64(*v)),
            ast::ExprKind::FloatLit(v) => Ok(Expr::lit_f64(*v)),
            ast::ExprKind::StringLit(s) => Ok(Expr::lit_str(s)),
            ast::ExprKind::BoolLit(b) => Ok(Expr::Literal(Value::Bool(*b))),
            ast::ExprKind::NullLit => Ok(Expr::Literal(Value::Null)),
            ast::ExprKind::DateLit(s) => {
                let days = parse_date32(s).ok_or_else(|| {
                    SqlError::analysis(
                        format!("invalid date literal '{s}' (expected YYYY-MM-DD)"),
                        e.span,
                    )
                })?;
                Ok(Expr::lit_date(days))
            }
            ast::ExprKind::Binary { left, op, right } => {
                Ok(Expr::binary(rec(left)?, *op, rec(right)?))
            }
            ast::ExprKind::Not(inner) => Ok(Expr::Not(Arc::new(rec(inner)?))),
            ast::ExprKind::Between {
                expr,
                negated,
                low,
                high,
            } => {
                let b = Expr::between(rec(expr)?, rec(low)?, rec(high)?);
                Ok(if *negated { Expr::Not(Arc::new(b)) } else { b })
            }
            ast::ExprKind::InList {
                expr,
                negated,
                list,
            } => {
                let mut values = Vec::with_capacity(list.len());
                for item in list {
                    match rec(item)? {
                        Expr::Literal(v) => values.push(v),
                        _ => {
                            return Err(SqlError::analysis(
                                "IN list values must be literals",
                                item.span,
                            ))
                        }
                    }
                }
                let l = Expr::InList {
                    expr: Arc::new(rec(expr)?),
                    list: values,
                };
                Ok(if *negated { Expr::Not(Arc::new(l)) } else { l })
            }
            ast::ExprKind::Like {
                expr,
                negated,
                pattern,
            } => {
                let pat = match &pattern.kind {
                    ast::ExprKind::StringLit(s) => s.clone(),
                    _ => {
                        return Err(SqlError::analysis(
                            "LIKE pattern must be a string literal",
                            pattern.span,
                        ))
                    }
                };
                let l = Expr::Like {
                    expr: Arc::new(rec(expr)?),
                    pattern: pat,
                };
                Ok(if *negated { Expr::Not(Arc::new(l)) } else { l })
            }
            ast::ExprKind::IsNull { expr, negated } => {
                let t = Expr::IsNull(Arc::new(rec(expr)?));
                Ok(if *negated { Expr::Not(Arc::new(t)) } else { t })
            }
            ast::ExprKind::Case {
                branches,
                otherwise,
            } => {
                let lowered: Vec<(Expr, Expr)> = branches
                    .iter()
                    .map(|(c, v)| Ok((rec(c)?, rec(v)?)))
                    .collect::<Result<_, SqlError>>()?;
                let els = match otherwise {
                    Some(o) => Some(Arc::new(rec(o)?)),
                    None => None,
                };
                Ok(Expr::Case {
                    branches: lowered,
                    otherwise: els,
                })
            }
            ast::ExprKind::ExtractYear(inner) => Ok(Expr::ExtractYear(Arc::new(rec(inner)?))),
        }
    }

    /// Runs the engine type checker on a lowered node, attributing failures
    /// to `span`. Bare NULL literals are exempt (they type only in context).
    fn type_check(&self, lowered: &Expr, schema: &Schema, span: Span) -> Result<(), SqlError> {
        if matches!(lowered, Expr::Literal(Value::Null)) {
            return Ok(());
        }
        lowered
            .data_type(schema)
            .map_err(|err| SqlError::analysis(error_text(err), span))?;
        Ok(())
    }

    fn require_bool(
        &self,
        lowered: &Expr,
        schema: &Schema,
        span: Span,
        clause: &str,
    ) -> Result<(), SqlError> {
        let dt = lowered
            .data_type(schema)
            .map_err(|err| SqlError::analysis(error_text(err), span))?;
        if dt != accordion_data::types::DataType::Bool {
            return Err(SqlError::analysis(
                format!("{clause} condition must be a boolean, got {dt}"),
                span,
            ));
        }
        Ok(())
    }

    /// Output column name for a projection item: the alias if given, the
    /// column name for a bare column, otherwise the expression's spelling.
    fn output_name(&self, expr: &ast::Expr, alias: &Option<ast::Ident>) -> String {
        if let Some(a) = alias {
            return a.value.clone();
        }
        if let ast::ExprKind::Column { name, .. } = &expr.kind {
            return name.value.clone();
        }
        self.text(expr.span).trim().to_string()
    }

    fn text(&self, span: Span) -> &str {
        let start = span.start.min(self.src.len());
        let end = span.end.clamp(start, self.src.len());
        &self.src[start..end]
    }
}

/// Flattens a conjunction (`a AND b AND c`) into its conjuncts.
fn split_conjuncts(e: &ast::Expr) -> Vec<&ast::Expr> {
    match &e.kind {
        ast::ExprKind::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        _ => vec![e],
    }
}

/// True when the expression tree contains a function call (aggregate).
fn contains_function(e: &ast::Expr) -> bool {
    if matches!(e.kind, ast::ExprKind::Function { .. }) {
        return true;
    }
    child_exprs(e).into_iter().any(contains_function)
}

/// Immediate child expressions of a node.
fn child_exprs(e: &ast::Expr) -> Vec<&ast::Expr> {
    match &e.kind {
        ast::ExprKind::Binary { left, right, .. } => vec![left, right],
        ast::ExprKind::Not(inner) | ast::ExprKind::ExtractYear(inner) => vec![inner],
        ast::ExprKind::Between {
            expr, low, high, ..
        } => vec![expr, low, high],
        ast::ExprKind::InList { expr, list, .. } => {
            let mut v: Vec<&ast::Expr> = vec![expr];
            v.extend(list.iter());
            v
        }
        ast::ExprKind::Like { expr, pattern, .. } => vec![expr, pattern],
        ast::ExprKind::IsNull { expr, .. } => vec![expr],
        ast::ExprKind::Case {
            branches,
            otherwise,
        } => {
            let mut v: Vec<&ast::Expr> = Vec::new();
            for (c, val) in branches {
                v.push(c);
                v.push(val);
            }
            if let Some(o) = otherwise {
                v.push(o);
            }
            v
        }
        ast::ExprKind::Function { args, .. } => args.iter().collect(),
        _ => Vec::new(),
    }
}

/// Maps a function name to its aggregate kind.
fn agg_kind(name: &ast::Ident) -> Result<AggKind, SqlError> {
    match name.lower().as_str() {
        "count" => Ok(AggKind::Count),
        "sum" => Ok(AggKind::Sum),
        "avg" => Ok(AggKind::Avg),
        "min" => Ok(AggKind::Min),
        "max" => Ok(AggKind::Max),
        other => Err(SqlError::analysis(
            format!("unknown function '{other}' (supported: count, sum, avg, min, max)"),
            name.span,
        )),
    }
}

/// Message text of an engine error, stripped of the variant wrapper.
fn error_text(e: accordion_common::AccordionError) -> String {
    use accordion_common::AccordionError as E;
    match e {
        E::Parse(m)
        | E::Analysis(m)
        | E::Plan(m)
        | E::Execution(m)
        | E::Storage(m)
        | E::Io(m)
        | E::Internal(m) => m,
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::schema::Field;
    use accordion_data::types::DataType;
    use accordion_plan::catalog::MemoryCatalog;

    use crate::parser::parse_one;

    fn catalog() -> MemoryCatalog {
        let mut c = MemoryCatalog::new();
        c.register(
            "sales",
            Schema::shared(vec![
                Field::new("region", DataType::Utf8),
                Field::new("item_id", DataType::Int64),
                Field::new("qty", DataType::Int64),
                Field::new("price", DataType::Float64),
                Field::new("sold_on", DataType::Date32),
            ]),
        );
        c.register(
            "items",
            Schema::shared(vec![
                Field::new("item_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
        );
        c
    }

    fn plan(sql: &str) -> Arc<LogicalPlan> {
        try_plan(sql).unwrap()
    }

    fn try_plan(sql: &str) -> Result<Arc<LogicalPlan>, SqlError> {
        let c = catalog();
        let stmt = parse_one(sql).unwrap();
        let crate::ast::Statement::Select(sel) = stmt else {
            panic!("expected SELECT")
        };
        Analyzer::new(&c, sql).analyze(&sel)
    }

    #[test]
    fn lowers_scan_filter_project() {
        let p = plan("SELECT region, qty * 2 AS double_qty FROM sales WHERE price > 1.5");
        let s = p.schema();
        assert_eq!(s.field(0).name, "region");
        assert_eq!(s.field(1).name, "double_qty");
        assert_eq!(s.field(1).data_type, DataType::Int64);
    }

    #[test]
    fn wildcard_expands_in_order() {
        let p = plan("SELECT * FROM sales");
        assert_eq!(p.schema().len(), 5);
        assert_eq!(p.schema().field(4).name, "sold_on");
    }

    #[test]
    fn group_by_with_positional_and_having() {
        let p = plan(
            "SELECT region, sum(qty) AS total, count(*) AS n FROM sales \
             GROUP BY 1 HAVING count(*) > 2",
        );
        let s = p.schema();
        assert_eq!(s.field(0).name, "region");
        assert_eq!(s.field(1).name, "total");
        assert_eq!(s.field(2).name, "n");
        // Filter (HAVING) sits between Aggregate and Project.
        let LogicalPlan::Project { input, .. } = p.as_ref() else {
            panic!("expected Project on top")
        };
        assert!(matches!(input.as_ref(), LogicalPlan::Filter { .. }));
    }

    #[test]
    fn aggregate_dedups_identical_calls() {
        let p = plan(
            "SELECT region, count(*) AS a, count(*) AS b FROM sales \
             GROUP BY region HAVING count(*) > 0",
        );
        // Find the Aggregate node: it must contain exactly one agg spec.
        fn find_agg(p: &LogicalPlan) -> Option<usize> {
            match p {
                LogicalPlan::Aggregate { aggs, .. } => Some(aggs.len()),
                LogicalPlan::Project { input, .. }
                | LogicalPlan::Filter { input, .. }
                | LogicalPlan::TopN { input, .. }
                | LogicalPlan::Limit { input, .. } => find_agg(input),
                _ => None,
            }
        }
        assert_eq!(find_agg(&p), Some(1));
    }

    #[test]
    fn join_splits_equi_and_residual() {
        let p = plan(
            "SELECT name, qty FROM sales s INNER JOIN items i \
             ON s.item_id = i.item_id AND i.name <> 'junk'",
        );
        // Expect Project → Filter(residual) → Join.
        let LogicalPlan::Project { input, .. } = p.as_ref() else {
            panic!("Project on top")
        };
        let LogicalPlan::Filter { input, .. } = input.as_ref() else {
            panic!("residual Filter, got {input:?}")
        };
        let LogicalPlan::Join { on, .. } = input.as_ref() else {
            panic!("Join under Filter")
        };
        assert_eq!(on, &vec![(1usize, 0usize)]);
    }

    #[test]
    fn join_without_equality_is_rejected() {
        let e = try_plan("SELECT qty FROM sales s JOIN items i ON s.qty > i.item_id").unwrap_err();
        assert!(e.message.contains("at least one equality"), "{e:?}");
    }

    #[test]
    fn order_by_name_position_and_spelling() {
        let p = plan("SELECT region, qty FROM sales ORDER BY qty DESC, 1");
        let LogicalPlan::TopN { keys, n, .. } = p.as_ref() else {
            panic!("TopN")
        };
        assert_eq!(*n, usize::MAX);
        assert_eq!(keys[0].column, 1);
        assert!(keys[0].descending);
        assert_eq!(keys[1].column, 0);

        let p = plan(
            "SELECT region, count(*) FROM sales GROUP BY region ORDER BY count(*) DESC LIMIT 3",
        );
        let LogicalPlan::TopN { keys, n, .. } = p.as_ref() else {
            panic!("TopN")
        };
        assert_eq!(*n, 3);
        assert_eq!(keys[0].column, 1);
    }

    #[test]
    fn limit_without_order_is_plain_limit() {
        let p = plan("SELECT qty FROM sales LIMIT 7");
        assert!(matches!(p.as_ref(), LogicalPlan::Limit { n: 7, .. }));
    }

    #[test]
    fn unknown_names_carry_spans() {
        let sql = "SELECT qty FROM nope";
        let e = try_plan(sql).unwrap_err();
        assert_eq!(&sql[e.span.start..e.span.end], "nope");

        let sql = "SELECT mystery FROM sales";
        let e = try_plan(sql).unwrap_err();
        assert_eq!(&sql[e.span.start..e.span.end], "mystery");
        assert!(e.message.contains("unknown column"));
    }

    #[test]
    fn type_mismatch_points_at_the_offending_node() {
        let sql = "SELECT qty FROM sales WHERE qty > 'banana' AND price > 1.0";
        let e = try_plan(sql).unwrap_err();
        assert!(e.message.contains("cannot compare"), "{e:?}");
        assert_eq!(&sql[e.span.start..e.span.end], "qty > 'banana'");
    }

    #[test]
    fn ambiguous_column_is_rejected() {
        let e = try_plan("SELECT item_id FROM sales s JOIN items i ON s.item_id = i.item_id")
            .unwrap_err();
        assert!(e.message.contains("ambiguous"), "{e:?}");
    }

    #[test]
    fn bare_column_outside_group_by_is_rejected() {
        let e = try_plan("SELECT region, qty FROM sales GROUP BY region").unwrap_err();
        assert!(e.message.contains("must appear in GROUP BY"), "{e:?}");
    }

    #[test]
    fn date_literals_validated_with_spans() {
        let sql = "SELECT qty FROM sales WHERE sold_on < DATE '1998-13-99'";
        let e = try_plan(sql).unwrap_err();
        assert_eq!(&sql[e.span.start..e.span.end], "DATE '1998-13-99'");
    }

    #[test]
    fn in_list_requires_literals_and_like_requires_string() {
        let e = try_plan("SELECT qty FROM sales WHERE qty IN (1, qty)").unwrap_err();
        assert!(e.message.contains("literals"), "{e:?}");
        let e = try_plan("SELECT qty FROM sales WHERE region LIKE region").unwrap_err();
        assert!(e.message.contains("string literal"), "{e:?}");
    }

    #[test]
    fn where_must_be_boolean() {
        let e = try_plan("SELECT qty FROM sales WHERE qty + 1").unwrap_err();
        assert!(e.message.contains("must be a boolean"), "{e:?}");
    }

    #[test]
    fn unknown_function_rejected() {
        let e = try_plan("SELECT median(qty) FROM sales GROUP BY region").unwrap_err();
        assert!(e.message.contains("unknown function"), "{e:?}");
    }

    #[test]
    fn between_in_like_case_extract_lower() {
        let p = plan(
            "SELECT CASE WHEN qty BETWEEN 1 AND 5 THEN 'low' ELSE 'high' END AS bucket, \
             EXTRACT(YEAR FROM sold_on) AS yr \
             FROM sales WHERE region IN ('na', 'eu') AND region LIKE 'n%' \
             AND region IS NOT NULL AND NOT qty = 4",
        );
        assert_eq!(p.schema().field(0).name, "bucket");
        assert_eq!(p.schema().field(1).data_type, DataType::Int64);
    }
}
