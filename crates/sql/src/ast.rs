//! Typed, span-carrying SQL AST.
//!
//! Every node records the byte [`Span`] of the source text it was parsed
//! from, so the analyzer can attach precise locations to name-resolution
//! and type errors. The expression surface deliberately mirrors what the
//! engine's `accordion_expr::scalar::Expr` can evaluate — the parser
//! accepts nothing the executor could not run.

use std::fmt;

use accordion_expr::scalar::BinaryOp;

use crate::error::Span;

/// An identifier with its source span. `value` preserves original casing;
/// comparisons in the analyzer are case-insensitive.
#[derive(Debug, Clone, PartialEq)]
pub struct Ident {
    pub value: String,
    pub span: Span,
}

impl Ident {
    /// Case-folded form used for name resolution.
    pub fn lower(&self) -> String {
        self.value.to_ascii_lowercase()
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.value)
    }
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Box<Select>),
    /// `SET name = value` — session variable assignment. The value is kept
    /// as raw text (quotes stripped for string literals) because the set of
    /// variables and their syntaxes belongs to the server session layer.
    Set {
        name: Ident,
        value: String,
        value_span: Span,
        span: Span,
    },
    /// `SHOW TABLES` or `SHOW name`.
    Show {
        name: Ident,
        span: Span,
    },
}

impl Statement {
    /// The source span covering the whole statement (without the
    /// terminating `;`).
    pub fn span(&self) -> Span {
        match self {
            Statement::Select(s) => s.span,
            Statement::Set { span, .. } | Statement::Show { span, .. } => *span,
        }
    }
}

/// A full `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub items: Vec<SelectItem>,
    pub from: From,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Limit>,
    pub span: Span,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard(Span),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<Ident> },
}

/// `FROM base [INNER JOIN t ON cond]*` — left-deep inner joins only.
#[derive(Debug, Clone, PartialEq)]
pub struct From {
    pub base: TableFactor,
    pub joins: Vec<Join>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableFactor {
    pub name: Ident,
    pub alias: Option<Ident>,
}

impl TableFactor {
    /// The name columns of this table are qualified by: the alias if given,
    /// the table name otherwise.
    pub fn qualifier(&self) -> String {
        self.alias
            .as_ref()
            .map(|a| a.lower())
            .unwrap_or_else(|| self.name.lower())
    }
}

/// `INNER JOIN table ON condition`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableFactor,
    pub on: Expr,
    pub span: Span,
}

/// `ORDER BY expr [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub descending: bool,
}

/// `LIMIT n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Limit {
    pub n: u64,
    pub span: Span,
}

/// A spanned expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }
}

/// Expression variants — mirrors the engine's evaluable surface.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `[qualifier.]name` column reference.
    Column {
        qualifier: Option<Ident>,
        name: Ident,
    },
    IntLit(i64),
    FloatLit(f64),
    StringLit(String),
    /// `DATE 'YYYY-MM-DD'` — the literal text is validated by the analyzer
    /// so the error lands on this node's span.
    DateLit(String),
    BoolLit(bool),
    NullLit,
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    Between {
        expr: Box<Expr>,
        negated: bool,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    InList {
        expr: Box<Expr>,
        negated: bool,
        list: Vec<Expr>,
    },
    Like {
        expr: Box<Expr>,
        negated: bool,
        pattern: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Case {
        branches: Vec<(Expr, Expr)>,
        otherwise: Option<Box<Expr>>,
    },
    /// `EXTRACT(YEAR FROM expr)`.
    ExtractYear(Box<Expr>),
    /// `name(args)` or `name(*)` — the analyzer decides whether this is an
    /// aggregate call (count/sum/avg/min/max) and rejects anything else.
    Function {
        name: Ident,
        args: Vec<Expr>,
        is_star: bool,
    },
}
