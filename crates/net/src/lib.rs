//! Simulated data-plane network: the streaming shuffle exchange.
//!
//! This crate is the push/pull boundary between concurrently running tasks
//! — the decoupling the paper's intra-query elasticity is built on. Stages
//! no longer hand fully materialized page maps to their consumers; data
//! streams page-by-page through exchange endpoints:
//!
//! * [`exchange`] — the [`ExchangeWriter`]/[`ExchangeReader`] traits
//!   (page-granular, bounded, blocking, with `Page::End` as the in-band
//!   termination signal) and the [`ExchangeRegistry`] that wires each
//!   stage's output to its consumer tasks under a [`RoutePolicy`]
//!   (gather/broadcast, hash, round-robin).
//! * [`buffer`] — the paper's elastic buffers (§4.2.2): per-(task,
//!   partition) [`ElasticQueue`]s that start at **one page** and grow on
//!   consumer-side demand up to the `NetworkConfig` limit, blocking
//!   producers for backpressure. Waits yield the scheduler's compute-slot
//!   semaphore, keeping bounded buffers deadlock-free on a fixed pool.
//! * [`nic`] — the token-bucket [`NicModel`] charging every page transfer
//!   against `NetworkConfig`'s bandwidth cap and link latency.
//! * [`tcp`] — the real multi-node transport: a per-node
//!   [`PageServer`] ingesting length-prefixed binary page frames (the
//!   `accordion_data::wire` codec) into the local queues, and the
//!   [`PageSink`]s writers open toward remote consumer slots, with a
//!   credit window mirroring the elastic-buffer backpressure.
//!
//! The wiring of a query is declared as an [`ExchangeTopology`]: one
//! [`EdgeSpec`] per stage output naming where every consumer slot lives
//! ([`ConsumerLoc`]), so the same registry serves single-process execution
//! (all slots local) and distributed execution (remote slots reached over
//! TCP) without the producing or consuming tasks knowing the difference.
//!
//! Error handling is cooperative: the scheduler poisons the registry on the
//! first task failure, which wakes and fails every endpoint so sibling
//! tasks unwind with the original error; in a distributed run the poison is
//! broadcast over control channels to every peer node.
//!
//! [`ExchangeWriter`]: exchange::ExchangeWriter
//! [`ExchangeReader`]: exchange::ExchangeReader
//! [`ExchangeRegistry`]: exchange::ExchangeRegistry
//! [`ExchangeTopology`]: exchange::ExchangeTopology
//! [`EdgeSpec`]: exchange::EdgeSpec
//! [`ConsumerLoc`]: exchange::ConsumerLoc
//! [`RoutePolicy`]: exchange::RoutePolicy
//! [`ElasticQueue`]: buffer::ElasticQueue
//! [`NicModel`]: nic::NicModel
//! [`PageServer`]: tcp::PageServer
//! [`PageSink`]: tcp::PageSink

pub mod buffer;
pub mod exchange;
pub mod nic;
pub mod tcp;

pub use buffer::{ElasticQueue, ExchangeLimits};
pub use exchange::{
    route_page, ConsumerLoc, EdgeSpec, ExchangeReader, ExchangeRegistry, ExchangeStats,
    ExchangeTopology, ExchangeWriter, RoutePolicy,
};
pub use nic::{NicModel, NodeNic, TokenBucket};
pub use tcp::{PageServer, PageSink, TcpExchangeReader, TcpExchangeWriter};
