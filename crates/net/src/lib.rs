//! Simulated data-plane network: the streaming shuffle exchange.
//!
//! This crate is the push/pull boundary between concurrently running tasks
//! — the decoupling the paper's intra-query elasticity is built on. Stages
//! no longer hand fully materialized page maps to their consumers; data
//! streams page-by-page through exchange endpoints:
//!
//! * [`exchange`] — the [`ExchangeWriter`]/[`ExchangeReader`] traits
//!   (page-granular, bounded, blocking, with `Page::End` as the in-band
//!   termination signal) and the [`ExchangeRegistry`] that wires each
//!   stage's output to its consumer tasks under a [`RoutePolicy`]
//!   (gather/broadcast, hash, round-robin).
//! * [`buffer`] — the paper's elastic buffers (§4.2.2): per-(task,
//!   partition) [`ElasticQueue`]s that start at **one page** and grow on
//!   consumer-side demand up to the `NetworkConfig` limit, blocking
//!   producers for backpressure. Waits yield the scheduler's compute-slot
//!   semaphore, keeping bounded buffers deadlock-free on a fixed pool.
//! * [`nic`] — the token-bucket [`NicModel`] charging every page transfer
//!   against `NetworkConfig`'s bandwidth cap and link latency.
//!
//! Error handling is cooperative: the scheduler poisons the registry on the
//! first task failure, which wakes and fails every endpoint so sibling
//! tasks unwind with the original error.
//!
//! [`ExchangeWriter`]: exchange::ExchangeWriter
//! [`ExchangeReader`]: exchange::ExchangeReader
//! [`ExchangeRegistry`]: exchange::ExchangeRegistry
//! [`RoutePolicy`]: exchange::RoutePolicy
//! [`ElasticQueue`]: buffer::ElasticQueue
//! [`NicModel`]: nic::NicModel

pub mod buffer;
pub mod exchange;
pub mod nic;

pub use buffer::{ElasticQueue, ExchangeLimits};
pub use exchange::{
    route_page, ExchangeReader, ExchangeRegistry, ExchangeStats, ExchangeWriter, RoutePolicy,
};
pub use nic::{NicModel, NodeNic, TokenBucket};
