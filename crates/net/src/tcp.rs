//! Real TCP transport for the exchange: length-prefixed page frames.
//!
//! The in-process exchange moves `Arc<DataPage>`s between threads; this
//! module moves the same pages between **processes**, using the versioned
//! binary codec behind [`Page::encode`] / [`Page::decode`]. One
//! [`PageServer`] per node accepts connections and feeds incoming pages
//! into the node's local [`ExchangeRegistry`] queues; a [`PageSink`] is the
//! producer-side connection a writer opens toward one remote node for one
//! exchange edge.
//!
//! ## Framing
//!
//! Every message is `[len: u32 LE][kind: u8][payload]`, `len` counting the
//! kind byte plus payload. Kinds:
//!
//! | kind | name    | payload                               | direction |
//! |------|---------|---------------------------------------|-----------|
//! | 0    | HELLO   | query `u64`, stage `u32`              | → server  |
//! | 1    | DATA    | consumer `u32`, encoded data page     | → server  |
//! | 2    | FINISH  | encoded end page (ACK-ed)             | → server  |
//! | 3    | CREDIT  | grant `u32`                           | ← server  |
//! | 4    | ERR     | UTF-8 message                         | ← server  |
//! | 5    | ADDPROD | stage `u32`, producers `u32`          | → server  |
//! | 6    | POISON  | UTF-8 message                         | → server  |
//! | 7    | ACK     | (empty)                               | ← server  |
//!
//! A connection greets with HELLO; `stage == u32::MAX` marks it a
//! **control channel** (ADDPROD/POISON broadcasts between registries),
//! anything else binds the connection to that exchange edge for DATA and
//! FINISH frames.
//!
//! ## Backpressure: credits mirroring the elastic buffers
//!
//! A sink starts with `initial_buffer_pages` credits and spends one per
//! DATA frame; the server grants credits back only after the frame's page
//! has been **pushed into the destination queue** — a push blocked on a
//! full [`ElasticQueue`](crate::buffer::ElasticQueue) delays the grant, so
//! remote producers feel exactly the local backpressure. When a consumer
//! pull doubles a queue's capacity, the next grant carries the growth as
//! extra credits, so the sink's window tracks the §4.2.2 doubling
//! discipline. A sink blocked waiting for credit yields the scheduler's
//! compute-slot semaphore, like every other exchange wait.
//!
//! ## Errors
//!
//! A poisoned queue makes the server answer ERR instead of a grant; the
//! sink surfaces it on its next send, failing the producing task, which
//! poisons its own registry — and poison broadcasts travel the control
//! channels, so every node's tasks unwind with the original error.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use accordion_common::config::NetworkConfig;
use accordion_common::sync::{Mutex, Semaphore};
use accordion_common::{AccordionError, Result};
use accordion_data::page::{DataPage, EndReason, Page};

use crate::exchange::{ExchangeReader, ExchangeRegistry, ExchangeWriter, RoutePolicy};

/// HELLO stage id marking a control channel.
pub const CONTROL_STAGE: u32 = u32::MAX;

/// Frame size guard: no legitimate frame exceeds this (pages are bounded
/// by `page_rows`; this only rejects garbage prefixes).
const MAX_FRAME: usize = 1 << 30;

const KIND_HELLO: u8 = 0;
const KIND_DATA: u8 = 1;
const KIND_FINISH: u8 = 2;
const KIND_CREDIT: u8 = 3;
const KIND_ERR: u8 = 4;
const KIND_ADDPROD: u8 = 5;
const KIND_POISON: u8 = 6;
const KIND_ACK: u8 = 7;

fn net_err(msg: impl Into<String>) -> AccordionError {
    AccordionError::Io(msg.into())
}

/// Writes one `[len][kind][payload]` frame.
fn write_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> Result<()> {
    let len = (payload.len() + 1) as u32;
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(payload);
    stream.write_all(&buf)?;
    Ok(())
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> Result<Option<(u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(net_err(format!("invalid frame length {len}")));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let kind = body[0];
    body.remove(0);
    Ok(Some((kind, body)))
}

fn connect(addr: &str, network: &NetworkConfig) -> Result<TcpStream> {
    let timeout = Duration::from_millis(network.connect_timeout_ms.max(1));
    let sock: SocketAddr = addr
        .parse()
        .map_err(|e| net_err(format!("bad exchange address {addr:?}: {e}")))?;
    let stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| net_err(format!("connect to {addr} failed: {e}")))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

fn hello_payload(query: u64, stage: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(12);
    p.extend_from_slice(&query.to_le_bytes());
    p.extend_from_slice(&stage.to_le_bytes());
    p
}

/// Producer-side connection toward one remote node for one exchange edge.
///
/// Not `Sync`: each writer owns its sinks. Dropping the sink without
/// [`PageSink::finish`] closes the stream; the remote side treats a missing
/// FINISH as the connection's contribution simply never having existed
/// (writer accounting travels via FINISH frames only).
pub struct PageSink {
    stream: TcpStream,
    credit: usize,
    finished: bool,
}

impl PageSink {
    /// Connects to the [`PageServer`] at `addr` and binds the connection to
    /// `(query, stage)`.
    pub fn connect(
        addr: &str,
        query: u64,
        stage: u32,
        network: &NetworkConfig,
    ) -> Result<PageSink> {
        let mut stream = connect(addr, network)?;
        write_frame(&mut stream, KIND_HELLO, &hello_payload(query, stage))?;
        Ok(PageSink {
            stream,
            credit: network.initial_buffer_pages.max(1),
            finished: false,
        })
    }

    /// Sends one data page to consumer slot `consumer`, blocking (and
    /// yielding `gate`) while the credit window is exhausted.
    pub fn send_data(
        &mut self,
        consumer: u32,
        page: &Arc<DataPage>,
        gate: Option<&Semaphore>,
    ) -> Result<()> {
        if self.finished {
            return Err(AccordionError::Internal(
                "page sink used after finish".into(),
            ));
        }
        if self.credit == 0 {
            self.wait_credit(gate)?;
        }
        self.credit -= 1;
        let mut payload = consumer.to_le_bytes().to_vec();
        payload.extend_from_slice(&Page::Data(page.clone()).encode());
        write_frame(&mut self.stream, KIND_DATA, &payload)
    }

    /// Sends the end-of-producer frame: the server applies it to every
    /// queue of the edge on its node and acknowledges. Idempotent.
    ///
    /// The round trip is load-bearing twice over: it guarantees the remote
    /// writer accounting landed before the producer exits, and it drains any
    /// surplus CREDIT frames still in flight — closing a socket with unread
    /// data would RST the connection and could discard the FINISH frame on
    /// the server side, leaving the edge's consumers waiting forever.
    pub fn finish(&mut self, reason: EndReason) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        write_frame(&mut self.stream, KIND_FINISH, &Page::end(reason).encode())?;
        self.stream.flush()?;
        loop {
            match read_frame(&mut self.stream)? {
                Some((KIND_ACK, _)) => return Ok(()),
                // Stale grants from pages the server pushed after our last
                // credit wait: consume and discard.
                Some((KIND_CREDIT, _)) => {}
                Some((KIND_ERR, p)) => {
                    return Err(AccordionError::Execution(
                        String::from_utf8_lossy(&p).into_owned(),
                    ))
                }
                Some((kind, _)) => {
                    return Err(net_err(format!("unexpected frame kind {kind} in finish")))
                }
                None => return Err(net_err("exchange peer closed before acknowledging finish")),
            }
        }
    }

    /// Blocks until the server grants credit, failing on an ERR frame. The
    /// compute-slot `gate` is yielded for the duration of the wait so a
    /// stalled remote consumer cannot wedge a one-slot pool.
    fn wait_credit(&mut self, gate: Option<&Semaphore>) -> Result<()> {
        if let Some(g) = gate {
            g.release();
        }
        let outcome = loop {
            match read_frame(&mut self.stream) {
                Ok(Some((KIND_CREDIT, p))) if p.len() == 4 => {
                    self.credit += u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize;
                    if self.credit > 0 {
                        break Ok(());
                    }
                }
                Ok(Some((KIND_ERR, p))) => {
                    break Err(AccordionError::Execution(
                        String::from_utf8_lossy(&p).into_owned(),
                    ))
                }
                Ok(Some((kind, _))) => {
                    break Err(net_err(format!("unexpected frame kind {kind} on sink")))
                }
                Ok(None) => break Err(net_err("exchange peer closed while awaiting credit")),
                Err(e) => break Err(e),
            }
        };
        if let Some(g) = gate {
            g.acquire();
        }
        outcome
    }
}

/// Control connection between two registries of one query: carries the
/// producer-set growth and poison broadcasts of the elasticity protocol.
pub(crate) struct ControlLink {
    stream: TcpStream,
}

impl ControlLink {
    pub(crate) fn connect(addr: &str, query: u64, network: &NetworkConfig) -> Result<ControlLink> {
        let mut stream = connect(addr, network)?;
        // Control round-trips are tiny; a dead peer should fail the query,
        // not hang the controller.
        stream.set_read_timeout(Some(Duration::from_millis(
            network.connect_timeout_ms.max(1),
        )))?;
        write_frame(
            &mut stream,
            KIND_HELLO,
            &hello_payload(query, CONTROL_STAGE),
        )?;
        Ok(ControlLink { stream })
    }

    /// Synchronously extends `stage`'s producer count by `n` on the peer:
    /// returns only after the peer acknowledged, so a grown task's pages
    /// can never reach a node that does not yet account for its writer.
    pub(crate) fn add_producers(&mut self, stage: u32, n: u32) -> Result<()> {
        let mut p = stage.to_le_bytes().to_vec();
        p.extend_from_slice(&n.to_le_bytes());
        write_frame(&mut self.stream, KIND_ADDPROD, &p)?;
        match read_frame(&mut self.stream)? {
            Some((KIND_ACK, _)) => Ok(()),
            Some((KIND_ERR, p)) => Err(AccordionError::Execution(
                String::from_utf8_lossy(&p).into_owned(),
            )),
            Some((kind, _)) => Err(net_err(format!("unexpected control reply kind {kind}"))),
            None => Err(net_err("control peer closed before acknowledging")),
        }
    }

    /// Fire-and-forget poison broadcast (the peer has no useful reply: it
    /// is failing the query either way).
    pub(crate) fn poison(&mut self, message: &str) -> Result<()> {
        write_frame(&mut self.stream, KIND_POISON, message.as_bytes())?;
        self.stream.flush()?;
        Ok(())
    }
}

/// Per-node exchange ingress: accepts [`PageSink`] and control
/// connections and feeds their frames into the registries of the queries
/// registered on this node.
pub struct PageServer {
    addr: SocketAddr,
    registries: Mutex<HashMap<u64, Arc<ExchangeRegistry>>>,
    shutdown: AtomicBool,
}

impl PageServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// the accept loop on a background thread.
    pub fn bind(addr: &str) -> Result<Arc<PageServer>> {
        let listener = TcpListener::bind(addr)?;
        let server = Arc::new(PageServer {
            addr: listener.local_addr()?,
            registries: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });
        let accept = server.clone();
        std::thread::Builder::new()
            .name("page-server-accept".into())
            .spawn(move || accept.accept_loop(listener))?;
        Ok(server)
    }

    /// The bound address, in `host:port` form — what peers connect to.
    pub fn local_addr(&self) -> String {
        self.addr.to_string()
    }

    /// Makes `query`'s registry reachable for incoming frames. Must happen
    /// on every node **before any node's tasks start** (the two-phase
    /// wire/start handshake of the distributed scheduler guarantees it).
    pub fn register(&self, query: u64, registry: Arc<ExchangeRegistry>) {
        self.registries.lock().insert(query, registry);
    }

    /// Drops `query`'s registry; later frames for it are answered with ERR.
    pub fn unregister(&self, query: u64) {
        self.registries.lock().remove(&query);
    }

    /// Stops accepting new connections (existing ones run out on EOF).
    pub fn shutdown(self: &Arc<Self>) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    fn accept_loop(self: Arc<Self>, listener: TcpListener) {
        for stream in listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = stream else { continue };
            let server = self.clone();
            let _ = std::thread::Builder::new()
                .name("page-server-conn".into())
                .spawn(move || {
                    let _ = server.serve_conn(stream);
                });
        }
    }

    fn serve_conn(&self, mut stream: TcpStream) -> Result<()> {
        stream.set_nodelay(true)?;
        let Some((KIND_HELLO, p)) = read_frame(&mut stream)? else {
            return Err(net_err("exchange connection did not greet"));
        };
        if p.len() != 12 {
            return Err(net_err("malformed HELLO"));
        }
        let query = u64::from_le_bytes(p[0..8].try_into().expect("8 bytes"));
        let stage = u32::from_le_bytes(p[8..12].try_into().expect("4 bytes"));
        let Some(registry) = self.registries.lock().get(&query).cloned() else {
            let msg = format!("query {query} is not registered on this node");
            let _ = write_frame(&mut stream, KIND_ERR, msg.as_bytes());
            return Err(net_err(msg));
        };
        if stage == CONTROL_STAGE {
            self.serve_control(stream, &registry)
        } else {
            self.serve_data(stream, &registry, stage)
        }
    }

    /// Ingress loop of one producer connection bound to `stage`'s edge.
    fn serve_data(
        &self,
        mut stream: TcpStream,
        registry: &Arc<ExchangeRegistry>,
        stage: u32,
    ) -> Result<()> {
        let queues = registry.edge_queues(stage)?;
        // Credit baseline: what the sink assumes its initial window is.
        let mut last_caps: Vec<usize> = queues.iter().map(|q| q.capacity()).collect();
        let mut errored = false;
        while let Some((kind, payload)) = read_frame(&mut stream)? {
            match kind {
                KIND_DATA => {
                    if payload.len() < 4 {
                        return Err(net_err("malformed DATA frame"));
                    }
                    let consumer =
                        u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
                    let page = match Page::decode(&payload[4..]) {
                        Ok(Page::Data(p)) => p,
                        Ok(Page::End(_)) => {
                            return Err(net_err("end page in DATA frame (FINISH expected)"))
                        }
                        Err(e) => {
                            // A corrupt page is unrecoverable for the query:
                            // fail it everywhere, not just on this stream.
                            registry.poison(e.clone());
                            let _ = write_frame(&mut stream, KIND_ERR, e.to_string().as_bytes());
                            return Err(e);
                        }
                    };
                    let Some(q) = queues.get(consumer) else {
                        return Err(net_err(format!(
                            "stage {stage} has {} queues, consumer {consumer} addressed",
                            queues.len()
                        )));
                    };
                    // The push provides the backpressure: no credit is
                    // granted until the page is accepted. A closed queue
                    // (consumer satisfied a LIMIT) accepts-and-drops; a
                    // poisoned one reports the failure once.
                    if let Err(e) = q.push(page, None) {
                        if !errored {
                            errored = true;
                            write_frame(&mut stream, KIND_ERR, e.to_string().as_bytes())?;
                        }
                    }
                    // Grant the spent credit back, plus any capacity the
                    // consumer's pulls grew meanwhile (§4.2.2 doubling).
                    let cap = q.capacity();
                    let extra = if cap == usize::MAX {
                        0
                    } else {
                        cap.saturating_sub(last_caps[consumer])
                    };
                    last_caps[consumer] = last_caps[consumer].max(cap);
                    let grant = 1u32.saturating_add(extra as u32);
                    write_frame(&mut stream, KIND_CREDIT, &grant.to_le_bytes())?;
                }
                KIND_FINISH => {
                    let reason = match Page::decode(&payload) {
                        Ok(Page::End(e)) => e.reason,
                        Ok(Page::Data(_)) => {
                            return Err(net_err("data page in FINISH frame"));
                        }
                        Err(e) => {
                            registry.poison(e.clone());
                            return Err(e);
                        }
                    };
                    for q in queues.iter() {
                        q.writer_finished(reason);
                    }
                    write_frame(&mut stream, KIND_ACK, &[])?;
                }
                other => return Err(net_err(format!("unexpected frame kind {other} on edge"))),
            }
        }
        Ok(())
    }

    /// Ingress loop of one control connection.
    fn serve_control(&self, mut stream: TcpStream, registry: &Arc<ExchangeRegistry>) -> Result<()> {
        while let Some((kind, payload)) = read_frame(&mut stream)? {
            match kind {
                KIND_ADDPROD => {
                    if payload.len() != 8 {
                        return Err(net_err("malformed ADDPROD frame"));
                    }
                    let stage = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
                    let n = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes"));
                    match registry.add_producers_local(stage, n) {
                        Ok(()) => write_frame(&mut stream, KIND_ACK, &[])?,
                        Err(e) => write_frame(&mut stream, KIND_ERR, e.to_string().as_bytes())?,
                    }
                }
                KIND_POISON => {
                    registry.poison_local(AccordionError::Execution(
                        String::from_utf8_lossy(&payload).into_owned(),
                    ));
                }
                other => {
                    return Err(net_err(format!(
                        "unexpected frame kind {other} on control channel"
                    )))
                }
            }
        }
        Ok(())
    }
}

/// [`ExchangeWriter`] over TCP: routes every page by `policy` across the
/// consumer slots of one edge **on one remote node**. This is the
/// standalone transport endpoint; the registry's own writers use the same
/// [`PageSink`] machinery per remote slot while keeping node-local slots on
/// the shared-memory fast path.
pub struct TcpExchangeWriter {
    sink: PageSink,
    policy: RoutePolicy,
    consumers: usize,
    rr_next: usize,
    gate: Option<Arc<Semaphore>>,
}

impl TcpExchangeWriter {
    /// Connects to the remote [`PageServer`] and binds `(query, stage)`.
    pub fn connect(
        addr: &str,
        query: u64,
        stage: u32,
        policy: RoutePolicy,
        consumers: u32,
        network: &NetworkConfig,
        gate: Option<Arc<Semaphore>>,
    ) -> Result<TcpExchangeWriter> {
        Ok(TcpExchangeWriter {
            sink: PageSink::connect(addr, query, stage, network)?,
            policy,
            consumers: consumers.max(1) as usize,
            rr_next: 0,
            gate,
        })
    }
}

impl ExchangeWriter for TcpExchangeWriter {
    fn push(&mut self, page: Page) -> Result<()> {
        let page = match page {
            Page::End(e) => return self.sink.finish(e.reason),
            Page::Data(p) => p,
        };
        let TcpExchangeWriter {
            sink,
            policy,
            consumers,
            rr_next,
            gate,
        } = self;
        let gate = gate.as_deref();
        crate::exchange::route_page(&page, policy, rr_next, *consumers, &mut |slot, piece| {
            sink.send_data(slot as u32, &piece, gate)
        })
    }
}

/// [`ExchangeReader`] over TCP: pulls from the local queue that the node's
/// [`PageServer`] ingress feeds. Remote delivery always lands in local
/// elastic buffers first — the reader side of the transport is exactly the
/// local reader of a TCP-fed edge, so consumers cannot tell (and need not
/// care) which transport produced their pages.
pub struct TcpExchangeReader {
    inner: Box<dyn ExchangeReader>,
}

impl TcpExchangeReader {
    pub fn new(
        registry: &Arc<ExchangeRegistry>,
        stage: u32,
        consumer: u32,
        gate: Option<Arc<Semaphore>>,
    ) -> Result<TcpExchangeReader> {
        Ok(TcpExchangeReader {
            inner: registry.reader(stage, consumer, gate)?,
        })
    }
}

impl ExchangeReader for TcpExchangeReader {
    fn pull(&mut self) -> Result<Page> {
        self.inner.pull()
    }
}
