//! Simulated NIC: token-bucket bandwidth models plus fixed link latency.
//!
//! Every page a writer pushes through an exchange is charged against the
//! bucket before it lands in the destination buffer, so a configured
//! bandwidth cap (`NetworkConfig::nic_bandwidth_bytes_per_sec`) translates
//! into real wall-clock backpressure on the producing task — the same shape
//! of throttling the paper's 10 Gbps NICs impose. The default configuration
//! is unlimited, in which case every charge is free and the model adds no
//! overhead.
//!
//! Two levels of budget exist:
//!
//! * [`NodeNic`] owns the **node-level** bucket shared by every query the
//!   executor runs (`nic_bandwidth_bytes_per_sec`).
//! * [`NodeNic::for_query`] mints a per-query [`NicModel`] that optionally
//!   carves a private bucket out of the node budget
//!   (`nic_per_query_bytes_per_sec`), so one heavy shuffle saturates its
//!   own carve-out before it can drain the shared fabric.
//!
//! A charge that has to sleep (bandwidth debt or link latency) **yields the
//! caller's compute slot** for the duration — the same discipline exchange
//! backpressure waits follow — so a throttled writer on a 1-slot pool
//! cannot starve every other task of CPU while it waits on simulated wire
//! time.

use std::sync::Arc;
use std::time::{Duration, Instant};

use accordion_common::config::NetworkConfig;
use accordion_common::sync::{Mutex, Semaphore};

#[derive(Debug)]
struct Bucket {
    /// Token balance in bytes; may go negative (debt is slept off).
    available: f64,
    last_refill: Instant,
}

/// Token bucket refilled at a fixed byte rate, capped at `burst` bytes.
#[derive(Debug)]
pub struct TokenBucket {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    bucket: Mutex<Bucket>,
}

impl TokenBucket {
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: usize) -> Self {
        TokenBucket {
            rate_bytes_per_sec: rate_bytes_per_sec.max(1) as f64,
            burst_bytes: burst_bytes.max(1) as f64,
            bucket: Mutex::new(Bucket {
                available: burst_bytes.max(1) as f64,
                last_refill: Instant::now(),
            }),
        }
    }

    /// Charges `bytes` tokens and returns how long the caller must wait for
    /// the bucket to cover them (zero when the balance stays non-negative).
    /// The debt is recorded immediately, so concurrent debits serialize
    /// their waits correctly even though nobody sleeps under the lock.
    pub fn debit(&self, bytes: usize) -> Duration {
        let mut b = self.bucket.lock();
        let now = Instant::now();
        b.available += now.duration_since(b.last_refill).as_secs_f64() * self.rate_bytes_per_sec;
        b.available = b.available.min(self.burst_bytes);
        b.last_refill = now;
        b.available -= bytes as f64;
        if b.available < 0.0 {
            Duration::from_secs_f64(-b.available / self.rate_bytes_per_sec)
        } else {
            Duration::ZERO
        }
    }

    /// Charges `bytes` tokens, sleeping until the bucket can cover them.
    pub fn acquire(&self, bytes: usize) {
        let wait = self.debit(bytes);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }
}

/// The per-query network model: an optional private bandwidth bucket (the
/// query's carve-out), an optional reference to the node-level bucket every
/// query shares, and a per-page one-way latency.
#[derive(Debug, Default)]
pub struct NicModel {
    bucket: Option<TokenBucket>,
    node: Option<Arc<TokenBucket>>,
    latency: Duration,
}

impl NicModel {
    /// Single-query model straight from config — the node budget becomes
    /// this query's private bucket. Equivalent to
    /// `NodeNic::new(config).for_query(config)` when only one query runs.
    pub fn new(config: &NetworkConfig) -> Self {
        NicModel {
            bucket: config
                .nic_bandwidth_bytes_per_sec
                .map(|rate| TokenBucket::new(rate, config.max_response_bytes)),
            node: None,
            latency: Duration::from_micros(config.link_latency_us),
        }
    }

    /// A model that charges nothing (shared-memory exchange).
    pub fn unlimited() -> Self {
        NicModel::default()
    }

    /// Charges the transfer of one `bytes`-sized page: per-query bandwidth
    /// tokens, then the node-level bucket, then link latency. Any wait is
    /// slept with the compute slot in `gate` released, so simulated wire
    /// time never pins a worker thread the way real send syscalls don't.
    pub fn charge(&self, bytes: usize, gate: Option<&Semaphore>) {
        let mut wait = Duration::ZERO;
        if let Some(bucket) = &self.bucket {
            wait += bucket.debit(bytes);
        }
        if let Some(node) = &self.node {
            wait += node.debit(bytes);
        }
        wait += self.latency;
        if wait.is_zero() {
            return;
        }
        if let Some(gate) = gate {
            gate.release();
        }
        std::thread::sleep(wait);
        if let Some(gate) = gate {
            gate.acquire();
        }
    }
}

/// The node's NIC: the bandwidth budget shared by every query a
/// `QueryExecutor` runs. Construct once per executor and mint one
/// [`NicModel`] per query with [`NodeNic::for_query`].
#[derive(Debug, Default)]
pub struct NodeNic {
    node_bucket: Option<Arc<TokenBucket>>,
}

impl NodeNic {
    pub fn new(config: &NetworkConfig) -> Self {
        NodeNic {
            node_bucket: config
                .nic_bandwidth_bytes_per_sec
                .map(|rate| Arc::new(TokenBucket::new(rate, config.max_response_bytes))),
        }
    }

    /// Mints the per-query model: a private carve-out bucket when
    /// `nic_per_query_bytes_per_sec` is set, always backed by the shared
    /// node bucket (when one exists) and the configured link latency.
    pub fn for_query(&self, config: &NetworkConfig) -> NicModel {
        NicModel {
            bucket: config
                .nic_per_query_bytes_per_sec
                .map(|rate| TokenBucket::new(rate, config.max_response_bytes)),
            node: self.node_bucket.clone(),
            latency: Duration::from_micros(config.link_latency_us),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_charges_are_free() {
        let nic = NicModel::unlimited();
        let start = Instant::now();
        for _ in 0..1000 {
            nic.charge(1 << 20, None);
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn bandwidth_cap_throttles() {
        // 1 MB/s, zero burst headroom beyond 1 KB: pushing 20 KB past the
        // initial burst must take ≥ ~19 ms.
        let bucket = TokenBucket::new(1_000_000, 1_000);
        let start = Instant::now();
        for _ in 0..20 {
            bucket.acquire(1_000);
        }
        assert!(
            start.elapsed() >= Duration::from_millis(15),
            "elapsed {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn latency_applies_per_page() {
        let nic = NicModel::new(&NetworkConfig {
            link_latency_us: 2_000,
            ..NetworkConfig::unlimited()
        });
        let start = Instant::now();
        nic.charge(1, None);
        nic.charge(1, None);
        assert!(start.elapsed() >= Duration::from_millis(3));
    }

    #[test]
    fn charge_yields_the_compute_slot_while_sleeping() {
        // One slot, a charge that must sleep ~20 ms: a second thread must
        // be able to grab the slot *during* the sleep, not after it.
        let nic = Arc::new(NicModel::new(&NetworkConfig {
            link_latency_us: 20_000,
            ..NetworkConfig::unlimited()
        }));
        let gate = Arc::new(Semaphore::new(1));
        gate.acquire();
        let (nic2, gate2) = (nic.clone(), gate.clone());
        let sleeper = std::thread::spawn(move || nic2.charge(1, Some(&gate2)));
        let start = Instant::now();
        gate.acquire(); // must succeed mid-sleep
        let got_slot_after = start.elapsed();
        gate.release();
        sleeper.join().unwrap();
        assert!(
            got_slot_after < Duration::from_millis(15),
            "slot was held through the NIC sleep ({got_slot_after:?})"
        );
    }

    #[test]
    fn per_query_carveout_charges_both_buckets() {
        let config = NetworkConfig {
            nic_bandwidth_bytes_per_sec: Some(1_000_000),
            nic_per_query_bytes_per_sec: Some(100_000),
            max_response_bytes: 1_000,
            ..NetworkConfig::unlimited()
        };
        let node = NodeNic::new(&config);
        let nic = node.for_query(&config);
        // 3 KB past a 1 KB burst at 100 KB/s ≈ ≥20 ms from the carve-out
        // alone (the node bucket at 1 MB/s adds a little more).
        let start = Instant::now();
        for _ in 0..3 {
            nic.charge(1_000, None);
        }
        assert!(
            start.elapsed() >= Duration::from_millis(15),
            "carve-out did not throttle ({:?})",
            start.elapsed()
        );
    }

    #[test]
    fn node_bucket_is_shared_across_queries() {
        let config = NetworkConfig {
            nic_bandwidth_bytes_per_sec: Some(1_000_000),
            max_response_bytes: 1_000,
            ..NetworkConfig::unlimited()
        };
        let node = NodeNic::new(&config);
        let a = node.for_query(&config);
        let b = node.for_query(&config);
        // Query A burns the node burst; query B must then be throttled even
        // though B itself never charged before.
        a.charge(1_000, None);
        let start = Instant::now();
        for _ in 0..10 {
            b.charge(1_000, None);
        }
        assert!(
            start.elapsed() >= Duration::from_millis(8),
            "node budget not shared ({:?})",
            start.elapsed()
        );
    }
}
