//! Simulated NIC: a token-bucket bandwidth model plus fixed link latency.
//!
//! Every page a writer pushes through an exchange is charged against the
//! bucket before it lands in the destination buffer, so a configured
//! bandwidth cap (`NetworkConfig::nic_bandwidth_bytes_per_sec`) translates
//! into real wall-clock backpressure on the producing task — the same shape
//! of throttling the paper's 10 Gbps NICs impose. The default configuration
//! is unlimited, in which case every charge is free and the model adds no
//! overhead.

use std::time::{Duration, Instant};

use accordion_common::config::NetworkConfig;
use accordion_common::sync::Mutex;

#[derive(Debug)]
struct Bucket {
    /// Token balance in bytes; may go negative (debt is slept off).
    available: f64,
    last_refill: Instant,
}

/// Token bucket refilled at a fixed byte rate, capped at `burst` bytes.
#[derive(Debug)]
pub struct TokenBucket {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    bucket: Mutex<Bucket>,
}

impl TokenBucket {
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: usize) -> Self {
        TokenBucket {
            rate_bytes_per_sec: rate_bytes_per_sec.max(1) as f64,
            burst_bytes: burst_bytes.max(1) as f64,
            bucket: Mutex::new(Bucket {
                available: burst_bytes.max(1) as f64,
                last_refill: Instant::now(),
            }),
        }
    }

    /// Charges `bytes` tokens, sleeping until the bucket can cover them.
    pub fn acquire(&self, bytes: usize) {
        let wait = {
            let mut b = self.bucket.lock();
            let now = Instant::now();
            b.available +=
                now.duration_since(b.last_refill).as_secs_f64() * self.rate_bytes_per_sec;
            b.available = b.available.min(self.burst_bytes);
            b.last_refill = now;
            b.available -= bytes as f64;
            if b.available < 0.0 {
                Duration::from_secs_f64(-b.available / self.rate_bytes_per_sec)
            } else {
                Duration::ZERO
            }
        };
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }
}

/// The per-exchange network model assembled from [`NetworkConfig`]: an
/// optional bandwidth bucket shared by every writer of the query (modelling
/// the shuffle fabric as one NIC) plus a per-page one-way latency.
#[derive(Debug, Default)]
pub struct NicModel {
    bucket: Option<TokenBucket>,
    latency: Duration,
}

impl NicModel {
    pub fn new(config: &NetworkConfig) -> Self {
        NicModel {
            bucket: config
                .nic_bandwidth_bytes_per_sec
                .map(|rate| TokenBucket::new(rate, config.max_response_bytes)),
            latency: Duration::from_micros(config.link_latency_us),
        }
    }

    /// A model that charges nothing (shared-memory exchange).
    pub fn unlimited() -> Self {
        NicModel::default()
    }

    /// Charges the transfer of one `bytes`-sized page: bandwidth tokens
    /// first, then link latency.
    pub fn charge(&self, bytes: usize) {
        if let Some(bucket) = &self.bucket {
            bucket.acquire(bytes);
        }
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_charges_are_free() {
        let nic = NicModel::unlimited();
        let start = Instant::now();
        for _ in 0..1000 {
            nic.charge(1 << 20);
        }
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn bandwidth_cap_throttles() {
        // 1 MB/s, zero burst headroom beyond 1 KB: pushing 20 KB past the
        // initial burst must take ≥ ~19 ms.
        let bucket = TokenBucket::new(1_000_000, 1_000);
        let start = Instant::now();
        for _ in 0..20 {
            bucket.acquire(1_000);
        }
        assert!(
            start.elapsed() >= Duration::from_millis(15),
            "elapsed {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn latency_applies_per_page() {
        let nic = NicModel::new(&NetworkConfig {
            link_latency_us: 2_000,
            ..NetworkConfig::unlimited()
        });
        let start = Instant::now();
        nic.charge(1);
        nic.charge(1);
        assert!(start.elapsed() >= Duration::from_millis(3));
    }
}
