//! Exchange endpoints: the streaming boundary between stages.
//!
//! A stage's tasks no longer hand a materialized page map to their
//! consumers; they hold an [`ExchangeWriter`] toward the parent stage and
//! one [`ExchangeReader`] per child stage, both page-granular and blocking.
//! Termination is **in-band**: pushing `Page::End(reason)` closes a
//! producer's contribution (paper Fig 13), and a reader receives a single
//! end page once every producer has finished and the buffers are drained.
//!
//! The [`ExchangeRegistry`] owns the wiring. For every stage it builds one
//! [`ElasticQueue`] per consumer task and hands out:
//!
//! * writers that route data pages by the stage's output [`RoutePolicy`] —
//!   gather/broadcast (`Single`), hash partitioning, or round-robin — while
//!   charging each transfer against the shared [`NicModel`];
//! * readers bound to one consumer task's queue.
//!
//! A failed task [`ExchangeRegistry::poison`]s the registry: every queue
//! fails, which unwinds all blocked sibling tasks with the original error.
//!
//! ## Re-parallelization and the EndSignal handshake (Fig 13)
//!
//! Edges support **live producer-set changes** for the runtime elasticity
//! controller. Shrinking needs no exchange support at all: a retiring task
//! simply pushes `Page::End(EndSignal)` through its writer, closing its
//! contribution. Growing re-registers the edge at the larger DOP with
//! [`ExchangeRegistry::add_producers`] before the new tasks' writers push.
//! The race between "last old producer finishes" and "new producers are
//! added" is closed by a **writer lease**: the controller registers elastic
//! edges with one extra producer slot and holds that writer itself, so the
//! queues cannot deliver their end page — and consumers cannot conclude the
//! stage is done — while a retune is still possible. Dropping the lease
//! (explicitly, or via the writer drop guard on error paths) releases the
//! slot once the stage's split queue is exhausted.

use std::collections::HashMap;
use std::sync::Arc;

use accordion_common::config::NetworkConfig;
use accordion_common::sync::{Mutex, Semaphore};
use accordion_common::{AccordionError, Result};
use accordion_data::hash::hash_partition;
use accordion_data::page::{DataPage, EndReason, Page};

use crate::buffer::{ElasticQueue, ExchangeLimits};
use crate::nic::NicModel;

/// Producer side of one exchange edge, held by a running task.
pub trait ExchangeWriter: Send {
    /// Delivers one page downstream, blocking while every destination
    /// buffer is full. `Page::End` is the in-band termination signal: it
    /// closes this producer's contribution to the edge and must be the last
    /// page pushed.
    fn push(&mut self, page: Page) -> Result<()>;
}

/// Consumer side of one exchange edge, held by a running task.
pub trait ExchangeReader: Send {
    /// Blocks until the next page is available. Returns `Page::End` exactly
    /// once, after every producer finished and the buffer drained; callers
    /// must stop pulling then.
    fn pull(&mut self) -> Result<Page>;
}

/// How a writer routes data pages across the consumer-side queues. Mirrors
/// `accordion_plan::physical::Partitioning` without depending on the plan
/// crate (the executor converts between the two).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutePolicy {
    /// One output partition. With one consumer this is a gather; with many
    /// consumers every page is broadcast to each of them (join build side).
    Single,
    /// Rows are hash-partitioned on `keys` into `partitions` queues.
    Hash { keys: Vec<usize>, partitions: u32 },
    /// Whole pages are dealt round-robin across `partitions` queues.
    RoundRobin { partitions: u32 },
}

impl RoutePolicy {
    pub fn partition_count(&self) -> u32 {
        match self {
            RoutePolicy::Single => 1,
            RoutePolicy::Hash { partitions, .. } | RoutePolicy::RoundRobin { partitions } => {
                *partitions
            }
        }
    }
}

/// Routes one data page across `sinks` delivery targets according to
/// `policy`: gather/broadcast clones the (`Arc`-shared) page to every sink,
/// hash splits rows by key, round-robin deals whole pages advancing
/// `rr_next`. Empty pages and empty hash pieces are skipped. Shared by the
/// network writers and the executor's intra-task local exchanges so the two
/// routing paths cannot diverge.
pub fn route_page(
    page: &Arc<DataPage>,
    policy: &RoutePolicy,
    rr_next: &mut usize,
    sinks: usize,
    deliver: &mut dyn FnMut(usize, Arc<DataPage>) -> Result<()>,
) -> Result<()> {
    if page.is_empty() {
        return Ok(());
    }
    match policy {
        RoutePolicy::Single => {
            for sink in 0..sinks.max(1) {
                deliver(sink, page.clone())?;
            }
        }
        RoutePolicy::Hash { keys, partitions } => {
            for (part, piece) in hash_partition(page, keys, *partitions)
                .into_iter()
                .enumerate()
            {
                if !piece.is_empty() {
                    deliver(part, Arc::new(piece))?;
                }
            }
        }
        RoutePolicy::RoundRobin { .. } => {
            let sink = *rr_next % sinks.max(1);
            *rr_next += 1;
            deliver(sink, page.clone())?;
        }
    }
    Ok(())
}

/// Aggregate transfer statistics of a registry (all edges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Data pages that entered exchange buffers.
    pub pages: u64,
    /// Bytes that entered exchange buffers.
    pub bytes: u64,
    /// Consumer-side elastic capacity growths across all buffers.
    pub grow_events: u64,
    /// Largest bounded buffer capacity reached, in pages (0 when every
    /// buffer ran unbounded, e.g. the serial in-process executor).
    pub max_capacity: usize,
}

struct Edge {
    /// One queue per consumer task.
    queues: Vec<Arc<ElasticQueue>>,
    policy: RoutePolicy,
}

/// Wires stage output buffers to consumer-task inputs for one query.
pub struct ExchangeRegistry {
    limits: ExchangeLimits,
    nic: Arc<NicModel>,
    edges: Mutex<HashMap<u32, Arc<Edge>>>,
    poison: Mutex<Option<AccordionError>>,
}

impl ExchangeRegistry {
    /// A registry with the given buffer limits and network model.
    pub fn new(network: &NetworkConfig) -> Self {
        ExchangeRegistry::with_nic(network, NicModel::new(network))
    }

    /// A registry reusing a prebuilt network model — how the scheduler
    /// hands each query a [`NicModel`] carved out of the shared node-level
    /// budget (see `accordion_net::nic::NodeNic`).
    pub fn with_nic(network: &NetworkConfig, nic: NicModel) -> Self {
        ExchangeRegistry {
            limits: ExchangeLimits {
                initial_pages: network.initial_buffer_pages.max(1),
                max_pages: network.max_buffer_pages,
            },
            nic: Arc::new(nic),
            edges: Mutex::new(HashMap::new()),
            poison: Mutex::new(None),
        }
    }

    /// A registry for serial in-process execution: unbounded buffers (a
    /// whole stage completes before its consumer starts, so bounded pushes
    /// would self-deadlock) and a free network.
    pub fn in_process() -> Self {
        ExchangeRegistry {
            limits: ExchangeLimits::unbounded(),
            nic: Arc::new(NicModel::unlimited()),
            edges: Mutex::new(HashMap::new()),
            poison: Mutex::new(None),
        }
    }

    /// Registers the output edge of `stage`: `producers` writer tasks
    /// routing by `policy` into one queue per consumer task. A
    /// multi-partition policy must match the consumer count one-to-one or
    /// rows would be silently dropped or duplicated.
    pub fn register(
        &self,
        stage: u32,
        producers: u32,
        policy: RoutePolicy,
        consumers: u32,
    ) -> Result<()> {
        let partitions = policy.partition_count();
        if partitions > 1 && partitions != consumers {
            return Err(AccordionError::Execution(format!(
                "stage {stage} routes {partitions} partitions to {consumers} consumer tasks"
            )));
        }
        let queues: Vec<Arc<ElasticQueue>> = (0..consumers.max(1))
            .map(|_| Arc::new(ElasticQueue::new(self.limits, producers)))
            .collect();
        let mut edges = self.edges.lock();
        if edges.contains_key(&stage) {
            return Err(AccordionError::Internal(format!(
                "stage {stage} exchange registered twice"
            )));
        }
        // Poison check and insert happen under the edges lock: a concurrent
        // poison() either sets the flag before this check (queues poisoned
        // here) or blocks on the edges lock and poisons them in its sweep —
        // an edge registered mid-failure can never slip through clean.
        // (poison() never holds its flag lock while taking the edges lock,
        // so this nesting cannot deadlock.)
        if let Some(e) = self.poison.lock().as_ref() {
            for q in &queues {
                q.poison(e.clone());
            }
        }
        edges.insert(stage, Arc::new(Edge { queues, policy }));
        Ok(())
    }

    fn edge(&self, stage: u32) -> Result<Arc<Edge>> {
        self.edges.lock().get(&stage).cloned().ok_or_else(|| {
            AccordionError::Execution(format!("stage {stage} has no registered exchange"))
        })
    }

    /// Writer endpoint for producer task `task` of `stage`. `gate` is the
    /// scheduler's compute-slot semaphore, yielded while blocked.
    pub fn writer(
        &self,
        stage: u32,
        task: u32,
        gate: Option<Arc<Semaphore>>,
    ) -> Result<Box<dyn ExchangeWriter>> {
        let edge = self.edge(stage)?;
        Ok(Box::new(EdgeWriter {
            queues: edge.queues.clone(),
            policy: edge.policy.clone(),
            // Stagger round-robin starts by producer task so the stage's
            // combined output spreads across consumers even when every task
            // emits few pages.
            rr_next: task as usize,
            nic: self.nic.clone(),
            gate,
            finished: false,
        }))
    }

    /// Reader endpoint for consumer task `consumer` of `stage`'s output.
    pub fn reader(
        &self,
        stage: u32,
        consumer: u32,
        gate: Option<Arc<Semaphore>>,
    ) -> Result<Box<dyn ExchangeReader>> {
        let edge = self.edge(stage)?;
        let queue = edge.queues.get(consumer as usize).cloned().ok_or_else(|| {
            AccordionError::Execution(format!(
                "stage {stage} has {} consumer queues, task {consumer} requested",
                edge.queues.len()
            ))
        })?;
        Ok(Box::new(EdgeReader { queue, gate }))
    }

    /// Re-registers the output edge of `stage` at a larger producer count:
    /// adds `n` writer slots to every consumer queue, so endpoints handed
    /// out by [`ExchangeRegistry::writer`] for the new tasks contribute to
    /// the same edge. Routing is DOP-stable — hash/round-robin partitioning
    /// depends only on the (unchanged) consumer count — so grown producers
    /// need no repartitioning.
    ///
    /// The caller must hold an unfinished writer on the edge (the
    /// controller's lease): adding producers to an edge whose consumers
    /// already saw the end page would lose every page the new tasks push.
    pub fn add_producers(&self, stage: u32, n: u32) -> Result<()> {
        let edge = self.edge(stage)?;
        for q in &edge.queues {
            q.add_writers(n);
        }
        Ok(())
    }

    /// Producer slots of `stage`'s output edge that have not finished yet
    /// (including a held writer lease). The elasticity controller polls
    /// this to detect a stage whose tasks all ended early — e.g. every
    /// task's LIMIT was satisfied mid-scan — with splits still unclaimed:
    /// once only the lease remains, nothing will ever claim again and the
    /// stage must be finished.
    pub fn producers_remaining(&self, stage: u32) -> Result<u32> {
        let edge = self.edge(stage)?;
        Ok(edge.queues.iter().map(|q| q.writers()).max().unwrap_or(0))
    }

    /// Fails every buffer of every edge with `err` (first poison wins),
    /// unwinding all tasks blocked on — or about to touch — an exchange.
    pub fn poison(&self, err: AccordionError) {
        {
            let mut p = self.poison.lock();
            if p.is_none() {
                *p = Some(err.clone());
            }
        }
        for edge in self.edges.lock().values() {
            for q in &edge.queues {
                q.poison(err.clone());
            }
        }
    }

    /// The first error this registry was poisoned with, if any.
    pub fn poison_error(&self) -> Option<AccordionError> {
        self.poison.lock().clone()
    }

    /// Aggregate transfer statistics across all edges.
    pub fn stats(&self) -> ExchangeStats {
        let mut s = ExchangeStats::default();
        for edge in self.edges.lock().values() {
            for q in &edge.queues {
                s.pages += q.pages_in();
                s.bytes += q.bytes_in();
                s.grow_events += q.grow_events();
                let cap = q.capacity();
                // Effectively-unbounded buffers (serial in-process mode)
                // would make "largest capacity reached" meaningless.
                if cap != usize::MAX {
                    s.max_capacity = s.max_capacity.max(cap);
                }
            }
        }
        s
    }
}

/// Routes one producer task's pages into the edge's consumer queues.
struct EdgeWriter {
    queues: Vec<Arc<ElasticQueue>>,
    policy: RoutePolicy,
    rr_next: usize,
    nic: Arc<NicModel>,
    gate: Option<Arc<Semaphore>>,
    finished: bool,
}

impl EdgeWriter {
    fn finish(&mut self, reason: EndReason) {
        if !self.finished {
            self.finished = true;
            for q in &self.queues {
                q.writer_finished(reason);
            }
        }
    }
}

impl ExchangeWriter for EdgeWriter {
    fn push(&mut self, page: Page) -> Result<()> {
        let page = match page {
            Page::End(e) => {
                self.finish(e.reason);
                return Ok(());
            }
            Page::Data(p) => p,
        };
        if self.finished {
            return Err(AccordionError::Internal(
                "exchange writer pushed after its end page".into(),
            ));
        }
        let queues = &self.queues;
        let nic = &self.nic;
        let gate = self.gate.as_deref();
        // The NIC is charged per delivered copy — a broadcast to N consumers
        // puts N pages on the simulated fabric, matching ExchangeStats — but
        // only for live destinations: a closed queue (its consumer stopped
        // pulling) costs nothing and the copy is simply not sent.
        route_page(
            &page,
            &self.policy,
            &mut self.rr_next,
            queues.len(),
            &mut |sink, piece| {
                let q = &queues[sink];
                if q.is_closed() {
                    return Ok(());
                }
                nic.charge(piece.byte_size(), gate);
                q.push(piece, gate)
            },
        )
    }
}

impl Drop for EdgeWriter {
    /// Safety net: a writer dropped without an end page (task error or bug)
    /// must not leave consumers waiting forever. Errors additionally poison
    /// the registry, which overrides this graceful close.
    fn drop(&mut self) {
        self.finish(EndReason::UpstreamFinished);
    }
}

struct EdgeReader {
    queue: Arc<ElasticQueue>,
    gate: Option<Arc<Semaphore>>,
}

impl ExchangeReader for EdgeReader {
    fn pull(&mut self) -> Result<Page> {
        self.queue.pull(self.gate.as_deref())
    }
}

impl Drop for EdgeReader {
    /// A reader dropped before draining (LIMIT satisfied, task unwinding)
    /// closes its buffer, so producers blocked on it run out instead of
    /// waiting forever — the consumer-to-producer direction of the paper's
    /// end-page shutdown protocol (Fig 13).
    fn drop(&mut self) {
        self.queue.close_consumer();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::column::Column;
    use accordion_data::page::DataPage;

    fn registry() -> ExchangeRegistry {
        ExchangeRegistry::in_process()
    }

    fn page(keys: Vec<i64>) -> Page {
        Page::data(DataPage::new(vec![Column::from_i64(keys)]))
    }

    fn drain(reader: &mut dyn ExchangeReader) -> Vec<i64> {
        let mut out = Vec::new();
        loop {
            match reader.pull().unwrap() {
                Page::End(_) => return out,
                Page::Data(p) => {
                    out.extend(p.column(0).as_i64().unwrap());
                }
            }
        }
    }

    #[test]
    fn gather_merges_all_producers() {
        let r = registry();
        r.register(1, 2, RoutePolicy::Single, 1).unwrap();
        let mut w0 = r.writer(1, 0, None).unwrap();
        let mut w1 = r.writer(1, 1, None).unwrap();
        w0.push(page(vec![1, 2])).unwrap();
        w1.push(page(vec![3])).unwrap();
        w0.push(Page::end(EndReason::ScanExhausted)).unwrap();
        w1.push(Page::end(EndReason::ScanExhausted)).unwrap();
        let mut reader = r.reader(1, 0, None).unwrap();
        let mut got = drain(reader.as_mut());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn single_partition_broadcasts_to_every_consumer() {
        let r = registry();
        r.register(1, 1, RoutePolicy::Single, 3).unwrap();
        let mut w = r.writer(1, 0, None).unwrap();
        w.push(page(vec![7, 8])).unwrap();
        w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        for consumer in 0..3 {
            let mut reader = r.reader(1, consumer, None).unwrap();
            assert_eq!(drain(reader.as_mut()), vec![7, 8]);
        }
    }

    #[test]
    fn hash_routing_is_deterministic_and_complete() {
        let r = registry();
        r.register(
            1,
            1,
            RoutePolicy::Hash {
                keys: vec![0],
                partitions: 2,
            },
            2,
        )
        .unwrap();
        let mut w = r.writer(1, 0, None).unwrap();
        w.push(page((0..100).collect())).unwrap();
        w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let mut all = Vec::new();
        let mut per_queue = Vec::new();
        for consumer in 0..2 {
            let mut reader = r.reader(1, consumer, None).unwrap();
            let got = drain(reader.as_mut());
            per_queue.push(got.len());
            all.extend(got);
        }
        all.sort_unstable();
        assert_eq!(
            all,
            (0..100).collect::<Vec<_>>(),
            "no row lost or duplicated"
        );
        assert!(per_queue.iter().all(|&n| n > 0), "both partitions used");
    }

    #[test]
    fn round_robin_deals_pages() {
        let r = registry();
        r.register(1, 1, RoutePolicy::RoundRobin { partitions: 2 }, 2)
            .unwrap();
        let mut w = r.writer(1, 0, None).unwrap();
        w.push(page(vec![1])).unwrap();
        w.push(page(vec![2])).unwrap();
        w.push(page(vec![3])).unwrap();
        w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let mut r0 = r.reader(1, 0, None).unwrap();
        let mut r1 = r.reader(1, 1, None).unwrap();
        assert_eq!(drain(r0.as_mut()), vec![1, 3]);
        assert_eq!(drain(r1.as_mut()), vec![2]);
    }

    #[test]
    fn round_robin_staggers_across_producer_tasks() {
        // Two producers, one page each: without per-task staggering both
        // pages would land on queue 0.
        let r = registry();
        r.register(1, 2, RoutePolicy::RoundRobin { partitions: 2 }, 2)
            .unwrap();
        let mut w0 = r.writer(1, 0, None).unwrap();
        let mut w1 = r.writer(1, 1, None).unwrap();
        w0.push(page(vec![1])).unwrap();
        w1.push(page(vec![2])).unwrap();
        w0.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        w1.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let mut r0 = r.reader(1, 0, None).unwrap();
        let mut r1 = r.reader(1, 1, None).unwrap();
        assert_eq!(drain(r0.as_mut()), vec![1]);
        assert_eq!(drain(r1.as_mut()), vec![2]);
    }

    #[test]
    fn broadcast_charges_stats_per_copy() {
        let r = registry();
        r.register(1, 1, RoutePolicy::Single, 3).unwrap();
        let mut w = r.writer(1, 0, None).unwrap();
        w.push(page(vec![1, 2])).unwrap();
        w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let s = r.stats();
        assert_eq!(s.pages, 3, "one copy per consumer");
        assert_eq!(
            s.max_capacity, 0,
            "unbounded in-process buffers report no bounded capacity"
        );
    }

    #[test]
    fn partition_consumer_mismatch_rejected() {
        let r = registry();
        let err = r.register(
            1,
            1,
            RoutePolicy::Hash {
                keys: vec![0],
                partitions: 3,
            },
            2,
        );
        assert!(err.is_err());
    }

    #[test]
    fn dropped_writer_closes_edge() {
        let r = registry();
        r.register(1, 1, RoutePolicy::Single, 1).unwrap();
        {
            let mut w = r.writer(1, 0, None).unwrap();
            w.push(page(vec![5])).unwrap();
            // No end page: the drop guard must finish the edge.
        }
        let mut reader = r.reader(1, 0, None).unwrap();
        assert_eq!(drain(reader.as_mut()), vec![5]);
    }

    #[test]
    fn producers_added_mid_stream_extend_the_edge() {
        let r = registry();
        // One initial producer plus the controller's writer lease.
        r.register(1, 2, RoutePolicy::Single, 1).unwrap();
        let mut w0 = r.writer(1, 0, None).unwrap();
        let mut lease = r.writer(1, u32::MAX, None).unwrap();
        w0.push(page(vec![1])).unwrap();
        // The old task retires between splits (EndSignal direction).
        w0.push(Page::end(EndReason::EndSignal)).unwrap();
        // Grow: two new producers join the live edge and take over the
        // remaining splits.
        r.add_producers(1, 2).unwrap();
        let mut w1 = r.writer(1, 1, None).unwrap();
        let mut w2 = r.writer(1, 2, None).unwrap();
        w1.push(page(vec![2])).unwrap();
        w2.push(page(vec![3])).unwrap();
        w1.push(Page::end(EndReason::ScanExhausted)).unwrap();
        w2.push(Page::end(EndReason::ScanExhausted)).unwrap();
        // Only once the lease is released does the edge end.
        lease.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let mut reader = r.reader(1, 0, None).unwrap();
        let mut got = drain(reader.as_mut());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3], "no page lost or duplicated");
    }

    #[test]
    fn lease_holds_edge_open_while_producers_finish() {
        let r = registry();
        // One real producer + one lease slot.
        r.register(1, 2, RoutePolicy::Single, 1).unwrap();
        {
            let mut w = r.writer(1, 0, None).unwrap();
            w.push(page(vec![9])).unwrap();
            w.push(Page::end(EndReason::ScanExhausted)).unwrap();
        }
        let lease = r.writer(1, 1, None).unwrap();
        // All real producers are done, but the lease keeps the edge open:
        // the buffered page is readable, and no end page follows yet.
        let mut reader = r.reader(1, 0, None).unwrap();
        assert_eq!(reader.pull().unwrap().row_count(), 1);
        drop(lease); // drop guard finishes the lease's slot
        assert!(reader.pull().unwrap().is_end());
    }

    #[test]
    fn poison_fails_existing_and_future_edges() {
        let r = registry();
        r.register(1, 1, RoutePolicy::Single, 1).unwrap();
        r.poison(AccordionError::Execution("boom".into()));
        let mut reader = r.reader(1, 0, None).unwrap();
        assert!(reader.pull().is_err());
        r.register(2, 1, RoutePolicy::Single, 1).unwrap();
        let mut w = r.writer(2, 0, None).unwrap();
        assert!(w.push(page(vec![1])).is_err());
        assert!(r.poison_error().is_some());
    }

    #[test]
    fn stats_count_transfers() {
        let r = registry();
        r.register(1, 1, RoutePolicy::Single, 1).unwrap();
        let mut w = r.writer(1, 0, None).unwrap();
        w.push(page(vec![1, 2, 3])).unwrap();
        w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let s = r.stats();
        assert_eq!(s.pages, 1);
        assert!(s.bytes > 0);
    }
}
