//! Exchange endpoints: the streaming boundary between stages.
//!
//! A stage's tasks no longer hand a materialized page map to their
//! consumers; they hold an [`ExchangeWriter`] toward the parent stage and
//! one [`ExchangeReader`] per child stage, both page-granular and blocking.
//! Termination is **in-band**: pushing `Page::End(reason)` closes a
//! producer's contribution (paper Fig 13), and a reader receives a single
//! end page once every producer has finished and the buffers are drained.
//!
//! ## Topology-first wiring
//!
//! All wiring is declared up front as an [`ExchangeTopology`]: one
//! [`EdgeSpec`] per stage output, each naming its producer count, routing
//! policy, and **where every consumer slot lives** ([`ConsumerLoc`]).
//! [`ExchangeRegistry::build`] consumes the descriptor and materializes one
//! [`ElasticQueue`] per consumer slot; writers route data pages by the
//! edge's [`RoutePolicy`] — gather/broadcast (`Single`), hash partitioning,
//! or round-robin — charging each transfer against the shared [`NicModel`].
//!
//! The registry is **transport-agnostic**: a slot marked
//! [`ConsumerLoc::Local`] is reached through its shared-memory queue, a
//! [`ConsumerLoc::Remote`] slot through a lazily-opened TCP
//! [`PageSink`] toward that node's
//! [`PageServer`](crate::tcp::PageServer), which feeds the page into the
//! *same* queue type on the remote side. Producers and consumers cannot
//! tell which transport an edge uses. Every node of a distributed query
//! builds the **same global topology** (slots it does not own marked
//! remote), so consumer-slot indices, hash partitions, and writer
//! accounting agree everywhere: a finishing producer decrements its slot on
//! every local queue directly and on every remote node via a FINISH frame.
//!
//! A failed task [`ExchangeRegistry::poison`]s the registry: every queue
//! fails, which unwinds all blocked sibling tasks with the original error —
//! and the poison is broadcast over the topology's control channels, so
//! remote siblings unwind too.
//!
//! ## Re-parallelization and the EndSignal handshake (Fig 13)
//!
//! Edges support **live producer-set changes** for the runtime elasticity
//! controller. Shrinking needs no exchange support at all: a retiring task
//! simply pushes `Page::End(EndSignal)` through its writer, closing its
//! contribution. Growing re-registers the edge at the larger DOP with
//! [`ExchangeRegistry::add_producers`] before the new tasks' writers push
//! (remote peers acknowledge the growth before it returns, so a grown
//! task's pages can never outrun its registration). The race between "last
//! old producer finishes" and "new producers are added" is closed by a
//! **writer lease**: an [`EdgeSpec`] marked [`EdgeSpec::leased`] carries
//! one extra producer slot that the controller holds itself, so the queues
//! cannot deliver their end page — and consumers cannot conclude the stage
//! is done — while a retune is still possible. Dropping the lease
//! (explicitly, or via the writer drop guard on error paths) releases the
//! slot once the stage's split queue is exhausted.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use accordion_common::config::NetworkConfig;
use accordion_common::sync::{Mutex, Semaphore};
use accordion_common::{AccordionError, Result};
use accordion_data::hash::hash_partition;
use accordion_data::page::{DataPage, EndReason, Page};

use crate::buffer::{ElasticQueue, ExchangeLimits};
use crate::nic::NicModel;
use crate::tcp::{ControlLink, PageSink};

/// Producer side of one exchange edge, held by a running task.
pub trait ExchangeWriter: Send {
    /// Delivers one page downstream, blocking while every destination
    /// buffer is full. `Page::End` is the in-band termination signal: it
    /// closes this producer's contribution to the edge and must be the last
    /// page pushed.
    fn push(&mut self, page: Page) -> Result<()>;
}

/// Consumer side of one exchange edge, held by a running task.
pub trait ExchangeReader: Send {
    /// Blocks until the next page is available. Returns `Page::End` exactly
    /// once, after every producer finished and the buffer drained; callers
    /// must stop pulling then.
    fn pull(&mut self) -> Result<Page>;
}

/// How a writer routes data pages across the consumer-side queues. Mirrors
/// `accordion_plan::physical::Partitioning` without depending on the plan
/// crate (the executor converts between the two).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutePolicy {
    /// One output partition. With one consumer this is a gather; with many
    /// consumers every page is broadcast to each of them (join build side).
    Single,
    /// Rows are hash-partitioned on `keys` into `partitions` queues.
    Hash { keys: Vec<usize>, partitions: u32 },
    /// Whole pages are dealt round-robin across `partitions` queues.
    RoundRobin { partitions: u32 },
}

impl RoutePolicy {
    pub fn partition_count(&self) -> u32 {
        match self {
            RoutePolicy::Single => 1,
            RoutePolicy::Hash { partitions, .. } | RoutePolicy::RoundRobin { partitions } => {
                *partitions
            }
        }
    }
}

/// Where one consumer slot of an edge runs, from the building node's point
/// of view. The same global slot is `Local` on exactly one node and
/// `Remote` (with that node's page-server address) everywhere else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsumerLoc {
    /// The slot's task runs in this process; delivery is the shared-memory
    /// queue.
    Local,
    /// The slot's task runs on the node whose page server listens at this
    /// `host:port`; delivery is a TCP page sink.
    Remote(String),
}

/// Declarative description of one exchange edge: the output of `stage`.
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    /// Stage whose output this edge carries.
    pub stage: u32,
    /// Producer tasks across the whole fleet (every node registers the
    /// global count, not its local share, so writer accounting agrees on
    /// all nodes). Excludes the lease slot.
    pub producers: u32,
    /// Routing policy; a multi-partition policy must match the consumer
    /// slot count one-to-one.
    pub policy: RoutePolicy,
    /// One entry per consumer slot, globally indexed. Where each lives.
    pub consumers: Vec<ConsumerLoc>,
    /// Reserve one extra producer slot for the elasticity controller's
    /// writer lease (see module docs).
    pub leased: bool,
}

impl EdgeSpec {
    /// An all-local edge with `consumers` consumer slots — the common case
    /// for single-process execution.
    pub fn local(stage: u32, producers: u32, policy: RoutePolicy, consumers: u32) -> EdgeSpec {
        EdgeSpec {
            stage,
            producers,
            policy,
            consumers: vec![ConsumerLoc::Local; consumers.max(1) as usize],
            leased: false,
        }
    }

    /// Adds the elasticity controller's writer-lease slot.
    pub fn leased(mut self) -> EdgeSpec {
        self.leased = true;
        self
    }
}

/// The complete exchange wiring of one query on one node: every edge, plus
/// the control-channel addresses of the other nodes participating in the
/// query. [`ExchangeRegistry::build`] consumes this.
#[derive(Debug, Clone, Default)]
pub struct ExchangeTopology {
    /// Query id; remote connections greet with it so the receiving page
    /// server can find the right registry.
    pub query: u64,
    /// Page-server addresses of every *other* node in the query, for
    /// control broadcasts (producer growth, poison).
    pub peers: Vec<String>,
    /// One spec per exchange edge.
    pub edges: Vec<EdgeSpec>,
}

impl ExchangeTopology {
    pub fn new(query: u64) -> ExchangeTopology {
        ExchangeTopology {
            query,
            peers: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds one edge (builder-style).
    pub fn edge(mut self, spec: EdgeSpec) -> ExchangeTopology {
        self.edges.push(spec);
        self
    }

    /// Adds one peer node's page-server address (builder-style).
    pub fn peer(mut self, addr: impl Into<String>) -> ExchangeTopology {
        self.peers.push(addr.into());
        self
    }
}

/// Aggregate transfer statistics of a registry (all edges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Data pages that entered exchange buffers.
    pub pages: u64,
    /// Bytes that entered exchange buffers.
    pub bytes: u64,
    /// Consumer-side elastic capacity growths across all buffers.
    pub grow_events: u64,
    /// Largest bounded buffer capacity reached, in pages (0 when every
    /// buffer ran unbounded, e.g. the serial in-process executor).
    pub max_capacity: usize,
}

struct Edge {
    /// One queue per consumer slot, globally indexed. Remote slots have a
    /// queue too (unused locally) so indices line up on every node.
    queues: Vec<Arc<ElasticQueue>>,
    policy: RoutePolicy,
    consumers: Vec<ConsumerLoc>,
}

/// Wires stage output buffers to consumer-task inputs for one query, local
/// and remote. Built from an [`ExchangeTopology`] — see the module docs.
pub struct ExchangeRegistry {
    query: u64,
    limits: ExchangeLimits,
    nic: Arc<NicModel>,
    network: NetworkConfig,
    peers: Vec<String>,
    edges: Mutex<HashMap<u32, Arc<Edge>>>,
    poison: Mutex<Option<AccordionError>>,
    /// Lazily-opened control channels to `peers`.
    links: Mutex<HashMap<String, ControlLink>>,
}

impl ExchangeRegistry {
    /// Materializes `topology` with the given buffer limits / NIC model —
    /// how the scheduler hands each query a [`NicModel`] carved out of the
    /// shared node-level budget (see `accordion_net::nic::NodeNic`).
    pub fn build(
        topology: &ExchangeTopology,
        network: &NetworkConfig,
        nic: NicModel,
    ) -> Result<Arc<ExchangeRegistry>> {
        let registry = ExchangeRegistry {
            query: topology.query,
            limits: ExchangeLimits {
                initial_pages: network.initial_buffer_pages.max(1),
                max_pages: network.max_buffer_pages,
            },
            nic: Arc::new(nic),
            network: network.clone(),
            peers: topology.peers.clone(),
            edges: Mutex::new(HashMap::new()),
            poison: Mutex::new(None),
            links: Mutex::new(HashMap::new()),
        };
        for spec in &topology.edges {
            registry.register(spec)?;
        }
        Ok(Arc::new(registry))
    }

    /// Materializes `topology` for serial in-process execution: unbounded
    /// buffers (a whole stage completes before its consumer starts, so
    /// bounded pushes would self-deadlock) and a free network.
    pub fn build_in_process(topology: &ExchangeTopology) -> Result<Arc<ExchangeRegistry>> {
        let registry = ExchangeRegistry {
            query: topology.query,
            limits: ExchangeLimits::unbounded(),
            nic: Arc::new(NicModel::unlimited()),
            network: NetworkConfig::unlimited(),
            peers: topology.peers.clone(),
            edges: Mutex::new(HashMap::new()),
            poison: Mutex::new(None),
            links: Mutex::new(HashMap::new()),
        };
        for spec in &topology.edges {
            registry.register(spec)?;
        }
        Ok(Arc::new(registry))
    }

    /// The query this registry belongs to (HELLO id of its remote frames).
    pub fn query(&self) -> u64 {
        self.query
    }

    fn register(&self, spec: &EdgeSpec) -> Result<()> {
        if spec.consumers.is_empty() {
            return Err(AccordionError::Execution(format!(
                "stage {} edge declares no consumer slots",
                spec.stage
            )));
        }
        let partitions = spec.policy.partition_count();
        if partitions > 1 && partitions as usize != spec.consumers.len() {
            return Err(AccordionError::Execution(format!(
                "stage {} routes {partitions} partitions to {} consumer slots",
                spec.stage,
                spec.consumers.len()
            )));
        }
        let producers = spec.producers + u32::from(spec.leased);
        let queues: Vec<Arc<ElasticQueue>> = spec
            .consumers
            .iter()
            .map(|_| Arc::new(ElasticQueue::new(self.limits, producers)))
            .collect();
        let mut edges = self.edges.lock();
        if edges.contains_key(&spec.stage) {
            return Err(AccordionError::Internal(format!(
                "stage {} exchange registered twice",
                spec.stage
            )));
        }
        // Poison check and insert happen under the edges lock: a concurrent
        // poison() either sets the flag before this check (queues poisoned
        // here) or blocks on the edges lock and poisons them in its sweep —
        // an edge registered mid-failure can never slip through clean.
        // (poison() never holds its flag lock while taking the edges lock,
        // so this nesting cannot deadlock.)
        if let Some(e) = self.poison.lock().as_ref() {
            for q in &queues {
                q.poison(e.clone());
            }
        }
        edges.insert(
            spec.stage,
            Arc::new(Edge {
                queues,
                policy: spec.policy.clone(),
                consumers: spec.consumers.clone(),
            }),
        );
        Ok(())
    }

    fn edge(&self, stage: u32) -> Result<Arc<Edge>> {
        self.edges.lock().get(&stage).cloned().ok_or_else(|| {
            AccordionError::Execution(format!("stage {stage} has no registered exchange"))
        })
    }

    /// The ingress queues of `stage`'s edge — how the node's page server
    /// feeds remotely-produced pages into local consumers.
    pub(crate) fn edge_queues(&self, stage: u32) -> Result<Vec<Arc<ElasticQueue>>> {
        Ok(self.edge(stage)?.queues.clone())
    }

    /// Writer endpoint for producer task `task` of `stage`. `gate` is the
    /// scheduler's compute-slot semaphore, yielded while blocked.
    pub fn writer(
        self: &Arc<Self>,
        stage: u32,
        task: u32,
        gate: Option<Arc<Semaphore>>,
    ) -> Result<Box<dyn ExchangeWriter>> {
        let edge = self.edge(stage)?;
        Ok(Box::new(EdgeWriter {
            registry: self.clone(),
            stage,
            queues: edge.queues.clone(),
            consumers: edge.consumers.clone(),
            policy: edge.policy.clone(),
            // Stagger round-robin starts by producer task so the stage's
            // combined output spreads across consumers even when every task
            // emits few pages.
            rr_next: task as usize,
            nic: self.nic.clone(),
            gate,
            finished: false,
            sinks: HashMap::new(),
        }))
    }

    /// Reader endpoint for consumer task `consumer` of `stage`'s output.
    /// The slot must be [`ConsumerLoc::Local`] on this node.
    pub fn reader(
        &self,
        stage: u32,
        consumer: u32,
        gate: Option<Arc<Semaphore>>,
    ) -> Result<Box<dyn ExchangeReader>> {
        let edge = self.edge(stage)?;
        let queue = edge.queues.get(consumer as usize).cloned().ok_or_else(|| {
            AccordionError::Execution(format!(
                "stage {stage} has {} consumer slots, task {consumer} requested",
                edge.queues.len()
            ))
        })?;
        if let Some(ConsumerLoc::Remote(host)) = edge.consumers.get(consumer as usize) {
            return Err(AccordionError::Execution(format!(
                "consumer slot {consumer} of stage {stage} lives on {host}, not this node"
            )));
        }
        Ok(Box::new(EdgeReader { queue, gate }))
    }

    /// Re-registers the output edge of `stage` at a larger producer count —
    /// on this node **and every peer**: remote registries must acknowledge
    /// before this returns, so a grown task's pages (or its end frame,
    /// racing ahead on a different connection) can never reach a node that
    /// does not yet account for its writer. Routing is DOP-stable —
    /// hash/round-robin partitioning depends only on the (unchanged)
    /// consumer count — so grown producers need no repartitioning.
    ///
    /// The caller must hold an unfinished writer on the edge (the
    /// controller's lease): adding producers to an edge whose consumers
    /// already saw the end page would lose every page the new tasks push.
    pub fn add_producers(&self, stage: u32, n: u32) -> Result<()> {
        self.add_producers_local(stage, n)?;
        let mut links = self.links.lock();
        for peer in &self.peers {
            self.link(&mut links, peer)?.add_producers(stage, n)?;
        }
        Ok(())
    }

    /// Applies a producer-count growth to this node's queues only — the
    /// page server calls this when a peer's growth broadcast arrives.
    pub fn add_producers_local(&self, stage: u32, n: u32) -> Result<()> {
        let edge = self.edge(stage)?;
        for q in &edge.queues {
            q.add_writers(n);
        }
        Ok(())
    }

    /// Producer slots of `stage`'s output edge that have not finished yet
    /// (including a held writer lease). The elasticity controller polls
    /// this to detect a stage whose tasks all ended early — e.g. every
    /// task's LIMIT was satisfied mid-scan — with splits still unclaimed:
    /// once only the lease remains, nothing will ever claim again and the
    /// stage must be finished.
    ///
    /// Only queues of **local** consumer slots are consulted: those receive
    /// every producer's finish (local finishes directly, remote ones via
    /// FINISH frames), while the placeholder queues of remote slots only
    /// ever see local finishes and would over-count.
    pub fn producers_remaining(&self, stage: u32) -> Result<u32> {
        let edge = self.edge(stage)?;
        let local_max = edge
            .queues
            .iter()
            .zip(&edge.consumers)
            .filter(|(_, loc)| matches!(loc, ConsumerLoc::Local))
            .map(|(q, _)| q.writers())
            .max();
        Ok(match local_max {
            Some(n) => n,
            // No local slot: fall back to the placeholder queues (their
            // local-only count is still an upper bound).
            None => edge.queues.iter().map(|q| q.writers()).max().unwrap_or(0),
        })
    }

    /// Fails every buffer of every edge with `err` (first poison wins),
    /// unwinding all tasks blocked on — or about to touch — an exchange.
    /// The first poison is also broadcast (best-effort) to every peer node,
    /// so remote tasks of the query unwind too.
    pub fn poison(&self, err: AccordionError) {
        let first = self.poison_local(err.clone());
        if first && !self.peers.is_empty() {
            let msg = err.to_string();
            let mut links = self.links.lock();
            for peer in &self.peers {
                // Best-effort: an unreachable peer is already failing.
                if let Ok(link) = self.link(&mut links, peer) {
                    let _ = link.poison(&msg);
                }
            }
        }
    }

    /// Applies a poison to this node only (no re-broadcast — the page
    /// server calls this when a peer's poison arrives, and echoing it back
    /// would ping-pong forever). Returns whether this was the first poison.
    pub fn poison_local(&self, err: AccordionError) -> bool {
        let first = {
            let mut p = self.poison.lock();
            if p.is_none() {
                *p = Some(err.clone());
                true
            } else {
                false
            }
        };
        for edge in self.edges.lock().values() {
            for q in &edge.queues {
                q.poison(err.clone());
            }
        }
        first
    }

    /// The first error this registry was poisoned with, if any.
    pub fn poison_error(&self) -> Option<AccordionError> {
        self.poison.lock().clone()
    }

    /// The lazily-connected control link to `peer` (caller holds the lock).
    fn link<'a>(
        &self,
        links: &'a mut HashMap<String, ControlLink>,
        peer: &str,
    ) -> Result<&'a mut ControlLink> {
        if !links.contains_key(peer) {
            let link = ControlLink::connect(peer, self.query, &self.network)?;
            links.insert(peer.to_string(), link);
        }
        Ok(links.get_mut(peer).expect("just inserted"))
    }

    /// Aggregate transfer statistics across all edges.
    pub fn stats(&self) -> ExchangeStats {
        let mut s = ExchangeStats::default();
        for edge in self.edges.lock().values() {
            for q in &edge.queues {
                s.pages += q.pages_in();
                s.bytes += q.bytes_in();
                s.grow_events += q.grow_events();
                let cap = q.capacity();
                // Effectively-unbounded buffers (serial in-process mode)
                // would make "largest capacity reached" meaningless.
                if cap != usize::MAX {
                    s.max_capacity = s.max_capacity.max(cap);
                }
            }
        }
        s
    }
}

/// Routes one data page across `sinks` delivery targets according to
/// `policy`: gather/broadcast clones the (`Arc`-shared) page to every sink,
/// hash splits rows by key, round-robin deals whole pages advancing
/// `rr_next`. Empty pages and empty hash pieces are skipped. Shared by the
/// network writers and the executor's intra-task local exchanges so the two
/// routing paths cannot diverge.
pub fn route_page(
    page: &Arc<DataPage>,
    policy: &RoutePolicy,
    rr_next: &mut usize,
    sinks: usize,
    deliver: &mut dyn FnMut(usize, Arc<DataPage>) -> Result<()>,
) -> Result<()> {
    if page.is_empty() {
        return Ok(());
    }
    match policy {
        RoutePolicy::Single => {
            for sink in 0..sinks.max(1) {
                deliver(sink, page.clone())?;
            }
        }
        RoutePolicy::Hash { keys, partitions } => {
            for (part, piece) in hash_partition(page, keys, *partitions)
                .into_iter()
                .enumerate()
            {
                if !piece.is_empty() {
                    deliver(part, Arc::new(piece))?;
                }
            }
        }
        RoutePolicy::RoundRobin { .. } => {
            let sink = *rr_next % sinks.max(1);
            *rr_next += 1;
            deliver(sink, page.clone())?;
        }
    }
    Ok(())
}

/// Routes one producer task's pages into the edge's consumer slots —
/// local slots through their shared-memory queues, remote slots through
/// lazily-opened per-node page sinks.
struct EdgeWriter {
    registry: Arc<ExchangeRegistry>,
    stage: u32,
    queues: Vec<Arc<ElasticQueue>>,
    consumers: Vec<ConsumerLoc>,
    policy: RoutePolicy,
    rr_next: usize,
    nic: Arc<NicModel>,
    gate: Option<Arc<Semaphore>>,
    finished: bool,
    /// One page sink per remote node this writer has delivered to.
    sinks: HashMap<String, PageSink>,
}

impl EdgeWriter {
    /// Closes this producer's contribution: decrements the writer count of
    /// every local queue directly, and of every remote node hosting a
    /// consumer slot via a FINISH frame (connecting if this writer never
    /// routed data there — the remote accounting needs the frame
    /// regardless). Idempotent.
    fn finish(&mut self, reason: EndReason) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        for q in &self.queues {
            q.writer_finished(reason);
        }
        let hosts: BTreeSet<&String> = self
            .consumers
            .iter()
            .filter_map(|loc| match loc {
                ConsumerLoc::Local => None,
                ConsumerLoc::Remote(host) => Some(host),
            })
            .collect();
        let mut result = Ok(());
        for host in hosts {
            let outcome = match self.sinks.get_mut(host) {
                Some(sink) => sink.finish(reason),
                None => PageSink::connect(
                    host,
                    self.registry.query(),
                    self.stage,
                    &self.registry.network,
                )
                .and_then(|mut sink| sink.finish(reason)),
            };
            if let Err(e) = outcome {
                result = Err(e);
            }
        }
        result
    }
}

impl ExchangeWriter for EdgeWriter {
    fn push(&mut self, page: Page) -> Result<()> {
        let page = match page {
            Page::End(e) => return self.finish(e.reason),
            Page::Data(p) => p,
        };
        if self.finished {
            return Err(AccordionError::Internal(
                "exchange writer pushed after its end page".into(),
            ));
        }
        let EdgeWriter {
            registry,
            stage,
            queues,
            consumers,
            policy,
            rr_next,
            nic,
            gate,
            sinks,
            ..
        } = self;
        let gate = gate.as_deref();
        // The NIC is charged per delivered copy — a broadcast to N consumers
        // puts N pages on the simulated fabric, matching ExchangeStats — but
        // only for live destinations: a closed local queue (its consumer
        // stopped pulling) costs nothing and the copy is simply not sent.
        route_page(
            &page,
            policy,
            rr_next,
            queues.len(),
            &mut |slot, piece| match &consumers[slot] {
                ConsumerLoc::Local => {
                    let q = &queues[slot];
                    if q.is_closed() {
                        return Ok(());
                    }
                    nic.charge(piece.byte_size(), gate);
                    q.push(piece, gate)
                }
                ConsumerLoc::Remote(host) => {
                    nic.charge(piece.byte_size(), gate);
                    if !sinks.contains_key(host) {
                        let sink =
                            PageSink::connect(host, registry.query(), *stage, &registry.network)?;
                        sinks.insert(host.clone(), sink);
                    }
                    let sink = sinks.get_mut(host).expect("just inserted");
                    sink.send_data(slot as u32, &piece, gate)
                }
            },
        )
    }
}

impl Drop for EdgeWriter {
    /// Safety net: a writer dropped without an end page (task error or bug)
    /// must not leave consumers waiting forever. A failed remote finish
    /// poisons the registry — the query cannot terminate cleanly once a
    /// node's writer accounting is short one end frame.
    fn drop(&mut self) {
        if let Err(e) = self.finish(EndReason::UpstreamFinished) {
            self.registry.poison(e);
        }
    }
}

struct EdgeReader {
    queue: Arc<ElasticQueue>,
    gate: Option<Arc<Semaphore>>,
}

impl ExchangeReader for EdgeReader {
    fn pull(&mut self) -> Result<Page> {
        self.queue.pull(self.gate.as_deref())
    }
}

impl Drop for EdgeReader {
    /// A reader dropped before draining (LIMIT satisfied, task unwinding)
    /// closes its buffer, so producers blocked on it run out instead of
    /// waiting forever — the consumer-to-producer direction of the paper's
    /// end-page shutdown protocol (Fig 13).
    fn drop(&mut self) {
        self.queue.close_consumer();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::column::Column;
    use accordion_data::page::DataPage;

    fn registry_with(edges: Vec<EdgeSpec>) -> Arc<ExchangeRegistry> {
        let mut t = ExchangeTopology::new(1);
        for e in edges {
            t = t.edge(e);
        }
        ExchangeRegistry::build_in_process(&t).unwrap()
    }

    fn page(keys: Vec<i64>) -> Page {
        Page::data(DataPage::new(vec![Column::from_i64(keys)]))
    }

    fn drain(reader: &mut dyn ExchangeReader) -> Vec<i64> {
        let mut out = Vec::new();
        loop {
            match reader.pull().unwrap() {
                Page::End(_) => return out,
                Page::Data(p) => {
                    out.extend(p.column(0).as_i64().unwrap());
                }
            }
        }
    }

    #[test]
    fn gather_merges_all_producers() {
        let r = registry_with(vec![EdgeSpec::local(1, 2, RoutePolicy::Single, 1)]);
        let mut w0 = r.writer(1, 0, None).unwrap();
        let mut w1 = r.writer(1, 1, None).unwrap();
        w0.push(page(vec![1, 2])).unwrap();
        w1.push(page(vec![3])).unwrap();
        w0.push(Page::end(EndReason::ScanExhausted)).unwrap();
        w1.push(Page::end(EndReason::ScanExhausted)).unwrap();
        let mut reader = r.reader(1, 0, None).unwrap();
        let mut got = drain(reader.as_mut());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn single_partition_broadcasts_to_every_consumer() {
        let r = registry_with(vec![EdgeSpec::local(1, 1, RoutePolicy::Single, 3)]);
        let mut w = r.writer(1, 0, None).unwrap();
        w.push(page(vec![7, 8])).unwrap();
        w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        for consumer in 0..3 {
            let mut reader = r.reader(1, consumer, None).unwrap();
            assert_eq!(drain(reader.as_mut()), vec![7, 8]);
        }
    }

    #[test]
    fn hash_routing_is_deterministic_and_complete() {
        let r = registry_with(vec![EdgeSpec::local(
            1,
            1,
            RoutePolicy::Hash {
                keys: vec![0],
                partitions: 2,
            },
            2,
        )]);
        let mut w = r.writer(1, 0, None).unwrap();
        w.push(page((0..100).collect())).unwrap();
        w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let mut all = Vec::new();
        let mut per_queue = Vec::new();
        for consumer in 0..2 {
            let mut reader = r.reader(1, consumer, None).unwrap();
            let got = drain(reader.as_mut());
            per_queue.push(got.len());
            all.extend(got);
        }
        all.sort_unstable();
        assert_eq!(
            all,
            (0..100).collect::<Vec<_>>(),
            "no row lost or duplicated"
        );
        assert!(per_queue.iter().all(|&n| n > 0), "both partitions used");
    }

    #[test]
    fn round_robin_deals_pages() {
        let r = registry_with(vec![EdgeSpec::local(
            1,
            1,
            RoutePolicy::RoundRobin { partitions: 2 },
            2,
        )]);
        let mut w = r.writer(1, 0, None).unwrap();
        w.push(page(vec![1])).unwrap();
        w.push(page(vec![2])).unwrap();
        w.push(page(vec![3])).unwrap();
        w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let mut r0 = r.reader(1, 0, None).unwrap();
        let mut r1 = r.reader(1, 1, None).unwrap();
        assert_eq!(drain(r0.as_mut()), vec![1, 3]);
        assert_eq!(drain(r1.as_mut()), vec![2]);
    }

    #[test]
    fn round_robin_staggers_across_producer_tasks() {
        // Two producers, one page each: without per-task staggering both
        // pages would land on queue 0.
        let r = registry_with(vec![EdgeSpec::local(
            1,
            2,
            RoutePolicy::RoundRobin { partitions: 2 },
            2,
        )]);
        let mut w0 = r.writer(1, 0, None).unwrap();
        let mut w1 = r.writer(1, 1, None).unwrap();
        w0.push(page(vec![1])).unwrap();
        w1.push(page(vec![2])).unwrap();
        w0.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        w1.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let mut r0 = r.reader(1, 0, None).unwrap();
        let mut r1 = r.reader(1, 1, None).unwrap();
        assert_eq!(drain(r0.as_mut()), vec![1]);
        assert_eq!(drain(r1.as_mut()), vec![2]);
    }

    #[test]
    fn broadcast_charges_stats_per_copy() {
        let r = registry_with(vec![EdgeSpec::local(1, 1, RoutePolicy::Single, 3)]);
        let mut w = r.writer(1, 0, None).unwrap();
        w.push(page(vec![1, 2])).unwrap();
        w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let s = r.stats();
        assert_eq!(s.pages, 3, "one copy per consumer");
        assert_eq!(
            s.max_capacity, 0,
            "unbounded in-process buffers report no bounded capacity"
        );
    }

    #[test]
    fn partition_consumer_mismatch_rejected() {
        let topology = ExchangeTopology::new(1).edge(EdgeSpec::local(
            1,
            1,
            RoutePolicy::Hash {
                keys: vec![0],
                partitions: 3,
            },
            2,
        ));
        assert!(ExchangeRegistry::build_in_process(&topology).is_err());
    }

    #[test]
    fn dropped_writer_closes_edge() {
        let r = registry_with(vec![EdgeSpec::local(1, 1, RoutePolicy::Single, 1)]);
        {
            let mut w = r.writer(1, 0, None).unwrap();
            w.push(page(vec![5])).unwrap();
            // No end page: the drop guard must finish the edge.
        }
        let mut reader = r.reader(1, 0, None).unwrap();
        assert_eq!(drain(reader.as_mut()), vec![5]);
    }

    #[test]
    fn producers_added_mid_stream_extend_the_edge() {
        // One initial producer; the leased flag reserves the controller's
        // writer-lease slot.
        let r = registry_with(vec![EdgeSpec::local(1, 1, RoutePolicy::Single, 1).leased()]);
        let mut w0 = r.writer(1, 0, None).unwrap();
        let mut lease = r.writer(1, u32::MAX, None).unwrap();
        w0.push(page(vec![1])).unwrap();
        // The old task retires between splits (EndSignal direction).
        w0.push(Page::end(EndReason::EndSignal)).unwrap();
        // Grow: two new producers join the live edge and take over the
        // remaining splits.
        r.add_producers(1, 2).unwrap();
        let mut w1 = r.writer(1, 1, None).unwrap();
        let mut w2 = r.writer(1, 2, None).unwrap();
        w1.push(page(vec![2])).unwrap();
        w2.push(page(vec![3])).unwrap();
        w1.push(Page::end(EndReason::ScanExhausted)).unwrap();
        w2.push(Page::end(EndReason::ScanExhausted)).unwrap();
        // Only once the lease is released does the edge end.
        lease.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let mut reader = r.reader(1, 0, None).unwrap();
        let mut got = drain(reader.as_mut());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3], "no page lost or duplicated");
    }

    #[test]
    fn lease_holds_edge_open_while_producers_finish() {
        let r = registry_with(vec![EdgeSpec::local(1, 1, RoutePolicy::Single, 1).leased()]);
        {
            let mut w = r.writer(1, 0, None).unwrap();
            w.push(page(vec![9])).unwrap();
            w.push(Page::end(EndReason::ScanExhausted)).unwrap();
        }
        let lease = r.writer(1, 1, None).unwrap();
        // All real producers are done, but the lease keeps the edge open:
        // the buffered page is readable, and no end page follows yet.
        let mut reader = r.reader(1, 0, None).unwrap();
        assert_eq!(reader.pull().unwrap().row_count(), 1);
        drop(lease); // drop guard finishes the lease's slot
        assert!(reader.pull().unwrap().is_end());
    }

    #[test]
    fn poison_fails_every_edge() {
        let r = registry_with(vec![
            EdgeSpec::local(1, 1, RoutePolicy::Single, 1),
            EdgeSpec::local(2, 1, RoutePolicy::Single, 1),
        ]);
        r.poison(AccordionError::Execution("boom".into()));
        let mut reader = r.reader(1, 0, None).unwrap();
        assert!(reader.pull().is_err());
        let mut w = r.writer(2, 0, None).unwrap();
        assert!(w.push(page(vec![1])).is_err());
        assert!(r.poison_error().is_some());
    }

    #[test]
    fn remote_slot_rejects_local_reader() {
        let spec = EdgeSpec {
            stage: 1,
            producers: 1,
            policy: RoutePolicy::Single,
            consumers: vec![ConsumerLoc::Local, ConsumerLoc::Remote("10.0.0.9:1".into())],
            leased: false,
        };
        let r = registry_with(vec![spec]);
        assert!(r.reader(1, 0, None).is_ok());
        assert!(
            r.reader(1, 1, None).is_err(),
            "remote slot is not readable here"
        );
    }

    #[test]
    fn producers_remaining_counts_local_slots_only() {
        // Slot 0 local, slot 1 remote: the remote placeholder queue never
        // sees remote finishes, so it must not dominate the count.
        let spec = EdgeSpec {
            stage: 1,
            producers: 2,
            policy: RoutePolicy::RoundRobin { partitions: 2 },
            consumers: vec![ConsumerLoc::Local, ConsumerLoc::Remote("10.0.0.9:1".into())],
            leased: false,
        };
        let r = registry_with(vec![spec]);
        assert_eq!(r.producers_remaining(1).unwrap(), 2);
        // Simulate a remote producer's FINISH frame: it decrements every
        // queue on this node (what the page server does on receipt).
        for q in r.edge_queues(1).unwrap() {
            q.writer_finished(EndReason::ScanExhausted);
        }
        assert_eq!(r.producers_remaining(1).unwrap(), 1);
    }

    #[test]
    fn stats_count_transfers() {
        let r = registry_with(vec![EdgeSpec::local(1, 1, RoutePolicy::Single, 1)]);
        let mut w = r.writer(1, 0, None).unwrap();
        w.push(page(vec![1, 2, 3])).unwrap();
        w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
        let s = r.stats();
        assert_eq!(s.pages, 1);
        assert!(s.bytes > 0);
    }
}
