//! Elastic exchange buffers (paper §4.2.2).
//!
//! An [`ElasticQueue`] is one per-(consumer task, partition) page buffer of a
//! shuffle exchange: multi-producer (every task of the upstream stage writes
//! into it), single-consumer, bounded, and blocking on both sides. Capacity
//! starts at **one page** and grows — doubling, up to the configured limit —
//! whenever the consumer pulls from a buffer it finds full, i.e. when the
//! buffer (not the producer) is what limits throughput. That is the paper's
//! consumer-side resize, applied on demand instead of on a timer.
//!
//! Blocking waits optionally yield a compute-slot [`Semaphore`] while parked
//! (see `accordion-cluster`): a producer blocked on a full buffer, or a
//! consumer blocked on an empty one, hands its slot to a runnable task. This
//! is what makes capacity-1 buffers deadlock-free on a pool with fewer
//! worker slots than tasks.
//!
//! Termination is in-band: each producer finishes the queue once (the
//! [`crate::exchange::ExchangeWriter`] maps `Page::End` onto
//! [`ElasticQueue::writer_finished`]); when the last producer has finished
//! and the buffer is drained, pulls return an end page. Errors propagate by
//! [`ElasticQueue::poison`]ing the queue, which wakes and fails every
//! blocked endpoint.

use std::collections::VecDeque;
use std::sync::Arc;

use accordion_common::metrics::Counter;
use accordion_common::sync::{condvar_wait, Condvar, Mutex, Semaphore};
use accordion_common::{AccordionError, Result};
use accordion_data::page::{DataPage, EndReason, Page};

/// Capacity limits of every elastic buffer of an exchange.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeLimits {
    /// Starting capacity in pages (the paper uses 1).
    pub initial_pages: usize,
    /// Growth ceiling in pages; `None` grows without bound.
    pub max_pages: Option<usize>,
}

impl ExchangeLimits {
    /// The paper's default: start at one page, cap at `max_pages`.
    pub fn elastic(max_pages: Option<usize>) -> Self {
        ExchangeLimits {
            initial_pages: 1,
            max_pages,
        }
    }

    /// Effectively infinite buffers — producers never block. The serial
    /// in-process executor uses this: it runs a whole stage to completion
    /// before its consumer starts, so bounded buffers would self-deadlock.
    pub fn unbounded() -> Self {
        ExchangeLimits {
            initial_pages: usize::MAX,
            max_pages: None,
        }
    }
}

#[derive(Debug)]
struct QueueState {
    pages: VecDeque<Arc<DataPage>>,
    capacity: usize,
    max: Option<usize>,
    /// Producers that have not yet finished this queue.
    writers: u32,
    end_reason: EndReason,
    poison: Option<AccordionError>,
    /// Consumer went away (e.g. a LIMIT stopped pulling early): pushes are
    /// silently dropped so producers never block on a dead buffer.
    closed: bool,
}

/// One bounded, blocking, elastically-sized page buffer.
#[derive(Debug)]
pub struct ElasticQueue {
    state: Mutex<QueueState>,
    /// Signaled when a page or end-of-stream arrives.
    data: Condvar,
    /// Signaled when space frees up (or capacity grows).
    space: Condvar,
    pages_in: Counter,
    bytes_in: Counter,
    grow_events: Counter,
}

impl ElasticQueue {
    pub fn new(limits: ExchangeLimits, writers: u32) -> Self {
        ElasticQueue {
            state: Mutex::new(QueueState {
                pages: VecDeque::new(),
                capacity: limits.initial_pages.max(1),
                max: limits.max_pages,
                writers: writers.max(1),
                end_reason: EndReason::UpstreamFinished,
                poison: None,
                closed: false,
            }),
            data: Condvar::new(),
            space: Condvar::new(),
            pages_in: Counter::new(),
            bytes_in: Counter::new(),
            grow_events: Counter::new(),
        }
    }

    /// Enqueues one page, blocking while the buffer is full. `gate` (the
    /// scheduler's compute-slot semaphore, if any) is released for the
    /// duration of the wait and re-acquired before returning.
    pub fn push(&self, page: Arc<DataPage>, gate: Option<&Semaphore>) -> Result<()> {
        loop {
            let mut st = self.state.lock();
            if let Some(e) = &st.poison {
                return Err(e.clone());
            }
            if st.closed {
                // The consumer stopped pulling (end-signal direction of the
                // paper's shutdown protocol): drop the page, never block.
                return Ok(());
            }
            if st.pages.len() < st.capacity {
                self.pages_in.inc();
                self.bytes_in.add(page.byte_size() as u64);
                st.pages.push_back(page);
                self.data.notify_all();
                return Ok(());
            }
            // Full: park until the consumer makes room, yielding the
            // compute slot so a runnable task (the consumer, with luck)
            // can take it.
            if let Some(g) = gate {
                g.release();
            }
            while st.pages.len() >= st.capacity && st.poison.is_none() && !st.closed {
                st = condvar_wait(&self.space, st);
            }
            drop(st);
            if let Some(g) = gate {
                g.acquire();
            }
            // Re-check everything: capacity and poison may have changed
            // while the slot was being re-acquired.
        }
    }

    /// Dequeues the next page, blocking while the buffer is empty and
    /// producers remain. Returns an end page once the last producer has
    /// finished and the buffer is drained.
    pub fn pull(&self, gate: Option<&Semaphore>) -> Result<Page> {
        loop {
            let mut st = self.state.lock();
            if let Some(e) = &st.poison {
                return Err(e.clone());
            }
            if let Some(page) = st.pages.pop_front() {
                // The consumer found the buffer full: the buffer was the
                // bottleneck, so grow it (consumer-side demand, §4.2.2).
                if st.pages.len() + 1 >= st.capacity {
                    let grown = st.capacity.saturating_mul(2);
                    let grown = match st.max {
                        Some(m) => grown.min(m),
                        None => grown,
                    };
                    if grown > st.capacity {
                        st.capacity = grown;
                        self.grow_events.inc();
                    }
                }
                self.space.notify_all();
                return Ok(Page::Data(page));
            }
            if st.writers == 0 || st.closed {
                return Ok(Page::end(st.end_reason));
            }
            if let Some(g) = gate {
                g.release();
            }
            while st.pages.is_empty() && st.writers > 0 && st.poison.is_none() && !st.closed {
                st = condvar_wait(&self.data, st);
            }
            drop(st);
            if let Some(g) = gate {
                g.acquire();
            }
        }
    }

    /// Adds `n` producers to the queue — the re-parallelization path: a
    /// Source stage growing its task set mid-query registers the new tasks'
    /// writers before they push. Callers must guarantee the queue has not
    /// ended yet (the elasticity controller holds a writer lease on every
    /// elastic edge precisely so `writers` cannot reach zero while a retune
    /// is still possible).
    pub fn add_writers(&self, n: u32) {
        let mut st = self.state.lock();
        debug_assert!(
            st.writers > 0,
            "add_writers on an ended queue would resurrect a closed stream"
        );
        st.writers += n;
    }

    /// Producers that have not yet finished this queue.
    pub fn writers(&self) -> u32 {
        self.state.lock().writers
    }

    /// Marks one producer as finished. The last producer's `reason` becomes
    /// the end page consumers see after draining.
    pub fn writer_finished(&self, reason: EndReason) {
        let mut st = self.state.lock();
        st.writers = st.writers.saturating_sub(1);
        if st.writers == 0 {
            st.end_reason = reason;
        }
        self.data.notify_all();
    }

    /// Closes the consumer side: buffered pages are discarded and every
    /// current or future push is silently dropped. Called when a reader is
    /// dropped before draining (e.g. LIMIT satisfied mid-stream), so
    /// upstream tasks blocked on a full buffer unblock and run out.
    pub fn close_consumer(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        st.pages.clear();
        self.data.notify_all();
        self.space.notify_all();
    }

    /// True once the consumer side has gone away (see
    /// [`ElasticQueue::close_consumer`]). Writers use this to skip
    /// simulated-network charges for pages that would be dropped anyway.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Fails the queue: every current and future push/pull returns `err`.
    pub fn poison(&self, err: AccordionError) {
        let mut st = self.state.lock();
        if st.poison.is_none() {
            st.poison = Some(err);
        }
        self.data.notify_all();
        self.space.notify_all();
    }

    /// Current capacity in pages.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Number of consumer-side capacity growths so far.
    pub fn grow_events(&self) -> u64 {
        self.grow_events.get()
    }

    /// Total pages ever enqueued.
    pub fn pages_in(&self) -> u64 {
        self.pages_in.get()
    }

    /// Total bytes ever enqueued.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::column::Column;
    use std::time::Duration;

    fn page(n: i64) -> Arc<DataPage> {
        Arc::new(DataPage::new(vec![Column::from_i64(vec![n])]))
    }

    #[test]
    fn fifo_and_end_after_writers_finish() {
        let q = ElasticQueue::new(ExchangeLimits::unbounded(), 2);
        q.push(page(1), None).unwrap();
        q.push(page(2), None).unwrap();
        q.writer_finished(EndReason::ScanExhausted);
        q.writer_finished(EndReason::UpstreamFinished);
        assert_eq!(q.pull(None).unwrap().row_count(), 1);
        assert_eq!(q.pull(None).unwrap().row_count(), 1);
        match q.pull(None).unwrap() {
            Page::End(e) => assert_eq!(e.reason, EndReason::UpstreamFinished),
            other => panic!("expected end page, got {other}"),
        }
    }

    #[test]
    fn bounded_push_blocks_until_pull() {
        let q = Arc::new(ElasticQueue::new(
            ExchangeLimits {
                initial_pages: 1,
                max_pages: Some(1),
            },
            1,
        ));
        q.push(page(1), None).unwrap();
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.push(page(2), None));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!h.is_finished(), "second push must block at capacity 1");
        assert_eq!(q.pull(None).unwrap().row_count(), 1);
        h.join().unwrap().unwrap();
        assert_eq!(q.capacity(), 1, "max 1 page forbids growth");
    }

    #[test]
    fn consumer_demand_grows_capacity() {
        let q = ElasticQueue::new(ExchangeLimits::elastic(Some(8)), 1);
        assert_eq!(q.capacity(), 1, "paper: buffers start at one page");
        q.push(page(1), None).unwrap();
        // Pulling from a full buffer doubles it: 1 → 2 → 4 → 8 (capped).
        q.pull(None).unwrap();
        assert_eq!(q.capacity(), 2);
        q.push(page(2), None).unwrap();
        q.push(page(3), None).unwrap();
        q.pull(None).unwrap();
        assert_eq!(q.capacity(), 4);
        assert_eq!(q.grow_events(), 2);
        // Pulling from a non-full buffer does not grow it.
        q.pull(None).unwrap();
        assert_eq!(q.capacity(), 4);
    }

    #[test]
    fn poison_wakes_blocked_sides() {
        let q = Arc::new(ElasticQueue::new(
            ExchangeLimits {
                initial_pages: 1,
                max_pages: Some(1),
            },
            1,
        ));
        q.push(page(1), None).unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.push(page(2), None))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.poison(AccordionError::Execution("boom".into()));
        assert!(producer.join().unwrap().is_err());
        assert!(q.pull(None).is_err());
        assert!(q.push(page(3), None).is_err());
    }

    #[test]
    fn close_consumer_unblocks_and_drops() {
        let q = Arc::new(ElasticQueue::new(
            ExchangeLimits {
                initial_pages: 1,
                max_pages: Some(1),
            },
            1,
        ));
        q.push(page(1), None).unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.push(page(2), None))
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close_consumer();
        // The blocked producer unblocks successfully; its page is dropped.
        producer.join().unwrap().unwrap();
        q.push(page(3), None).unwrap();
        assert_eq!(q.pages_in(), 1, "only the pre-close page was accepted");
        assert!(
            q.pull(None).unwrap().is_end(),
            "closed queue reads as ended"
        );
    }

    #[test]
    fn blocked_pull_yields_gate_permit() {
        let q = Arc::new(ElasticQueue::new(ExchangeLimits::elastic(None), 1));
        let gate = Arc::new(Semaphore::new(1));
        gate.acquire(); // the consumer "task" holds the only slot
        let consumer = {
            let (q, gate) = (q.clone(), gate.clone());
            std::thread::spawn(move || {
                let p = q.pull(Some(&gate)).unwrap();
                gate.release();
                p
            })
        };
        // While the consumer is parked on the empty queue, its slot must be
        // available for the producer.
        std::thread::sleep(Duration::from_millis(10));
        gate.acquire();
        q.push(page(7), None).unwrap();
        gate.release();
        assert_eq!(consumer.join().unwrap().row_count(), 1);
    }
}
