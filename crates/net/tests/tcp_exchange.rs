//! Cross-node exchange over the real TCP transport: two registries in one
//! process, each fronted by its own `PageServer`, simulating a two-node
//! fleet. Exercises hybrid local/remote routing, writer accounting via
//! FINISH frames, credit backpressure, growth broadcasts and poison
//! propagation.

use std::sync::Arc;

use accordion_common::config::NetworkConfig;
use accordion_common::AccordionError;
use accordion_data::column::Column;
use accordion_data::page::{DataPage, EndReason, Page};
use accordion_net::{
    ConsumerLoc, EdgeSpec, ExchangeRegistry, ExchangeTopology, ExchangeWriter, NicModel,
    PageServer, RoutePolicy, TcpExchangeWriter,
};

fn page(keys: Vec<i64>) -> Page {
    Page::data(DataPage::new(vec![Column::from_i64(keys)]))
}

/// Roomy buffers for the single-threaded tests: writers run to completion
/// before anyone pulls, so pushes must never block on capacity.
fn roomy() -> NetworkConfig {
    NetworkConfig::builder().buffer_pages(64, None).build()
}

fn drain(reader: &mut dyn accordion_net::ExchangeReader) -> Vec<i64> {
    let mut out = Vec::new();
    loop {
        match reader.pull().unwrap() {
            Page::End(_) => return out,
            Page::Data(p) => out.extend(p.column(0).as_i64().unwrap()),
        }
    }
}

/// A two-node fleet for one edge: node A owns consumer slot 0 and node B
/// owns slot 1. Both registries declare the same global edge, each marking
/// the other node's slot remote.
struct Fleet {
    server_a: Arc<PageServer>,
    server_b: Arc<PageServer>,
    registry_a: Arc<ExchangeRegistry>,
    registry_b: Arc<ExchangeRegistry>,
}

fn fleet(query: u64, producers: u32, policy: RoutePolicy, network: &NetworkConfig) -> Fleet {
    let server_a = PageServer::bind("127.0.0.1:0").unwrap();
    let server_b = PageServer::bind("127.0.0.1:0").unwrap();
    let addr_a = server_a.local_addr();
    let addr_b = server_b.local_addr();
    let spec = |mine: usize, other: &str| EdgeSpec {
        stage: 1,
        producers,
        policy: policy.clone(),
        consumers: (0..2)
            .map(|slot| {
                if slot == mine {
                    ConsumerLoc::Local
                } else {
                    ConsumerLoc::Remote(other.to_string())
                }
            })
            .collect(),
        leased: false,
    };
    let topo_a = ExchangeTopology::new(query)
        .peer(addr_b.clone())
        .edge(spec(0, &addr_b));
    let topo_b = ExchangeTopology::new(query)
        .peer(addr_a.clone())
        .edge(spec(1, &addr_a));
    let registry_a = ExchangeRegistry::build(&topo_a, network, NicModel::unlimited()).unwrap();
    let registry_b = ExchangeRegistry::build(&topo_b, network, NicModel::unlimited()).unwrap();
    server_a.register(query, registry_a.clone());
    server_b.register(query, registry_b.clone());
    Fleet {
        server_a,
        server_b,
        registry_a,
        registry_b,
    }
}

#[test]
fn hash_edge_spans_two_nodes_without_loss() {
    let network = roomy();
    let f = fleet(
        7,
        2,
        RoutePolicy::Hash {
            keys: vec![0],
            partitions: 2,
        },
        &network,
    );
    // One producer per node, each emitting half the keyspace: every page is
    // hash-split across the local slot and the remote one.
    let mut w_a = f.registry_a.writer(1, 0, None).unwrap();
    let mut w_b = f.registry_b.writer(1, 1, None).unwrap();
    w_a.push(page((0..50).collect())).unwrap();
    w_b.push(page((50..100).collect())).unwrap();
    w_a.push(Page::end(EndReason::ScanExhausted)).unwrap();
    w_b.push(Page::end(EndReason::ScanExhausted)).unwrap();

    let mut r_a = f.registry_a.reader(1, 0, None).unwrap();
    let mut r_b = f.registry_b.reader(1, 1, None).unwrap();
    let got_a = drain(r_a.as_mut());
    let got_b = drain(r_b.as_mut());
    assert!(
        !got_a.is_empty() && !got_b.is_empty(),
        "both partitions used"
    );
    let mut all = got_a.clone();
    all.extend(&got_b);
    all.sort_unstable();
    assert_eq!(
        all,
        (0..100).collect::<Vec<_>>(),
        "no row lost or duplicated"
    );
    // Keys are partitioned consistently across nodes: the same key never
    // lands on both sides.
    assert!(got_a.iter().all(|k| !got_b.contains(k)));

    f.server_a.shutdown();
    f.server_b.shutdown();
}

#[test]
fn broadcast_reaches_remote_consumers_and_ends_cleanly() {
    let network = roomy();
    let f = fleet(8, 1, RoutePolicy::Single, &network);
    // Single producer on node A broadcasting to both slots.
    let mut w = f.registry_a.writer(1, 0, None).unwrap();
    w.push(page(vec![1, 2, 3])).unwrap();
    w.push(Page::end(EndReason::UpstreamFinished)).unwrap();
    let mut r_a = f.registry_a.reader(1, 0, None).unwrap();
    let mut r_b = f.registry_b.reader(1, 1, None).unwrap();
    assert_eq!(drain(r_a.as_mut()), vec![1, 2, 3]);
    assert_eq!(drain(r_b.as_mut()), vec![1, 2, 3], "remote copy intact");
    f.server_a.shutdown();
    f.server_b.shutdown();
}

#[test]
fn remote_producer_with_no_data_still_closes_the_edge() {
    // Node B's producer ends without routing a single page to node A: the
    // FINISH frame alone must decrement A's writer accounting, or A's
    // reader would wait forever.
    let network = roomy();
    let f = fleet(9, 2, RoutePolicy::RoundRobin { partitions: 2 }, &network);
    let mut w_a = f.registry_a.writer(1, 0, None).unwrap();
    let mut w_b = f.registry_b.writer(1, 1, None).unwrap();
    w_a.push(page(vec![42])).unwrap(); // rr slot 0 → local on A
    w_a.push(Page::end(EndReason::ScanExhausted)).unwrap();
    w_b.push(Page::end(EndReason::ScanExhausted)).unwrap(); // no data at all
    let mut r_a = f.registry_a.reader(1, 0, None).unwrap();
    assert_eq!(drain(r_a.as_mut()), vec![42]);
    f.server_a.shutdown();
    f.server_b.shutdown();
}

#[test]
fn credit_window_survives_a_tight_buffer() {
    // One-page buffers: the sink's credit window collapses to one frame in
    // flight, so every page waits for the previous push to be consumed.
    // 200 pages through that window must all arrive, in order. The edge's
    // only consumer slot lives on node A; the producer on node B is
    // remote-only.
    let network = NetworkConfig::builder().fixed_buffers(1).build();
    let server_a = PageServer::bind("127.0.0.1:0").unwrap();
    let topo_a = ExchangeTopology::new(10).edge(EdgeSpec::local(1, 1, RoutePolicy::Single, 1));
    let registry_a = ExchangeRegistry::build(&topo_a, &network, NicModel::unlimited()).unwrap();
    server_a.register(10, registry_a.clone());
    let topo_b = ExchangeTopology::new(10).edge(EdgeSpec {
        stage: 1,
        producers: 1,
        policy: RoutePolicy::Single,
        consumers: vec![ConsumerLoc::Remote(server_a.local_addr())],
        leased: false,
    });
    let registry_b = ExchangeRegistry::build(&topo_b, &network, NicModel::unlimited()).unwrap();
    let producer = std::thread::spawn(move || {
        let mut w = registry_b.writer(1, 0, None).unwrap();
        for i in 0..200 {
            w.push(page(vec![i])).unwrap();
        }
        w.push(Page::end(EndReason::ScanExhausted)).unwrap();
    });
    let mut r_a = registry_a.reader(1, 0, None).unwrap();
    let got_a = drain(r_a.as_mut());
    assert_eq!(got_a, (0..200).collect::<Vec<_>>(), "ordered, complete");
    producer.join().unwrap();
    server_a.shutdown();
}

#[test]
fn add_producers_broadcast_reaches_the_peer() {
    let network = roomy();
    let f = fleet(11, 1, RoutePolicy::Single, &network);
    assert_eq!(f.registry_b.producers_remaining(1).unwrap(), 1);
    // Growth initiated on node A must be acknowledged by node B before
    // add_producers returns.
    f.registry_a.add_producers(1, 2).unwrap();
    assert_eq!(f.registry_b.producers_remaining(1).unwrap(), 3);
    assert_eq!(f.registry_a.producers_remaining(1).unwrap(), 3);
    // All three producers finish (two on A, one grown on B); both readers
    // see a clean end.
    for _ in 0..2 {
        let mut w = f.registry_a.writer(1, 0, None).unwrap();
        w.push(Page::end(EndReason::ScanExhausted)).unwrap();
    }
    let mut w = f.registry_b.writer(1, 2, None).unwrap();
    w.push(page(vec![5])).unwrap();
    w.push(Page::end(EndReason::ScanExhausted)).unwrap();
    let mut r_a = f.registry_a.reader(1, 0, None).unwrap();
    assert_eq!(drain(r_a.as_mut()), vec![5]);
    f.server_a.shutdown();
    f.server_b.shutdown();
}

#[test]
fn poison_propagates_across_nodes() {
    let network = roomy();
    let f = fleet(12, 2, RoutePolicy::Single, &network);
    f.registry_a
        .poison(AccordionError::Execution("node A task failed".into()));
    // Node B's endpoints must observe the failure (the control broadcast is
    // synchronous: poison() returns after the frame is written, and the
    // server applies frames in order per connection — but a fresh
    // connection races, so poll briefly).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        if f.registry_b.poison_error().is_some() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "poison never reached node B"
        );
        std::thread::yield_now();
    }
    let mut r_b = f.registry_b.reader(1, 1, None).unwrap();
    let err = r_b.pull().unwrap_err();
    assert!(err.to_string().contains("node A task failed"), "{err}");
    f.server_a.shutdown();
    f.server_b.shutdown();
}

#[test]
fn standalone_tcp_writer_feeds_a_remote_edge() {
    // The named transport endpoint: a TcpExchangeWriter with no local
    // registry at all, pushing into node A's edge from outside.
    let network = roomy();
    let server = PageServer::bind("127.0.0.1:0").unwrap();
    let topo = ExchangeTopology::new(13).edge(EdgeSpec::local(1, 1, RoutePolicy::Single, 1));
    let registry = ExchangeRegistry::build(&topo, &network, NicModel::unlimited()).unwrap();
    server.register(13, registry.clone());
    let mut w = TcpExchangeWriter::connect(
        &server.local_addr(),
        13,
        1,
        RoutePolicy::Single,
        1,
        &network,
        None,
    )
    .unwrap();
    w.push(page(vec![9, 8, 7])).unwrap();
    w.push(Page::end(EndReason::ScanExhausted)).unwrap();
    let mut r = registry.reader(1, 0, None).unwrap();
    assert_eq!(drain(r.as_mut()), vec![9, 8, 7]);
    server.shutdown();
}

#[test]
fn unknown_query_is_rejected_with_an_error_frame() {
    let network = NetworkConfig::builder().connect_timeout_ms(2_000).build();
    let server = PageServer::bind("127.0.0.1:0").unwrap();
    // No registry registered for query 99: the first send (or the finish)
    // must surface an error, not hang. The HELLO itself succeeds (the
    // server replies asynchronously), so push until the ERR lands.
    let mut w = TcpExchangeWriter::connect(
        &server.local_addr(),
        99,
        1,
        RoutePolicy::Single,
        1,
        &network,
        None,
    )
    .unwrap();
    let mut failed = false;
    for i in 0..10_000 {
        if w.push(page(vec![i])).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "unregistered query must fail the producer");
    server.shutdown();
}

#[test]
fn surplus_credit_does_not_lose_the_finish_frame() {
    // Two local and two remote producers feed one tight consumer slot.
    // Capacity doubling hands the sinks surplus credit, so they finish with
    // CREDIT frames still unread on the wire — the FINISH round trip must
    // drain them, or closing the socket would RST away the server's unread
    // frames and the edge's writer accounting would never reach zero.
    let network = NetworkConfig::default();
    let server = PageServer::bind("127.0.0.1:0").unwrap();
    let topo_a = ExchangeTopology::new(50).edge(EdgeSpec::local(0, 4, RoutePolicy::Single, 1));
    let reg_a = ExchangeRegistry::build(&topo_a, &network, NicModel::unlimited()).unwrap();
    server.register(50, reg_a.clone());
    let topo_b = ExchangeTopology::new(50).edge(EdgeSpec {
        stage: 0,
        producers: 4,
        policy: RoutePolicy::Single,
        consumers: vec![ConsumerLoc::Remote(server.local_addr())],
        leased: false,
    });
    let reg_b = ExchangeRegistry::build(&topo_b, &network, NicModel::unlimited()).unwrap();
    let mut handles = Vec::new();
    for (task, reg) in [(0u32, &reg_a), (1, &reg_b), (2, &reg_a), (3, &reg_b)] {
        let reg = reg.clone();
        handles.push(std::thread::spawn(move || {
            let mut w = reg.writer(0, task, None).unwrap();
            for i in 0..20 {
                w.push(page(vec![i])).unwrap();
            }
            w.push(Page::end(EndReason::ScanExhausted)).unwrap();
        }));
    }
    let mut reader = reg_a.reader(0, 0, None).unwrap();
    let mut rows = 0;
    loop {
        match reader.pull().unwrap() {
            Page::End(_) => break,
            Page::Data(p) => rows += p.row_count(),
        }
    }
    assert_eq!(rows, 80, "every producer's pages arrived exactly once");
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}
