//! Strongly-typed identifiers.
//!
//! The distributed execution plan is addressed exactly as in the paper:
//! a query contains stages, a stage contains tasks (`TaskId` = stage number +
//! task sequence number, printed `3_0` like Presto/Accordion), a task runs
//! pipelines, and each pipeline spawns drivers. Task output buffers are
//! addressed by `BufferId`, which equals the *downstream* task's sequence
//! number (paper §2, Fig 5).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Globally unique query identifier.
///
/// Monotonic within a process; the display form mimics the UI naming in the
/// paper (`#QUERY-...`) without the timestamp component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl QueryId {
    /// Allocates the next process-wide query id.
    pub fn next() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        QueryId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query-{}", self.0)
    }
}

/// Stage number inside a query (0 is the output/root stage, as in Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub u32);

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A task: the smallest unit of distributed execution. `TaskId { stage: 3,
/// seq: 0 }` prints as `3_0`, matching the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId {
    pub stage: StageId,
    pub seq: u32,
}

impl TaskId {
    pub fn new(stage: StageId, seq: u32) -> Self {
        TaskId { stage, seq }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.stage.0, self.seq)
    }
}

/// Pipeline index inside a task (assigned by the pipeline splitter, Fig 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipelineId(pub u32);

impl fmt::Display for PipelineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A driver instance: `(pipeline, instance)` inside one task. Drivers are the
/// smallest unit of scheduling and execution (paper §2 "Driver Execution").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DriverId {
    pub pipeline: PipelineId,
    pub instance: u32,
}

impl fmt::Display for DriverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/d{}", self.pipeline, self.instance)
    }
}

/// Output buffer id. Downstream task `n_k` pulls pages from buffer id `k` of
/// each upstream task (paper §2 "Task Execution"). The buffer-id array of a
/// task output buffer grows/shrinks as the downstream stage's DOP changes
/// (paper §4.2.1, Fig 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u32);

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A compute or storage node of the (simulated) cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Identifier of a data split (a chunk of a base table on some node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SplitId(pub u64);

impl fmt::Display for SplitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "split-{}", self.0)
    }
}

/// Identifier of a node in a logical or physical query plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanNodeId(pub u32);

impl PlanNodeId {
    pub fn new(v: u32) -> Self {
        PlanNodeId(v)
    }
}

impl fmt::Display for PlanNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Simple process-wide monotonic id generator, used wherever a fresh
/// `PlanNodeId`/`SplitId` sequence is needed without threading state.
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    pub const fn new() -> Self {
        IdGen {
            next: AtomicU64::new(0),
        }
    }

    pub fn next_u64(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    pub fn next_u32(&self) -> u32 {
        self.next_u64() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_display_matches_paper_convention() {
        let t = TaskId::new(StageId(3), 0);
        assert_eq!(t.to_string(), "3_0");
        let t = TaskId::new(StageId(4), 1);
        assert_eq!(t.to_string(), "4_1");
    }

    #[test]
    fn query_ids_are_unique_and_monotonic() {
        let a = QueryId::next();
        let b = QueryId::next();
        assert!(b.0 > a.0);
    }

    #[test]
    fn id_gen_is_monotonic() {
        let g = IdGen::new();
        let a = g.next_u64();
        let b = g.next_u64();
        let c = g.next_u64();
        assert_eq!((b, c), (a + 1, a + 2));
    }

    #[test]
    fn ids_order_by_components() {
        assert!(TaskId::new(StageId(1), 5) < TaskId::new(StageId(2), 0));
        assert!(TaskId::new(StageId(1), 0) < TaskId::new(StageId(1), 1));
        assert!(StageId(0) < StageId(1));
        assert!(BufferId(0) < BufferId(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(StageId(2).to_string(), "S2");
        assert_eq!(BufferId(3).to_string(), "b3");
        assert_eq!(NodeId(1).to_string(), "node-1");
        assert_eq!(PipelineId(2).to_string(), "P2");
        assert_eq!(
            DriverId {
                pipeline: PipelineId(1),
                instance: 4
            }
            .to_string(),
            "P1/d4"
        );
    }
}
