//! Clock abstraction.
//!
//! All time-dependent engine logic (rate meters, elastic-buffer resize
//! periods, the what-if predictor's `T_remain = V_remain / R_consume`, the
//! auto-tuner's deadlines) reads time through [`Clock`] so that unit tests can
//! drive a [`ManualClock`] deterministically while the engine runs on
//! [`SystemClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic clock measured in nanoseconds from an arbitrary epoch.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since the clock's epoch.
    fn now_nanos(&self) -> u64;

    /// Milliseconds since the clock's epoch.
    fn now_millis(&self) -> u64 {
        self.now_nanos() / 1_000_000
    }

    /// Duration since the clock's epoch.
    fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.now_nanos())
    }
}

/// Shared handle to a clock.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock implementation backed by [`Instant`].
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }

    /// Convenience constructor returning an `Arc<dyn Clock>`.
    pub fn shared() -> SharedClock {
        Arc::new(SystemClock::new())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// Deterministic, manually-advanced clock for tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        ManualClock {
            nanos: AtomicU64::new(0),
        }
    }

    pub fn shared() -> Arc<ManualClock> {
        Arc::new(ManualClock::new())
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Advances the clock by whole milliseconds.
    pub fn advance_millis(&self, ms: u64) {
        self.advance(Duration::from_millis(ms));
    }

    /// Sets the absolute time in nanoseconds.
    pub fn set_nanos(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance_millis(5);
        assert_eq!(c.now_millis(), 5);
        c.advance(Duration::from_micros(1500));
        assert_eq!(c.now_nanos(), 5_000_000 + 1_500_000);
        c.set_nanos(42);
        assert_eq!(c.now_nanos(), 42);
    }

    #[test]
    fn trait_object_usable() {
        let c: SharedClock = ManualClock::shared();
        assert_eq!(c.now_millis(), 0);
        assert_eq!(c.elapsed(), Duration::ZERO);
    }
}
