//! Lock-free metrics primitives.
//!
//! The runtime information collector (paper §5.1, Fig 18) aggregates
//! per-task counters into per-stage and per-query views every collection
//! period. These primitives are designed to be updated from driver threads
//! with `Relaxed` atomics and read from the collector without locking.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::clock::SharedClock;
use crate::sync::Mutex;

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Windowed rate meter: computes events/second over the interval between the
/// last two `sample()` calls. Writers call [`RateMeter::record`]; one reader
/// (the info collector) periodically calls [`RateMeter::sample`].
#[derive(Debug)]
pub struct RateMeter {
    clock: SharedClock,
    total: Counter,
    last_total: AtomicU64,
    last_nanos: AtomicU64,
    /// Rate computed at the previous sample, microunits/second
    /// (events·1e-6/s) to keep fractional rates in an atomic.
    last_rate_micro: AtomicU64,
}

impl RateMeter {
    pub fn new(clock: SharedClock) -> Self {
        let now = clock.now_nanos();
        RateMeter {
            clock,
            total: Counter::new(),
            last_total: AtomicU64::new(0),
            last_nanos: AtomicU64::new(now),
            last_rate_micro: AtomicU64::new(0),
        }
    }

    /// Records `n` events (e.g. rows or bytes produced).
    #[inline]
    pub fn record(&self, n: u64) {
        self.total.add(n);
    }

    /// Lifetime total of recorded events.
    pub fn total(&self) -> u64 {
        self.total.get()
    }

    /// Recomputes and returns the rate (events/second) since the previous
    /// sample. Returns the last known rate when called again within < 1 µs.
    pub fn sample(&self) -> f64 {
        let now = self.clock.now_nanos();
        let prev_ns = self.last_nanos.swap(now, Ordering::Relaxed);
        if now <= prev_ns + 1_000 {
            // Too close to the previous sample to measure; keep the old rate
            // and restore the previous timestamp so the next interval is not
            // truncated.
            self.last_nanos.store(prev_ns, Ordering::Relaxed);
            return self.last_rate_micro.load(Ordering::Relaxed) as f64 / 1e6;
        }
        let cur_total = self.total.get();
        let prev_total = self.last_total.swap(cur_total, Ordering::Relaxed);
        let dt_sec = (now - prev_ns) as f64 / 1e9;
        let rate = (cur_total.saturating_sub(prev_total)) as f64 / dt_sec;
        self.last_rate_micro
            .store((rate * 1e6) as u64, Ordering::Relaxed);
        rate
    }

    /// Rate computed at the most recent [`RateMeter::sample`] call.
    pub fn last_rate(&self) -> f64 {
        self.last_rate_micro.load(Ordering::Relaxed) as f64 / 1e6
    }
}

/// One point of a recorded time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePoint {
    /// Elapsed time at the sample, relative to the series' creation.
    pub at: Duration,
    pub value: f64,
}

/// Append-only time series used by the experiment harness to record
/// per-stage throughput curves (the paper's Figures 23–30).
#[derive(Debug)]
pub struct TimeSeries {
    clock: SharedClock,
    start_nanos: u64,
    points: Mutex<Vec<TimePoint>>,
}

impl TimeSeries {
    pub fn new(clock: SharedClock) -> Self {
        let start_nanos = clock.now_nanos();
        TimeSeries {
            clock,
            start_nanos,
            points: Mutex::new(Vec::new()),
        }
    }

    pub fn shared(clock: SharedClock) -> Arc<Self> {
        Arc::new(Self::new(clock))
    }

    /// Appends a sample with the current timestamp.
    pub fn push(&self, value: f64) {
        let at = Duration::from_nanos(self.clock.now_nanos().saturating_sub(self.start_nanos));
        self.points.lock().push(TimePoint { at, value });
    }

    /// Snapshot of all recorded points.
    pub fn points(&self) -> Vec<TimePoint> {
        self.points.lock().clone()
    }

    /// Most recent point, if any — what the elasticity controller's what-if
    /// predictor reads as the live sample.
    pub fn last(&self) -> Option<TimePoint> {
        self.points.lock().last().copied()
    }

    pub fn len(&self) -> usize {
        self.points.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum recorded value (0.0 when empty).
    pub fn max_value(&self) -> f64 {
        self.points
            .lock()
            .iter()
            .map(|p| p.value)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::time::Duration;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn rate_meter_measures_window_rate() {
        let clock = ManualClock::shared();
        let m = RateMeter::new(clock.clone());
        m.record(100);
        clock.advance(Duration::from_secs(1));
        let r = m.sample();
        assert!((r - 100.0).abs() < 1e-9, "rate was {r}");
        // Second window: 50 events over 2 seconds = 25/s.
        m.record(50);
        clock.advance(Duration::from_secs(2));
        let r = m.sample();
        assert!((r - 25.0).abs() < 1e-9, "rate was {r}");
        assert_eq!(m.total(), 150);
        assert!((m.last_rate() - 25.0).abs() < 1e-3);
    }

    #[test]
    fn rate_meter_survives_zero_interval() {
        let clock = ManualClock::shared();
        let m = RateMeter::new(clock.clone());
        m.record(10);
        clock.advance(Duration::from_secs(1));
        let r1 = m.sample();
        // No time passes; sample again must not divide by zero and keeps rate.
        let r2 = m.sample();
        assert_eq!(r1, r2);
    }

    #[test]
    fn time_series_records_relative_times() {
        let clock = ManualClock::shared();
        clock.advance_millis(500); // epoch offset before creation
        let ts = TimeSeries::new(clock.clone());
        ts.push(1.0);
        clock.advance_millis(100);
        ts.push(2.0);
        let pts = ts.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].at, Duration::ZERO);
        assert_eq!(pts[1].at, Duration::from_millis(100));
        assert_eq!(ts.max_value(), 2.0);
        assert!(!ts.is_empty());
        assert_eq!(ts.last(), Some(pts[1]));
    }
}
