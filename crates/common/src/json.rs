//! Zero-dependency JSON value model, writer and parser.
//!
//! The bench harness (`accordion-bench`) persists every run as a
//! `BENCH_<name>.json` file so speedups and regressions stay visible across
//! the repo's history, and the CI regression gate reads those files back.
//! The workspace is dependency-free by design, so this module implements the
//! small JSON subset the harness needs from scratch:
//!
//! * [`Json`] — a value tree. Objects keep **insertion order** (a
//!   `Vec<(String, Json)>`, not a map), which is what makes the emitted
//!   files byte-deterministic for a fixed input.
//! * [`Json::to_string_compact`] / [`Json::to_string_pretty`] — writers.
//!   Numbers are written as integers when exactly representable (`3`, not
//!   `3.0`); non-finite floats (`NaN`, `±inf`) are written as `null`, the
//!   common lossy-but-valid convention.
//! * [`Json::parse`] — a strict recursive-descent parser (UTF-8 input,
//!   `\uXXXX` escapes with surrogate pairs, no trailing garbage).

use std::fmt::Write as _;

use crate::{AccordionError, Result};

/// Largest integer magnitude exactly representable in an `f64`.
const MAX_SAFE_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64` (the JSON number model).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order — serialization is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Number from an unsigned counter.
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Number from a float (non-finite values serialize as `null`).
    pub fn f64(v: f64) -> Json {
        Json::Num(v)
    }

    /// String value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Appends a field to an object; panics if `self` is not an object
    /// (builder misuse, not data-dependent).
    pub fn set(&mut self, key: impl Into<String>, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: impl Into<String>, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Field of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer (counters, ids).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= MAX_SAFE_INT => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline — the format of the committed `BENCH_*.json` baselines.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(parse_err(pos, "trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity literal; null keeps the file valid while
        // staying visibly "not a number" to readers.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() <= MAX_SAFE_INT {
        let _ = write!(out, "{}", v as i64);
    } else {
        // Rust's shortest-roundtrip Display is deterministic.
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse_err(pos: usize, msg: &str) -> AccordionError {
    AccordionError::Parse(format!("json: {msg} at byte {pos}"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(parse_err(*pos, "unexpected token"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(parse_err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(parse_err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(parse_err(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(parse_err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| parse_err(start, "invalid utf-8 in number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| parse_err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(parse_err(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(parse_err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: the low half must follow.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(parse_err(*pos, "unpaired surrogate"));
                            }
                            let lo = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(parse_err(*pos, "invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| parse_err(*pos, "invalid code point"))?,
                        );
                    }
                    _ => return Err(parse_err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| parse_err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: usize) -> Result<u32> {
    let end = pos + 4;
    if end > bytes.len() {
        return Err(parse_err(pos, "truncated \\u escape"));
    }
    let text =
        std::str::from_utf8(&bytes[pos..end]).map_err(|_| parse_err(pos, "invalid \\u escape"))?;
    u32::from_str_radix(text, 16).map_err(|_| parse_err(pos, "invalid \\u escape"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_deterministic_objects() {
        let doc = Json::obj()
            .with("b", Json::u64(2))
            .with(
                "a",
                Json::Arr(vec![Json::Num(1.5), Json::Null, Json::Bool(true)]),
            )
            .with("s", Json::str("hi\n\"there\""));
        let compact = doc.to_string_compact();
        assert_eq!(
            compact, r#"{"b":2,"a":[1.5,null,true],"s":"hi\n\"there\""}"#,
            "insertion order and escapes must be stable"
        );
        // Writing twice is byte-identical.
        assert_eq!(compact, doc.to_string_compact());
    }

    #[test]
    fn integers_print_without_fraction_and_nonfinite_as_null() {
        assert_eq!(Json::u64(12345).to_string_compact(), "12345");
        assert_eq!(Json::f64(0.25).to_string_compact(), "0.25");
        assert_eq!(Json::f64(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::f64(f64::INFINITY).to_string_compact(), "null");
        assert_eq!(Json::f64(-3.0).to_string_compact(), "-3");
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let doc = Json::obj()
            .with("name", Json::str("bench"))
            .with("values", Json::Arr(vec![Json::u64(1), Json::f64(2.5)]))
            .with(
                "nested",
                Json::obj()
                    .with("empty_arr", Json::Arr(vec![]))
                    .with("empty_obj", Json::obj()),
            );
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed, doc);
        }
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = Json::parse(r#""aA\n\té😀""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\té😀"));
        // Escaped output re-parses to the same string.
        let s = Json::str("tab\t\"q\"\u{1}");
        assert_eq!(Json::parse(&s.to_string_compact()).unwrap(), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse(r#""\ud800x""#).is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::obj()
            .with("n", Json::u64(7))
            .with("f", Json::f64(1.5))
            .with("s", Json::str("x"))
            .with("b", Json::Bool(true))
            .with("a", Json::Arr(vec![Json::Null]));
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("f").unwrap().as_u64(), None);
        assert_eq!(doc.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(doc.get("a").unwrap().as_arr().unwrap()[0].is_null());
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.as_obj().unwrap().len(), 5);
        assert!(Json::Null.get("x").is_none());
    }
}
