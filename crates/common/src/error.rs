//! Engine-wide error type.

use std::fmt;

use crate::id::{QueryId, StageId, TaskId};

/// Engine-wide result alias.
pub type Result<T, E = AccordionError> = std::result::Result<T, E>;

/// All errors surfaced by the Accordion engine.
///
/// The tuning-related variants mirror the paper's DOP tuning request filter
/// (§5.2): requests can be rejected because the target already finished, or
/// because rebuilding join state would cost more than just letting the stage
/// run to completion.
#[derive(Debug, Clone, PartialEq)]
pub enum AccordionError {
    /// SQL text could not be tokenized/parsed.
    Parse(String),
    /// Query analysis failed (unknown table/column, type mismatch...).
    Analysis(String),
    /// Planning or optimization failure.
    Plan(String),
    /// Runtime execution failure inside an operator or driver.
    Execution(String),
    /// Storage layer failure (catalog, CSV decode, split resolution...).
    Storage(String),
    /// I/O error (file read/write), stringified to keep the enum `Clone`.
    Io(String),
    /// Scheduling failure (no nodes, unknown stage...).
    Schedule(String),
    /// Wire-codec failure: a page frame was truncated, corrupted, version
    /// mismatched, or carried an unexpected schema hash. Never a panic —
    /// every malformed byte stream decodes to this.
    Wire(String),
    /// A DOP tuning request was rejected by the request filter.
    TuningRejected(TuningRejection),
    /// Referenced query does not exist (or was garbage collected).
    UnknownQuery(QueryId),
    /// Referenced stage does not exist in the query.
    UnknownStage(QueryId, StageId),
    /// Referenced task does not exist.
    UnknownTask(TaskId),
    /// Internal invariant violation — a bug in the engine.
    Internal(String),
}

/// Why the tuning request filter (paper §5.2) rejected a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuningRejection {
    /// The query already finished.
    QueryFinished,
    /// The targeted stage already finished.
    StageFinished(StageId),
    /// Estimated remaining time is below the state-transfer (hash table
    /// rebuild) time, so the adjustment would waste resources.
    NotWorthRebuild {
        stage: StageId,
        /// Estimated remaining execution time, milliseconds.
        remaining_ms: u64,
        /// Estimated hash-table rebuild / state transfer time, milliseconds.
        rebuild_ms: u64,
    },
    /// The request does not change the DOP (a == b) or asks for DOP 0 on a
    /// stage that cannot be fully drained.
    NoOp,
    /// The stage's parallelism is fixed (e.g. final aggregation, output).
    FixedParallelism(StageId),
    /// The requested DOP exceeds cluster capacity.
    ExceedsCapacity { requested: u32, capacity: u32 },
}

impl fmt::Display for TuningRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuningRejection::QueryFinished => write!(f, "query already finished"),
            TuningRejection::StageFinished(s) => write!(f, "stage {s} already finished"),
            TuningRejection::NotWorthRebuild {
                stage,
                remaining_ms,
                rebuild_ms,
            } => write!(
                f,
                "stage {stage}: remaining {remaining_ms}ms < rebuild {rebuild_ms}ms, \
                 tuning would waste resources"
            ),
            TuningRejection::NoOp => write!(f, "request does not change the DOP"),
            TuningRejection::FixedParallelism(s) => {
                write!(f, "stage {s} has fixed parallelism")
            }
            TuningRejection::ExceedsCapacity {
                requested,
                capacity,
            } => write!(f, "requested DOP {requested} exceeds capacity {capacity}"),
        }
    }
}

impl fmt::Display for AccordionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccordionError::Parse(m) => write!(f, "parse error: {m}"),
            AccordionError::Analysis(m) => write!(f, "analysis error: {m}"),
            AccordionError::Plan(m) => write!(f, "planning error: {m}"),
            AccordionError::Execution(m) => write!(f, "execution error: {m}"),
            AccordionError::Storage(m) => write!(f, "storage error: {m}"),
            AccordionError::Io(m) => write!(f, "io error: {m}"),
            AccordionError::Schedule(m) => write!(f, "scheduling error: {m}"),
            AccordionError::Wire(m) => write!(f, "wire error: {m}"),
            AccordionError::TuningRejected(r) => write!(f, "tuning request rejected: {r}"),
            AccordionError::UnknownQuery(q) => write!(f, "unknown query {q}"),
            AccordionError::UnknownStage(q, s) => write!(f, "unknown stage {s} of {q}"),
            AccordionError::UnknownTask(t) => write!(f, "unknown task {t}"),
            AccordionError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for AccordionError {}

impl From<std::io::Error> for AccordionError {
    fn from(e: std::io::Error) -> Self {
        AccordionError::Io(e.to_string())
    }
}

impl AccordionError {
    /// True when the error is a tuning-filter rejection (expected, non-fatal).
    pub fn is_tuning_rejection(&self) -> bool {
        matches!(self, AccordionError::TuningRejected(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::StageId;

    #[test]
    fn display_rejections() {
        let r = TuningRejection::NotWorthRebuild {
            stage: StageId(1),
            remaining_ms: 1200,
            rebuild_ms: 3000,
        };
        let msg = AccordionError::TuningRejected(r).to_string();
        assert!(msg.contains("remaining 1200ms"));
        assert!(msg.contains("rebuild 3000ms"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: AccordionError = io.into();
        assert!(matches!(e, AccordionError::Io(_)));
        assert!(!e.is_tuning_rejection());
    }

    #[test]
    fn tuning_rejection_predicate() {
        let e = AccordionError::TuningRejected(TuningRejection::QueryFinished);
        assert!(e.is_tuning_rejection());
    }
}
