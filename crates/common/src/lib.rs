//! Common foundation types for the Accordion IQRE engine.
//!
//! This crate holds the vocabulary shared by every layer of the engine:
//!
//! * [`id`] — strongly-typed identifiers for queries, stages, tasks,
//!   pipelines, drivers, output buffers, cluster nodes and splits. The
//!   textual forms follow the paper's conventions (e.g. task `3_0` is task 0
//!   of stage 3).
//! * [`error`] — the engine-wide error enum and `Result` alias.
//! * [`config`] — engine/cluster configuration: node counts, driver thread
//!   pools, page sizing, buffer and network simulation parameters.
//! * [`clock`] — a clock abstraction so that time-dependent logic (rate
//!   meters, the what-if predictor, the auto-tuner) can be unit-tested with a
//!   manual clock and run in production against the wall clock.
//! * [`json`] — a zero-dependency JSON value model, deterministic writer
//!   and strict parser, used by the bench harness's `BENCH_*.json` files.
//! * [`metrics`] — lock-free counters, gauges, windowed rate meters and a
//!   time-series recorder used by the runtime information collector
//!   (paper §5.1, Fig 18).
//! * [`sync`] — poison-ignoring `Mutex`/`RwLock` wrappers over `std::sync`
//!   used throughout the engine (no external locking dependency).

pub mod clock;
pub mod config;
pub mod error;
pub mod id;
pub mod json;
pub mod metrics;
pub mod sync;

pub use clock::{Clock, ManualClock, SharedClock, SystemClock};
pub use config::{
    AdmissionConfig, AdmissionPolicy, ClusterConfig, ElasticityConfig, ElasticityMode,
    EngineConfig, NetworkConfig,
};
pub use error::{AccordionError, Result};
pub use id::{
    BufferId, DriverId, NodeId, PipelineId, PlanNodeId, QueryId, SplitId, StageId, TaskId,
};
pub use json::Json;
