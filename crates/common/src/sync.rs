//! Thin locking wrappers over `std::sync`.
//!
//! The engine runs driver threads that must never observe poisoned locks —
//! a panicking driver already aborts the query, so lock poisoning carries no
//! extra information. These wrappers expose the ergonomic `lock()`/`read()`/
//! `write()` API (no `Result`) and recover the guard from a poisoned lock,
//! which also keeps the engine dependency-free.

use std::sync::{self, LockResult};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn ignore_poison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Mutual-exclusion lock whose guard accessor never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// Reader-writer lock whose guard accessors never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A poisoned std mutex would error here; the wrapper recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
