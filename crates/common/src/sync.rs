//! Thin locking wrappers over `std::sync`.
//!
//! The engine runs driver threads that must never observe poisoned locks —
//! a panicking driver already aborts the query, so lock poisoning carries no
//! extra information. These wrappers expose the ergonomic `lock()`/`read()`/
//! `write()` API (no `Result`) and recover the guard from a poisoned lock,
//! which also keeps the engine dependency-free.

use std::sync::{self, LockResult};

pub use std::sync::{Condvar, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn ignore_poison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// [`Condvar::wait`] that recovers the guard from a poisoned lock, pairing
/// with [`Mutex`]'s poison-ignoring guards.
pub fn condvar_wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    ignore_poison(cv.wait(guard))
}

/// Mutual-exclusion lock whose guard accessor never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// Reader-writer lock whose guard accessors never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// Counting semaphore gating how many tasks may occupy a compute slot at
/// once. The cluster scheduler runs one thread per task but hands out only
/// `worker_threads` permits; a task blocked on exchange backpressure
/// releases its permit while waiting (see `accordion-net`), which is what
/// makes bounded exchange buffers deadlock-free on a fixed-size pool.
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    pub fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a permit is available, then takes it.
    pub fn acquire(&self) {
        let mut p = self.permits.lock();
        while *p == 0 {
            p = condvar_wait(&self.cv, p);
        }
        *p -= 1;
    }

    /// Returns a permit, waking one waiter.
    pub fn release(&self) {
        *self.permits.lock() += 1;
        self.cv.notify_one();
    }

    /// Permits currently available (diagnostic only — racy by nature).
    pub fn available(&self) -> usize {
        *self.permits.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A poisoned std mutex would error here; the wrapper recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn semaphore_gates_concurrency() {
        let sem = Arc::new(Semaphore::new(2));
        sem.acquire();
        sem.acquire();
        assert_eq!(sem.available(), 0);
        // A third acquire must block until someone releases.
        let s2 = sem.clone();
        let h = std::thread::spawn(move || {
            s2.acquire();
            s2.release();
        });
        std::thread::sleep(Duration::from_millis(10));
        assert!(!h.is_finished(), "third acquire should be blocked");
        sem.release();
        h.join().unwrap();
        sem.release();
        assert_eq!(sem.available(), 2);
    }
}
