//! Engine and cluster configuration.
//!
//! The defaults model the paper's testbed shrunk to a single process: the
//! paper used 1 coordinator + 10 compute + 10 storage nodes (c5.2xlarge,
//! 8 vCPU, 10 Gbps NIC). Here each "node" is a driver thread pool and the
//! NIC is a token bucket (see `accordion-net`).

/// Top-level engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub cluster: ClusterConfig,
    pub network: NetworkConfig,
    /// Target rows per page produced by scans and operators.
    pub page_rows: usize,
    /// Period of the coordinator's runtime-information collection
    /// (task-info fetchers, Fig 18), milliseconds.
    pub info_collection_period_ms: u64,
    /// Quantum: max pages a driver processes before yielding its thread.
    pub driver_quantum_pages: usize,
    /// Default stage DOP (tasks per stage) for newly scheduled queries.
    pub default_stage_dop: u32,
    /// Default task DOP (drivers per pipeline).
    pub default_task_dop: u32,
    /// Simulated cost of one control-plane request, milliseconds. The paper
    /// reports each RESTful request costs 1–10 ms; we charge a deterministic
    /// midpoint so scheduling overheads are reportable (§6.2). Set to 0 to
    /// disable control-plane cost simulation.
    pub control_request_cost_ms: u64,
    /// Enable the intermediate-data cache on join build inputs (Fig 17).
    pub intermediate_cache_enabled: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cluster: ClusterConfig::default(),
            network: NetworkConfig::default(),
            page_rows: 4096,
            info_collection_period_ms: 100,
            driver_quantum_pages: 8,
            default_stage_dop: 1,
            default_task_dop: 1,
            control_request_cost_ms: 0,
            intermediate_cache_enabled: true,
        }
    }
}

impl EngineConfig {
    /// A small configuration for unit/integration tests: 2 workers × 2
    /// threads, small pages, fast collection periods.
    pub fn for_tests() -> Self {
        EngineConfig {
            cluster: ClusterConfig {
                compute_nodes: 2,
                threads_per_worker: 2,
                storage_nodes: 2,
            },
            network: NetworkConfig {
                max_buffer_pages: Some(64),
                ..NetworkConfig::unlimited()
            },
            page_rows: 256,
            info_collection_period_ms: 20,
            driver_quantum_pages: 4,
            default_stage_dop: 1,
            default_task_dop: 1,
            control_request_cost_ms: 0,
            intermediate_cache_enabled: true,
        }
    }
}

/// Shape of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of compute (worker) nodes.
    pub compute_nodes: u32,
    /// Driver threads per worker node (paper nodes have 8 vCPUs).
    pub threads_per_worker: usize,
    /// Number of storage nodes holding table splits.
    pub storage_nodes: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            compute_nodes: 4,
            threads_per_worker: 4,
            storage_nodes: 4,
        }
    }
}

impl ClusterConfig {
    /// Total driver threads across the cluster — the ceiling for useful DOP.
    pub fn total_threads(&self) -> usize {
        self.compute_nodes as usize * self.threads_per_worker
    }
}

/// Parameters of the simulated data-plane network, including the limits of
/// the elastic exchange buffers that ride on it (`accordion-net`).
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// **Node-level** NIC bandwidth in bytes/second (`None` = unlimited).
    /// Shared by every query running on the node; the paper's nodes have
    /// 10 Gbps NICs.
    pub nic_bandwidth_bytes_per_sec: Option<u64>,
    /// Per-query carve-out of the node NIC in bytes/second (`None` = a
    /// query may use the whole node budget). With both set, a transfer is
    /// charged against its query's bucket first and the node bucket
    /// second, so one heavy shuffle cannot starve the fabric for every
    /// other query on the node.
    pub nic_per_query_bytes_per_sec: Option<u64>,
    /// One-way latency added to each page transfer, microseconds.
    pub link_latency_us: u64,
    /// Maximum bytes returned by one simulated exchange RPC response.
    pub max_response_bytes: usize,
    /// Initial capacity (in pages) of every elastic exchange buffer. The
    /// paper starts all buffers at the size of one page (§4.2.2).
    pub initial_buffer_pages: usize,
    /// Upper bound on elastic buffer capacity, in pages (`None` = buffers
    /// may grow without limit under consumer-side demand).
    pub max_buffer_pages: Option<usize>,
    /// TCP connect (and handshake) timeout for real network transports —
    /// the page exchange between worker processes and the query-server
    /// client — in milliseconds.
    pub connect_timeout_ms: u64,
    /// Read timeout for real network transports, milliseconds. `None`
    /// blocks indefinitely — the right default for the data plane, where an
    /// idle stream just means upstream has nothing to send yet; clients and
    /// control channels set a bound so a dead peer fails instead of
    /// hanging.
    pub read_timeout_ms: Option<u64>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nic_bandwidth_bytes_per_sec: None,
            nic_per_query_bytes_per_sec: None,
            link_latency_us: 0,
            max_response_bytes: 4 << 20,
            initial_buffer_pages: 1,
            max_buffer_pages: Some(256),
            connect_timeout_ms: 5_000,
            read_timeout_ms: None,
        }
    }
}

impl NetworkConfig {
    /// No bandwidth cap, no latency — pure shared-memory exchange.
    pub fn unlimited() -> Self {
        NetworkConfig::default()
    }

    /// Starts a [`NetworkConfigBuilder`] from the default (unlimited)
    /// configuration — the one way to shape the network: NIC caps, buffer
    /// limits and transport timeouts all hang off the builder.
    pub fn builder() -> NetworkConfigBuilder {
        NetworkConfigBuilder {
            config: NetworkConfig::default(),
        }
    }
}

/// Builder for [`NetworkConfig`]: replaces the former sprawl of
/// `with_*` constructors with one chainable surface.
///
/// ```
/// use accordion_common::config::NetworkConfig;
/// let net = NetworkConfig::builder()
///     .nic_mbps(50)
///     .per_query_nic_mbps(10)
///     .fixed_buffers(2)
///     .connect_timeout_ms(500)
///     .build();
/// assert_eq!(net.nic_bandwidth_bytes_per_sec, Some(50 * 1_000_000 / 8));
/// assert_eq!(net.max_buffer_pages, Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct NetworkConfigBuilder {
    config: NetworkConfig,
}

impl NetworkConfigBuilder {
    /// Cap each node's NIC at `mbps` megabits/second.
    pub fn nic_mbps(mut self, mbps: u64) -> Self {
        self.config.nic_bandwidth_bytes_per_sec = Some(mbps * 1_000_000 / 8);
        self
    }

    /// Cap each **query's** share of the node NIC at `mbps`
    /// megabits/second (see
    /// [`NetworkConfig::nic_per_query_bytes_per_sec`]).
    pub fn per_query_nic_mbps(mut self, mbps: u64) -> Self {
        self.config.nic_per_query_bytes_per_sec = Some(mbps * 1_000_000 / 8);
        self
    }

    /// One-way latency added to each page transfer, microseconds.
    pub fn link_latency_us(mut self, us: u64) -> Self {
        self.config.link_latency_us = us;
        self
    }

    /// Shape the elastic buffers: start at `initial` pages, grow up to
    /// `max` (`None` = unbounded).
    pub fn buffer_pages(mut self, initial: usize, max: Option<usize>) -> Self {
        assert!(initial > 0, "buffer capacity must be positive");
        self.config.initial_buffer_pages = initial;
        self.config.max_buffer_pages = max;
        self
    }

    /// Fix every exchange buffer at exactly `pages` (no elastic growth).
    pub fn fixed_buffers(self, pages: usize) -> Self {
        self.buffer_pages(pages, Some(pages))
    }

    /// Let exchange buffers grow without bound (still starting at
    /// `initial_buffer_pages`).
    pub fn unbounded_buffers(mut self) -> Self {
        self.config.max_buffer_pages = None;
        self
    }

    /// TCP connect timeout for real transports, milliseconds.
    pub fn connect_timeout_ms(mut self, ms: u64) -> Self {
        self.config.connect_timeout_ms = ms.max(1);
        self
    }

    /// Read timeout for real transports (`None` = block indefinitely).
    pub fn read_timeout_ms(mut self, ms: Option<u64>) -> Self {
        self.config.read_timeout_ms = ms;
        self
    }

    pub fn build(self) -> NetworkConfig {
        self.config
    }
}

/// How (and whether) the runtime elasticity controller retunes Source-stage
/// DOP mid-query (paper §5.2, Fig 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticityMode {
    /// No controller: stages keep their planned parallelism.
    Off,
    /// The what-if predictor picks the **smallest** DOP within the stage's
    /// bounds whose predicted completion time (`T_remain = V_remain /
    /// R_consume`) meets the deadline; if none does, the largest.
    Auto {
        /// Target completion deadline for every Source stage, milliseconds.
        deadline_ms: u64,
    },
    /// Test schedule injector: retune to exactly `target_dop` (clamped to
    /// the stage's bounds) at the first decision point, then go passive.
    Forced { target_dop: u32 },
    /// Test schedule injector: double the DOP (clamped) at the first
    /// decision point, then go passive. `ACCORDION_ELASTICITY=forced-grow`.
    ForcedGrow,
    /// Test schedule injector: drop to the stage's minimum DOP at the first
    /// decision point, then go passive. `ACCORDION_ELASTICITY=forced-shrink`.
    ForcedShrink,
    /// Test/bench schedule injector: alternate between `high` and `low` DOP
    /// at successive decision boundaries (grow → shrink → grow → …),
    /// hammering repeated mid-query retunes on one execution.
    /// `ACCORDION_ELASTICITY=cycle[:high:low]`.
    Cycle { high: u32, low: u32 },
}

/// Configuration of the intra-query re-parallelization controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticityConfig {
    pub mode: ElasticityMode,
    /// Decision cadence: the controller pauses each elastic stage's split
    /// queue after every `decide_every_splits` claims and retunes at that
    /// boundary — re-parallelization always happens **between splits**.
    pub decide_every_splits: u64,
    /// Controller poll period between checks for due decisions and runtime
    /// info samples, microseconds.
    pub poll_interval_us: u64,
}

impl Default for ElasticityConfig {
    fn default() -> Self {
        ElasticityConfig {
            mode: ElasticityMode::Off,
            decide_every_splits: 1,
            poll_interval_us: 200,
        }
    }
}

impl ElasticityConfig {
    pub fn off() -> Self {
        ElasticityConfig::default()
    }

    /// Deterministic test schedule: jump to `target_dop` at the first split
    /// boundary.
    pub fn forced(target_dop: u32) -> Self {
        ElasticityConfig {
            mode: ElasticityMode::Forced { target_dop },
            ..ElasticityConfig::default()
        }
    }

    /// Predictor-driven mode with a completion deadline in milliseconds.
    pub fn auto(deadline_ms: u64) -> Self {
        ElasticityConfig {
            mode: ElasticityMode::Auto { deadline_ms },
            ..ElasticityConfig::default()
        }
    }

    /// Repeated grow/shrink schedule: alternate between `high` and `low`
    /// DOP at every decision boundary.
    pub fn cycle(high: u32, low: u32) -> Self {
        ElasticityConfig {
            mode: ElasticityMode::Cycle { high, low },
            ..ElasticityConfig::default()
        }
    }

    /// Deadline used by `auto` when no explicit `auto:<deadline_ms>` suffix
    /// is given. A deadline of 0 would be degenerate — nothing can meet it,
    /// so the predictor would pin every stage at its maximum DOP.
    pub const DEFAULT_AUTO_DEADLINE_MS: u64 = 1_000;

    /// Reads `ACCORDION_ELASTICITY` (`off`, `forced-grow`, `forced-shrink`,
    /// `cycle[:high:low]`, `auto[:deadline_ms]`); anything else — including
    /// unset — is `Off`. This is what the CI elasticity matrix toggles.
    pub fn from_env() -> Self {
        ElasticityConfig {
            mode: Self::parse_mode(std::env::var("ACCORDION_ELASTICITY").ok().as_deref()),
            ..ElasticityConfig::default()
        }
    }

    /// Parses one `ACCORDION_ELASTICITY` value (see [`Self::from_env`]).
    /// Bare `auto` — or an unparsable deadline suffix — falls back to
    /// [`Self::DEFAULT_AUTO_DEADLINE_MS`].
    pub fn parse_mode(value: Option<&str>) -> ElasticityMode {
        match value {
            Some("forced-grow") => ElasticityMode::ForcedGrow,
            Some("forced-shrink") => ElasticityMode::ForcedShrink,
            Some(v) if v == "cycle" || v.starts_with("cycle:") => {
                let (high, low) = v
                    .strip_prefix("cycle:")
                    .and_then(|spec| {
                        let (h, l) = spec.split_once(':')?;
                        Some((h.parse::<u32>().ok()?, l.parse::<u32>().ok()?))
                    })
                    .unwrap_or((4, 1));
                ElasticityMode::Cycle { high, low }
            }
            Some(v) if v == "auto" || v.starts_with("auto:") => {
                let deadline_ms = v
                    .strip_prefix("auto:")
                    .and_then(|d| d.parse::<u64>().ok())
                    .unwrap_or(Self::DEFAULT_AUTO_DEADLINE_MS);
                ElasticityMode::Auto { deadline_ms }
            }
            _ => ElasticityMode::Off,
        }
    }

    /// Strict programmatic parsing of an elasticity mode — the API behind
    /// the query server's `SET elasticity`. Accepts the same grammar as
    /// [`Self::parse_mode`] plus `off` and `forced:<dop>`, but malformed
    /// values are **errors** instead of silently falling back to defaults:
    /// an interactive session should hear about its typo, while the env-var
    /// path ([`Self::from_env`]) stays lenient so a bad CI matrix entry
    /// degrades to `Off` rather than failing every test.
    pub fn try_parse_mode(value: &str) -> crate::error::Result<ElasticityMode> {
        use crate::error::AccordionError;
        let bad = |msg: String| Err(AccordionError::Parse(msg));
        match value {
            "off" => Ok(ElasticityMode::Off),
            "forced-grow" => Ok(ElasticityMode::ForcedGrow),
            "forced-shrink" => Ok(ElasticityMode::ForcedShrink),
            "auto" => Ok(ElasticityMode::Auto {
                deadline_ms: Self::DEFAULT_AUTO_DEADLINE_MS,
            }),
            "cycle" => Ok(ElasticityMode::Cycle { high: 4, low: 1 }),
            v => {
                if let Some(spec) = v.strip_prefix("auto:") {
                    let deadline_ms = match spec.parse::<u64>() {
                        Ok(d) if d > 0 => d,
                        Ok(_) => {
                            return bad(
                                "auto deadline must be positive (0 ms can never be met)".into()
                            )
                        }
                        Err(_) => {
                            return bad(format!(
                                "invalid auto deadline '{spec}' (expected milliseconds, \
                                 e.g. auto:2000)"
                            ))
                        }
                    };
                    return Ok(ElasticityMode::Auto { deadline_ms });
                }
                if let Some(spec) = v.strip_prefix("forced:") {
                    return match spec.parse::<u32>() {
                        Ok(dop) if dop > 0 => Ok(ElasticityMode::Forced { target_dop: dop }),
                        _ => bad(format!(
                            "invalid forced DOP '{spec}' (expected a positive integer)"
                        )),
                    };
                }
                if let Some(spec) = v.strip_prefix("cycle:") {
                    let parsed = spec
                        .split_once(':')
                        .and_then(|(h, l)| Some((h.parse::<u32>().ok()?, l.parse::<u32>().ok()?)));
                    return match parsed {
                        Some((high, low)) if high > 0 && low > 0 => {
                            Ok(ElasticityMode::Cycle { high, low })
                        }
                        _ => bad(format!(
                            "invalid cycle spec '{spec}' (expected cycle:<high>:<low>)"
                        )),
                    };
                }
                bad(format!(
                    "unknown elasticity mode '{v}' (expected off, auto[:deadline_ms], \
                     forced:<dop>, forced-grow, forced-shrink or cycle[:high:low])"
                ))
            }
        }
    }

    /// True when a controller should run at all.
    pub fn enabled(&self) -> bool {
        self.mode != ElasticityMode::Off
    }
}

/// What happens to a query that arrives while the concurrency limit is
/// already saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until a slot frees up (bounded by
    /// `AdmissionConfig::queue_limit`).
    #[default]
    Queue,
    /// Fail the query immediately with an execution error.
    Reject,
}

impl AdmissionPolicy {
    /// Strict parsing — the API behind `SET`/CLI/`ACCORDION_ADMISSION`.
    pub fn try_parse(value: &str) -> crate::error::Result<Self> {
        match value {
            "queue" => Ok(AdmissionPolicy::Queue),
            "reject" => Ok(AdmissionPolicy::Reject),
            v => Err(crate::error::AccordionError::Parse(format!(
                "unknown admission policy '{v}' (expected queue or reject)"
            ))),
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionPolicy::Queue => write!(f, "queue"),
            AdmissionPolicy::Reject => write!(f, "reject"),
        }
    }
}

/// Multi-query admission control: how many queries may run concurrently on
/// the shared compute-slot pool, and what to do with the overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queries executing at once (`None` = unlimited, the
    /// single-tenant behavior of earlier versions).
    pub max_concurrent_queries: Option<usize>,
    /// Overflow policy once `max_concurrent_queries` is reached.
    pub policy: AdmissionPolicy,
    /// With [`AdmissionPolicy::Queue`], how many queries may wait before
    /// further arrivals are rejected outright.
    pub queue_limit: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_concurrent_queries: None,
            policy: AdmissionPolicy::Queue,
            queue_limit: 64,
        }
    }
}

impl AdmissionConfig {
    /// Admit at most `max` concurrent queries, queueing the rest.
    pub fn queued(max: usize) -> Self {
        AdmissionConfig {
            max_concurrent_queries: Some(max.max(1)),
            policy: AdmissionPolicy::Queue,
            ..AdmissionConfig::default()
        }
    }

    /// Admit at most `max` concurrent queries, rejecting the rest.
    pub fn rejecting(max: usize) -> Self {
        AdmissionConfig {
            max_concurrent_queries: Some(max.max(1)),
            policy: AdmissionPolicy::Reject,
            ..AdmissionConfig::default()
        }
    }

    /// Reads `ACCORDION_MAX_QUERIES` (a positive integer; anything else —
    /// including unset — means unlimited) and `ACCORDION_ADMISSION`
    /// (`queue`/`reject`; lenient like [`ElasticityConfig::from_env`], so
    /// a bad value degrades to the default `queue` rather than failing
    /// every run).
    pub fn from_env() -> Self {
        let max_concurrent_queries = std::env::var("ACCORDION_MAX_QUERIES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let policy = std::env::var("ACCORDION_ADMISSION")
            .ok()
            .and_then(|v| AdmissionPolicy::try_parse(&v).ok())
            .unwrap_or_default();
        AdmissionConfig {
            max_concurrent_queries,
            policy,
            ..AdmissionConfig::default()
        }
    }

    /// True when a concurrency limit is actually enforced.
    pub fn limited(&self) -> bool {
        self.max_concurrent_queries.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.page_rows > 0);
        assert!(c.cluster.total_threads() > 0);
        assert_eq!(
            c.network.initial_buffer_pages, 1,
            "paper: buffers start at 1 page"
        );
    }

    #[test]
    fn nic_mbps_conversion() {
        let n = NetworkConfig::builder().nic_mbps(80).build();
        assert_eq!(n.nic_bandwidth_bytes_per_sec, Some(10_000_000));
    }

    #[test]
    fn buffer_shaping_builder() {
        let fixed = NetworkConfig::builder().fixed_buffers(1).build();
        assert_eq!(fixed.initial_buffer_pages, 1);
        assert_eq!(fixed.max_buffer_pages, Some(1));
        let open = NetworkConfig::builder().unbounded_buffers().build();
        assert_eq!(open.max_buffer_pages, None);
        let shaped = NetworkConfig::builder().buffer_pages(2, Some(16)).build();
        assert_eq!(shaped.initial_buffer_pages, 2);
        assert_eq!(shaped.max_buffer_pages, Some(16));
    }

    #[test]
    fn transport_timeouts_default_and_build() {
        let d = NetworkConfig::default();
        assert_eq!(d.connect_timeout_ms, 5_000);
        assert_eq!(d.read_timeout_ms, None, "data plane blocks by default");
        let n = NetworkConfig::builder()
            .connect_timeout_ms(250)
            .read_timeout_ms(Some(1_000))
            .link_latency_us(50)
            .build();
        assert_eq!(n.connect_timeout_ms, 250);
        assert_eq!(n.read_timeout_ms, Some(1_000));
        assert_eq!(n.link_latency_us, 50);
    }

    #[test]
    fn elasticity_modes() {
        assert!(!ElasticityConfig::off().enabled());
        assert!(ElasticityConfig::forced(4).enabled());
        assert_eq!(
            ElasticityConfig::auto(250).mode,
            ElasticityMode::Auto { deadline_ms: 250 }
        );
        assert_eq!(
            ElasticityConfig::parse_mode(Some("forced-grow")),
            ElasticityMode::ForcedGrow
        );
        assert_eq!(
            ElasticityConfig::parse_mode(Some("forced-shrink")),
            ElasticityMode::ForcedShrink
        );
        assert_eq!(
            ElasticityConfig::parse_mode(Some("auto:500")),
            ElasticityMode::Auto { deadline_ms: 500 }
        );
        assert_eq!(
            ElasticityConfig::parse_mode(Some("cycle:6:2")),
            ElasticityMode::Cycle { high: 6, low: 2 }
        );
        // Bare `cycle` and malformed specs get the default 4:1 schedule.
        assert_eq!(
            ElasticityConfig::parse_mode(Some("cycle")),
            ElasticityMode::Cycle { high: 4, low: 1 }
        );
        assert_eq!(
            ElasticityConfig::parse_mode(Some("cycle:x:y")),
            ElasticityMode::Cycle { high: 4, low: 1 }
        );
        assert_eq!(
            ElasticityConfig::cycle(8, 2).mode,
            ElasticityMode::Cycle { high: 8, low: 2 }
        );
        // Bare `auto` and malformed suffixes get the non-degenerate default
        // deadline instead of an unmeetable 0 ms.
        assert_eq!(
            ElasticityConfig::parse_mode(Some("auto")),
            ElasticityMode::Auto {
                deadline_ms: ElasticityConfig::DEFAULT_AUTO_DEADLINE_MS
            }
        );
        assert_eq!(
            ElasticityConfig::parse_mode(Some("auto:5OO")),
            ElasticityMode::Auto {
                deadline_ms: ElasticityConfig::DEFAULT_AUTO_DEADLINE_MS
            }
        );
        assert_eq!(ElasticityConfig::parse_mode(None), ElasticityMode::Off);
        assert_eq!(
            ElasticityConfig::parse_mode(Some("bogus")),
            ElasticityMode::Off
        );
    }

    #[test]
    fn try_parse_mode_accepts_the_full_grammar() {
        use ElasticityMode::*;
        let ok = |s: &str| ElasticityConfig::try_parse_mode(s).unwrap();
        assert_eq!(ok("off"), Off);
        assert_eq!(ok("forced-grow"), ForcedGrow);
        assert_eq!(ok("forced-shrink"), ForcedShrink);
        assert_eq!(ok("forced:3"), Forced { target_dop: 3 });
        assert_eq!(ok("cycle"), Cycle { high: 4, low: 1 });
        assert_eq!(ok("cycle:6:2"), Cycle { high: 6, low: 2 });
        assert_eq!(
            ok("auto"),
            Auto {
                deadline_ms: ElasticityConfig::DEFAULT_AUTO_DEADLINE_MS
            }
        );
        assert_eq!(ok("auto:2500"), Auto { deadline_ms: 2500 });
    }

    #[test]
    fn try_parse_mode_rejects_malformed_values() {
        let err = |s: &str| match ElasticityConfig::try_parse_mode(s) {
            Err(crate::error::AccordionError::Parse(m)) => m,
            other => panic!("expected parse error for {s:?}, got {other:?}"),
        };
        assert!(err("bogus").contains("unknown elasticity mode"));
        assert!(err("auto:").contains("invalid auto deadline"));
        assert!(err("auto:5OO").contains("invalid auto deadline"));
        assert!(err("auto:0").contains("positive"));
        assert!(err("auto:-5").contains("invalid auto deadline"));
        assert!(err("forced:").contains("invalid forced DOP"));
        assert!(err("forced:0").contains("invalid forced DOP"));
        assert!(err("cycle:x:y").contains("invalid cycle spec"));
        assert!(err("cycle:4").contains("invalid cycle spec"));
        assert!(err("cycle:0:1").contains("invalid cycle spec"));
        assert!(err("").contains("unknown elasticity mode"));
        // The lenient env-var path still falls back instead of failing.
        assert_eq!(
            ElasticityConfig::parse_mode(Some("bogus")),
            ElasticityMode::Off
        );
    }

    #[test]
    fn admission_defaults_and_parsing() {
        let a = AdmissionConfig::default();
        assert!(!a.limited(), "default admission is unlimited");
        assert_eq!(a.policy, AdmissionPolicy::Queue);
        assert_eq!(AdmissionConfig::queued(2).max_concurrent_queries, Some(2));
        assert_eq!(
            AdmissionConfig::rejecting(3).policy,
            AdmissionPolicy::Reject
        );
        // A zero cap would deadlock every query; clamp to one.
        assert_eq!(AdmissionConfig::queued(0).max_concurrent_queries, Some(1));
        assert_eq!(
            AdmissionPolicy::try_parse("reject").unwrap(),
            AdmissionPolicy::Reject
        );
        assert!(AdmissionPolicy::try_parse("drop").is_err());
        assert_eq!(AdmissionPolicy::Queue.to_string(), "queue");
    }

    #[test]
    fn per_query_nic_conversion() {
        let n = NetworkConfig::builder()
            .nic_mbps(80)
            .per_query_nic_mbps(8)
            .build();
        assert_eq!(n.nic_bandwidth_bytes_per_sec, Some(10_000_000));
        assert_eq!(n.nic_per_query_bytes_per_sec, Some(1_000_000));
    }

    #[test]
    fn test_config_is_small() {
        let c = EngineConfig::for_tests();
        assert!(c.cluster.total_threads() <= 8);
        assert!(c.page_rows <= 1024);
    }
}
