//! `accordion-bench` — run the TPC-H benchmark matrix and emit
//! `BENCH_<name>.json`.
//!
//! ```text
//! accordion-bench [--sf 0.01] [--seed 42] [--queries all|q1,q6]
//!     [--name local] [--out DIR] [--dops 1,4] [--workers 4]
//!     [--modes off,forced-grow,auto] [--warmup 1] [--repeats 3]
//!     [--page-rows 256] [--compare BASELINE.json] [--tolerance 0.2]
//!     [--floor-ms 50] [--check FILE]
//!     [--kernels-baseline FILE --kernels-candidate FILE [--kernels-out FILE]]
//! ```
//!
//! `--check FILE` only validates an existing report against the schema and
//! exits. Otherwise the matrix runs, the report is written (and validated),
//! and — when `--compare` names a baseline — the candidate is gated
//! against it: exact on deterministic counters, tolerance + absolute floor
//! on wall-clock medians. Exit status is non-zero on any violation.
//!
//! `--kernels-baseline`/`--kernels-candidate` compare two **existing**
//! reports on grouped-aggregation scan throughput (cells whose stats
//! contain a `PartialAggregate` operator) and exit — no benchmark runs.
//! The gate uses the same `--tolerance`/`--floor-ms` two-sided rule as
//! `--compare`; `--kernels-out` writes the per-cell comparison artifact.

use std::path::PathBuf;
use std::process::ExitCode;

use accordion_bench::{
    compare, compare_kernels, run, run_workload, validate, BenchOptions, WorkloadOptions,
};
use accordion_common::config::AdmissionConfig;
use accordion_common::Json;

struct Cli {
    opts: BenchOptions,
    out_dir: PathBuf,
    check: Option<PathBuf>,
    baseline: Option<PathBuf>,
    tolerance: f64,
    floor_ms: f64,
    kernels_baseline: Option<PathBuf>,
    kernels_candidate: Option<PathBuf>,
    kernels_out: Option<PathBuf>,
    // Workload-driver mode (`--workload`).
    workload: bool,
    contention: bool,
    require_cross_retune: bool,
    clients: Option<usize>,
    rate_qps: Option<f64>,
    total: usize,
    deadlines_ms: Vec<u64>,
    max_queries: Option<usize>,
    admission_policy: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: accordion-bench [--sf F] [--seed N] [--queries all|q1,q3,q6,top_orders]\n\
         \x20    [--name NAME] [--out DIR] [--dops LIST] [--workers LIST] [--modes LIST]\n\
         \x20    [--warmup N] [--repeats N] [--page-rows N]\n\
         \x20    [--compare BASELINE.json] [--tolerance F] [--floor-ms F] [--check FILE]\n\
         \x20    [--kernels-baseline FILE --kernels-candidate FILE [--kernels-out FILE]]\n\
         \x20    [--workload [--contention] [--clients N | --rate-qps F] [--total N]\n\
         \x20     [--deadlines-ms LIST] [--max-queries N] [--admission queue|reject]\n\
         \x20     [--require-cross-retune]]"
    );
    std::process::exit(2);
}

fn parse_list<T: std::str::FromStr>(flag: &str, v: &str) -> Vec<T> {
    v.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("accordion-bench: bad value '{s}' for {flag}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        opts: BenchOptions::default(),
        out_dir: PathBuf::from("."),
        check: None,
        baseline: None,
        tolerance: 0.2,
        floor_ms: 50.0,
        kernels_baseline: None,
        kernels_candidate: None,
        kernels_out: None,
        workload: false,
        contention: false,
        require_cross_retune: false,
        clients: None,
        rate_qps: None,
        total: 8,
        deadlines_ms: vec![50, 5_000],
        max_queries: None,
        admission_policy: "queue".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            usage();
        }
        // Boolean flags take no value.
        match flag.as_str() {
            "--workload" => {
                cli.workload = true;
                continue;
            }
            "--contention" => {
                cli.contention = true;
                continue;
            }
            "--require-cross-retune" => {
                cli.require_cross_retune = true;
                continue;
            }
            _ => {}
        }
        let Some(value) = args.next() else {
            eprintln!("accordion-bench: {flag} needs a value");
            usage();
        };
        match flag.as_str() {
            "--sf" => cli.opts.scale_factor = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => cli.opts.seed = value.parse().unwrap_or_else(|_| usage()),
            "--name" => cli.opts.name = value,
            "--out" => cli.out_dir = PathBuf::from(value),
            "--queries" => {
                cli.opts.queries = if value == "all" {
                    Vec::new()
                } else {
                    parse_list("--queries", &value)
                }
            }
            "--dops" => cli.opts.dops = parse_list("--dops", &value),
            "--workers" => cli.opts.workers = parse_list("--workers", &value),
            "--modes" => cli.opts.modes = parse_list("--modes", &value),
            "--warmup" => cli.opts.warmup = value.parse().unwrap_or_else(|_| usage()),
            "--repeats" => cli.opts.repeats = value.parse().unwrap_or_else(|_| usage()),
            "--page-rows" => cli.opts.page_rows = value.parse().unwrap_or_else(|_| usage()),
            "--compare" => cli.baseline = Some(PathBuf::from(value)),
            "--tolerance" => cli.tolerance = value.parse().unwrap_or_else(|_| usage()),
            "--floor-ms" => cli.floor_ms = value.parse().unwrap_or_else(|_| usage()),
            "--check" => cli.check = Some(PathBuf::from(value)),
            "--kernels-baseline" => cli.kernels_baseline = Some(PathBuf::from(value)),
            "--kernels-candidate" => cli.kernels_candidate = Some(PathBuf::from(value)),
            "--kernels-out" => cli.kernels_out = Some(PathBuf::from(value)),
            "--clients" => cli.clients = Some(value.parse().unwrap_or_else(|_| usage())),
            "--rate-qps" => cli.rate_qps = Some(value.parse().unwrap_or_else(|_| usage())),
            "--total" => cli.total = value.parse().unwrap_or_else(|_| usage()),
            "--deadlines-ms" => cli.deadlines_ms = parse_list("--deadlines-ms", &value),
            "--max-queries" => cli.max_queries = Some(value.parse().unwrap_or_else(|_| usage())),
            "--admission" => cli.admission_policy = value,
            _ => {
                eprintln!("accordion-bench: unknown flag {flag}");
                usage();
            }
        }
    }
    if cli.opts.dops.is_empty() || cli.opts.workers.is_empty() || cli.opts.modes.is_empty() {
        eprintln!("accordion-bench: --dops/--workers/--modes must be non-empty");
        usage();
    }
    cli
}

fn load_json(path: &PathBuf) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Kernel-throughput gate over two existing reports (no benchmark run).
fn run_kernel_gate(cli: &Cli, base_path: &PathBuf, cand_path: &PathBuf) -> ExitCode {
    let (baseline, candidate) = match (load_json(base_path), load_json(cand_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("accordion-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (issues, artifact) = compare_kernels(&baseline, &candidate, cli.tolerance, cli.floor_ms);
    if let Some(out) = &cli.kernels_out {
        if let Err(e) = std::fs::write(out, artifact.to_string_pretty()) {
            eprintln!("accordion-bench: write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", out.display());
    }
    let cells = artifact.get("cells").and_then(Json::as_arr);
    for cell in cells.into_iter().flatten() {
        println!(
            "{:>10}  dop={} workers={} mode={:<12} {:>12.0} -> {:>12.0} rows/s ({:.1}%)",
            cell.get("query").and_then(Json::as_str).unwrap_or("?"),
            cell.get("dop").and_then(Json::as_u64).unwrap_or(0),
            cell.get("workers").and_then(Json::as_u64).unwrap_or(0),
            cell.get("mode").and_then(Json::as_str).unwrap_or("?"),
            cell.get("baseline_rows_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            cell.get("candidate_rows_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            cell.get("ratio").and_then(Json::as_f64).unwrap_or(0.0) * 100.0,
        );
    }
    if cells.is_none_or(|c| c.is_empty()) {
        // A gate that silently compares nothing would hide kernel
        // regressions forever; make the misconfiguration loud.
        eprintln!("accordion-bench: no grouped-aggregation cells in common — nothing gated");
        return ExitCode::FAILURE;
    }
    if !issues.is_empty() {
        for i in &issues {
            eprintln!("kernel regression vs {}: {i}", base_path.display());
        }
        return ExitCode::FAILURE;
    }
    println!(
        "kernels: no grouped-agg throughput regressions vs {} (tolerance {:.0}%, floor {} ms)",
        base_path.display(),
        cli.tolerance * 100.0,
        cli.floor_ms
    );
    ExitCode::SUCCESS
}

/// `--workload`: run the multi-query workload driver and write
/// `BENCH_<name>.json` (workload schema).
fn run_workload_mode(cli: &Cli) -> ExitCode {
    let admission = match cli.max_queries {
        None => AdmissionConfig::default(),
        Some(max) => match cli.admission_policy.as_str() {
            "queue" => AdmissionConfig::queued(max),
            "reject" => AdmissionConfig::rejecting(max),
            other => {
                eprintln!("accordion-bench: unknown admission policy '{other}'");
                usage();
            }
        },
    };
    let defaults = WorkloadOptions::default();
    let opts = WorkloadOptions {
        name: cli.opts.name.clone(),
        scale_factor: cli.opts.scale_factor,
        seed: cli.opts.seed,
        page_rows: cli.opts.page_rows,
        workers: cli.opts.workers.first().copied().unwrap_or(4),
        // `--rate-qps` selects the open loop unless `--clients` insists.
        clients: match (cli.clients, cli.rate_qps) {
            (Some(n), _) => Some(n),
            (None, Some(_)) => None,
            (None, None) => defaults.clients,
        },
        rate_qps: cli.rate_qps.unwrap_or(defaults.rate_qps),
        total: cli.total,
        deadlines_ms: cli.deadlines_ms.clone(),
        dops: cli.opts.dops.clone(),
        queries: cli.opts.queries.clone(),
        admission,
        contention: cli.contention,
    };
    let report = match run_workload(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("accordion-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let errs = validate(&report);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("accordion-bench: emitted report invalid: {e}");
        }
        return ExitCode::FAILURE;
    }
    let out_path = cli.out_dir.join(format!("BENCH_{}.json", opts.name));
    if let Err(e) = std::fs::create_dir_all(&cli.out_dir) {
        eprintln!("accordion-bench: mkdir {}: {e}", cli.out_dir.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, report.to_string_pretty()) {
        eprintln!("accordion-bench: write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());

    for q in report
        .get("queries")
        .and_then(Json::as_arr)
        .into_iter()
        .flatten()
    {
        println!(
            "#{:<3} {:>10}  dop={} deadline={:>6} ms  {:>9.2} ms  {}  retunes={} sla_met={}",
            q.get("id").and_then(Json::as_u64).unwrap_or(0),
            q.get("query").and_then(Json::as_str).unwrap_or("?"),
            q.get("planned_dop").and_then(Json::as_u64).unwrap_or(0),
            q.get("deadline_ms").and_then(Json::as_u64).unwrap_or(0),
            q.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
            q.get("outcome").and_then(Json::as_str).unwrap_or("?"),
            q.get("retunes").and_then(Json::as_u64).unwrap_or(0),
            q.get("sla_met").and_then(Json::as_bool).unwrap_or(false),
        );
    }
    let summary = report.get("summary");
    let stat = |key: &str| {
        summary
            .and_then(|s| s.get(key))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let cross = stat("cross_query_retunes");
    println!(
        "workload: {} submitted, {} completed, {} rejected; SLO attainment {:.2}; \
         fleet rounds {} (cross-query {})",
        stat("submitted"),
        stat("completed"),
        stat("rejected"),
        summary
            .and_then(|s| s.get("sla_attainment"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0),
        stat("fleet_rounds"),
        cross,
    );

    if let Some(baseline_path) = &cli.baseline {
        let baseline = match load_json(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("accordion-bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        let issues = compare(&baseline, &report, cli.tolerance, cli.floor_ms);
        if !issues.is_empty() {
            for i in &issues {
                eprintln!("regression vs {}: {i}", baseline_path.display());
            }
            return ExitCode::FAILURE;
        }
        println!("no regressions vs {}", baseline_path.display());
    }
    if cli.require_cross_retune && cross == 0 {
        eprintln!("accordion-bench: --require-cross-retune: no cross-query reallocation happened");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let cli = parse_args();

    // Kernel-gate-only mode: compare two existing reports and exit.
    if let (Some(b), Some(c)) = (cli.kernels_baseline.clone(), cli.kernels_candidate.clone()) {
        return run_kernel_gate(&cli, &b, &c);
    }
    if cli.kernels_baseline.is_some() || cli.kernels_candidate.is_some() {
        eprintln!("accordion-bench: --kernels-baseline and --kernels-candidate go together");
        usage();
    }

    // Validation-only mode.
    if let Some(path) = &cli.check {
        return match load_json(path) {
            Err(e) => {
                eprintln!("accordion-bench: {e}");
                ExitCode::FAILURE
            }
            Ok(report) => {
                let errs = validate(&report);
                if errs.is_empty() {
                    println!("{}: schema-valid", path.display());
                    ExitCode::SUCCESS
                } else {
                    for e in &errs {
                        eprintln!("{}: {e}", path.display());
                    }
                    ExitCode::FAILURE
                }
            }
        };
    }

    if cli.workload {
        return run_workload_mode(&cli);
    }

    let report = match run(&cli.opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("accordion-bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let errs = validate(&report);
    if !errs.is_empty() {
        // A report the harness itself emitted must always be schema-valid.
        for e in &errs {
            eprintln!("accordion-bench: emitted report invalid: {e}");
        }
        return ExitCode::FAILURE;
    }

    let out_path = cli.out_dir.join(format!("BENCH_{}.json", cli.opts.name));
    if let Err(e) = std::fs::create_dir_all(&cli.out_dir) {
        eprintln!("accordion-bench: mkdir {}: {e}", cli.out_dir.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, report.to_string_pretty()) {
        eprintln!("accordion-bench: write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out_path.display());

    // Headline summary to stdout: one line per query × cell.
    if let Some(queries) = report.get("queries").and_then(Json::as_arr) {
        for q in queries {
            let name = q.get("query").and_then(Json::as_str).unwrap_or("?");
            let rows = q.get("rows").and_then(Json::as_u64).unwrap_or(0);
            for cell in q.get("cells").and_then(Json::as_arr).into_iter().flatten() {
                let dop = cell.get("dop").and_then(Json::as_u64).unwrap_or(0);
                let workers = cell.get("workers").and_then(Json::as_u64).unwrap_or(0);
                let mode = cell.get("mode").and_then(Json::as_str).unwrap_or("?");
                let wall = cell
                    .get("wall_ms_median")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                let retunes = cell.get("retunes").and_then(Json::as_u64).unwrap_or(0);
                println!(
                    "{name:>10}  dop={dop} workers={workers} mode={mode:<12} \
                     {wall:>9.2} ms  rows={rows} retunes={retunes}"
                );
            }
        }
    }

    if let Some(baseline_path) = &cli.baseline {
        let baseline = match load_json(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("accordion-bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        let issues = compare(&baseline, &report, cli.tolerance, cli.floor_ms);
        if !issues.is_empty() {
            for i in &issues {
                eprintln!("regression vs {}: {i}", baseline_path.display());
            }
            return ExitCode::FAILURE;
        }
        println!(
            "no regressions vs {} (tolerance {:.0}%, floor {} ms)",
            baseline_path.display(),
            cli.tolerance * 100.0,
            cli.floor_ms
        );
    }
    ExitCode::SUCCESS
}
