//! The benchmark harness: TPC-H evaluation queries across a
//! (DOP × worker threads × elasticity mode) matrix, with stable
//! `BENCH_<name>.json` output.
//!
//! One [`run`] generates the seeded TPC-H catalog, executes every selected
//! query in every matrix cell (with warmup and repeated timed runs,
//! reporting the median wall clock), harvests the engine's
//! [`QueryStats`] — per-stage throughput series, exchange counters, the
//! retune log — and emits a single JSON report:
//!
//! ```text
//! { "schema_version": 1, "name": ..., "config": {...},
//!   "tables":  [ {"name", "rows", "checksum"} ... ],
//!   "queries": [ { "query": "q1",
//!                  "rows": ..., "result_checksum": "0x...",
//!                  "cells": [ { "dop", "workers", "mode",
//!                               "wall_ms_median", "wall_ms_runs": [...],
//!                               "wall_ms_vs_off": 1.02 | null,
//!                               "scan_rows", "retunes",
//!                               "stats": { ...QueryStats... } } ... ] } ] }
//! ```
//!
//! Two invariants are *checked while benchmarking*, not just recorded:
//! every cell of a query must produce the identical row multiset
//! (exactly-once scans under retuning — the paper's core claim), and
//! repeated runs of one cell must agree with each other. Counter fields
//! (rows, checksums, scan rows) are deterministic for a fixed
//! `(scale_factor, seed)`; wall-clock fields are machine-dependent, which
//! is why [`compare`] checks counters exactly but timings only within a
//! tolerance and above an absolute floor.
//!
//! [`QueryStats`]: accordion_exec::metrics::QueryStats

use accordion_cluster::{run_cell, MatrixCell};
use accordion_common::config::ElasticityConfig;
use accordion_common::{AccordionError, Json, Result};
use accordion_tpch::{all_queries, generate, TpchOptions};

pub mod workload;

pub use workload::{compare_workload, run_workload, validate_workload, WorkloadOptions};

/// Harness configuration: what to run and how often.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Report name: the output file is `BENCH_<name>.json`.
    pub name: String,
    pub scale_factor: f64,
    pub seed: u64,
    pub page_rows: usize,
    /// Untimed runs per cell before measurement.
    pub warmup: u32,
    /// Timed runs per cell; the median is the headline number.
    pub repeats: u32,
    /// Source-stage DOP values to plan at.
    pub dops: Vec<u32>,
    /// Worker-pool sizes to execute with.
    pub workers: Vec<usize>,
    /// Elasticity mode specs (`off`, `forced-grow`, `forced-shrink`,
    /// `auto[:deadline_ms]`, `cycle[:high:low]` — the
    /// `ACCORDION_ELASTICITY` syntax).
    pub modes: Vec<String>,
    /// Query names to run; empty means all.
    pub queries: Vec<String>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            name: "local".to_string(),
            scale_factor: 0.01,
            seed: 42,
            page_rows: 256,
            warmup: 1,
            repeats: 3,
            dops: vec![1, 4],
            workers: vec![4],
            modes: vec!["off".into(), "forced-grow".into(), "auto".into()],
            queries: Vec::new(),
        }
    }
}

fn hex(v: u64) -> Json {
    Json::str(format!("{v:#018x}"))
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Runs the full benchmark matrix and returns the report.
pub fn run(opts: &BenchOptions) -> Result<Json> {
    let data = generate(&TpchOptions {
        scale_factor: opts.scale_factor,
        seed: opts.seed,
        page_rows: opts.page_rows,
    });

    let mut queries = all_queries(&data.catalog)?;
    if !opts.queries.is_empty() {
        for want in &opts.queries {
            if !queries.iter().any(|(n, _)| n == want) {
                return Err(AccordionError::Analysis(format!(
                    "unknown query '{want}' (have: {})",
                    queries
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        queries.retain(|(n, _)| opts.queries.iter().any(|w| w == n));
    }

    let tables = Json::Arr(
        data.tables
            .iter()
            .map(|t| {
                Json::obj()
                    .with("name", Json::str(t.name))
                    .with("rows", Json::u64(t.rows))
                    .with("checksum", hex(t.checksum))
            })
            .collect(),
    );

    let mut query_reports = Vec::new();
    for (name, builder) in &queries {
        let mut fingerprint: Option<(u64, u64)> = None;
        // (dop, workers) → median of the `off` cell, for the on/off delta.
        let mut off_medians: Vec<((u32, usize), f64)> = Vec::new();
        let mut cells = Vec::new();
        for &dop in &opts.dops {
            for &workers in &opts.workers {
                for mode in &opts.modes {
                    let elasticity = ElasticityConfig {
                        mode: ElasticityConfig::parse_mode(Some(mode)),
                        ..ElasticityConfig::off()
                    };
                    let cell = MatrixCell {
                        dop,
                        worker_threads: workers,
                        elasticity,
                        page_rows: opts.page_rows,
                    };
                    for _ in 0..opts.warmup {
                        run_cell(&data.catalog, builder, &cell)?;
                    }
                    let mut walls = Vec::new();
                    let mut last = None;
                    for _ in 0..opts.repeats.max(1) {
                        let out = run_cell(&data.catalog, builder, &cell)?;
                        let key = (out.rows, out.result_checksum);
                        match fingerprint {
                            None => fingerprint = Some(key),
                            // The harness *checks* exactly-once execution,
                            // it doesn't just record it: every cell and
                            // every repeat of one query must produce the
                            // identical row multiset.
                            Some(prev) if prev != key => {
                                return Err(AccordionError::Internal(format!(
                                    "{name}: dop={dop} workers={workers} mode={mode} produced \
                                     {} rows (checksum {:#x}), previous cells produced {} \
                                     (checksum {:#x})",
                                    key.0, key.1, prev.0, prev.1
                                )));
                            }
                            Some(_) => {}
                        }
                        walls.push(out.wall_ms);
                        last = Some(out);
                    }
                    let last = last.expect("repeats >= 1");
                    walls.sort_by(f64::total_cmp);
                    let wall_median = median(&walls);
                    if ElasticityConfig::parse_mode(Some(mode))
                        == accordion_common::ElasticityMode::Off
                    {
                        off_medians.push(((dop, workers), wall_median));
                    }
                    cells.push((dop, workers, mode.clone(), wall_median, walls, last));
                }
            }
        }

        let (rows, checksum) = fingerprint.expect("at least one cell ran");
        let cell_objs = cells
            .into_iter()
            .map(|(dop, workers, mode, wall_median, walls, out)| {
                let vs_off = off_medians
                    .iter()
                    .find(|((d, w), _)| *d == dop && *w == workers)
                    .map(|(_, off)| {
                        if *off > 0.0 {
                            Json::f64(wall_median / off)
                        } else {
                            Json::Null
                        }
                    })
                    .unwrap_or(Json::Null);
                Json::obj()
                    .with("dop", Json::u64(dop as u64))
                    .with("workers", Json::u64(workers as u64))
                    .with("mode", Json::str(mode))
                    .with("wall_ms_median", Json::f64(wall_median))
                    .with(
                        "wall_ms_runs",
                        Json::Arr(walls.iter().map(|w| Json::f64(*w)).collect()),
                    )
                    .with("wall_ms_vs_off", vs_off)
                    .with("scan_rows", Json::u64(out.stats.rows_produced("TableScan")))
                    .with("retunes", Json::u64(out.stats.retunes.len() as u64))
                    .with("stats", out.stats.to_json())
            })
            .collect();

        query_reports.push(
            Json::obj()
                .with("query", Json::str(*name))
                .with("rows", Json::u64(rows))
                .with("result_checksum", hex(checksum))
                .with("cells", Json::Arr(cell_objs)),
        );
    }

    Ok(Json::obj()
        .with("schema_version", Json::u64(1))
        .with("name", Json::str(&opts.name))
        .with(
            "config",
            Json::obj()
                .with("scale_factor", Json::f64(opts.scale_factor))
                .with("seed", Json::u64(opts.seed))
                .with("page_rows", Json::u64(opts.page_rows as u64))
                .with("warmup", Json::u64(opts.warmup as u64))
                .with("repeats", Json::u64(opts.repeats as u64))
                .with(
                    "dops",
                    Json::Arr(opts.dops.iter().map(|d| Json::u64(*d as u64)).collect()),
                )
                .with(
                    "workers",
                    Json::Arr(opts.workers.iter().map(|w| Json::u64(*w as u64)).collect()),
                )
                .with(
                    "modes",
                    Json::Arr(opts.modes.iter().map(Json::str).collect()),
                ),
        )
        .with("tables", tables)
        .with("queries", Json::Arr(query_reports)))
}

/// The report flavour: matrix reports (the original schema) carry no
/// `kind` field; workload reports say `kind: "workload"`.
fn report_kind(report: &Json) -> &str {
    report
        .get("kind")
        .and_then(Json::as_str)
        .unwrap_or("matrix")
}

/// Checks `report` against the `BENCH_*.json` schema — the matrix schema
/// by default, the workload schema when the report says
/// `kind: "workload"`. Returns every violation found (empty = valid).
pub fn validate(report: &Json) -> Vec<String> {
    if report_kind(report) == "workload" {
        return validate_workload(report);
    }
    let mut errs = Vec::new();
    let mut need = |path: &str, ok: bool| {
        if !ok {
            errs.push(format!("missing or mistyped field: {path}"));
        }
    };
    need(
        "schema_version",
        report.get("schema_version").and_then(Json::as_u64) == Some(1),
    );
    need("name", report.get("name").and_then(Json::as_str).is_some());
    let config = report.get("config");
    need("config", config.map(|c| c.as_obj().is_some()) == Some(true));
    if let Some(c) = config {
        for key in ["scale_factor", "seed", "page_rows", "warmup", "repeats"] {
            need(
                &format!("config.{key}"),
                c.get(key).and_then(Json::as_f64).is_some(),
            );
        }
        for key in ["dops", "workers", "modes"] {
            need(
                &format!("config.{key}"),
                c.get(key).and_then(Json::as_arr).is_some(),
            );
        }
    }
    match report.get("tables").and_then(Json::as_arr) {
        None => errs.push("missing or mistyped field: tables".into()),
        Some(tables) => {
            for (i, t) in tables.iter().enumerate() {
                let mut need = |path: String, ok: bool| {
                    if !ok {
                        errs.push(format!("missing or mistyped field: {path}"));
                    }
                };
                need(
                    format!("tables[{i}].name"),
                    t.get("name").and_then(Json::as_str).is_some(),
                );
                need(
                    format!("tables[{i}].rows"),
                    t.get("rows").and_then(Json::as_u64).is_some(),
                );
                need(
                    format!("tables[{i}].checksum"),
                    t.get("checksum").and_then(Json::as_str).is_some(),
                );
            }
        }
    }
    match report.get("queries").and_then(Json::as_arr) {
        None => errs.push("missing or mistyped field: queries".into()),
        Some(queries) => {
            for (qi, q) in queries.iter().enumerate() {
                let mut need = |path: String, ok: bool| {
                    if !ok {
                        errs.push(format!("missing or mistyped field: {path}"));
                    }
                };
                need(
                    format!("queries[{qi}].query"),
                    q.get("query").and_then(Json::as_str).is_some(),
                );
                need(
                    format!("queries[{qi}].rows"),
                    q.get("rows").and_then(Json::as_u64).is_some(),
                );
                need(
                    format!("queries[{qi}].result_checksum"),
                    q.get("result_checksum").and_then(Json::as_str).is_some(),
                );
                let cells = q.get("cells").and_then(Json::as_arr);
                need(format!("queries[{qi}].cells"), cells.is_some());
                for (ci, cell) in cells.into_iter().flatten().enumerate() {
                    let at = format!("queries[{qi}].cells[{ci}]");
                    for key in ["dop", "workers", "scan_rows", "retunes"] {
                        need(
                            format!("{at}.{key}"),
                            cell.get(key).and_then(Json::as_u64).is_some(),
                        );
                    }
                    need(
                        format!("{at}.mode"),
                        cell.get("mode").and_then(Json::as_str).is_some(),
                    );
                    need(
                        format!("{at}.wall_ms_median"),
                        cell.get("wall_ms_median").and_then(Json::as_f64).is_some(),
                    );
                    need(
                        format!("{at}.wall_ms_runs"),
                        cell.get("wall_ms_runs").and_then(Json::as_arr).is_some(),
                    );
                    let stats = cell.get("stats");
                    need(format!("{at}.stats"), stats.is_some());
                    if let Some(s) = stats {
                        for key in ["operators", "series", "retunes"] {
                            need(
                                format!("{at}.stats.{key}"),
                                s.get(key).and_then(Json::as_arr).is_some(),
                            );
                        }
                        need(
                            format!("{at}.stats.exchange"),
                            s.get("exchange").map(|e| e.as_obj().is_some()) == Some(true),
                        );
                    }
                }
            }
        }
    }
    errs
}

/// Compares `candidate` against `baseline`.
///
/// Deterministic counters — table fingerprints, result row counts, result
/// checksums, scan row counts — must match **exactly** (for cells present
/// in both reports with the same `(query, dop, workers, mode)` key).
/// Wall-clock medians are machine-dependent: a cell only counts as a
/// regression when it is BOTH `tolerance` (fractional, e.g. `0.2` = 20 %)
/// slower than baseline AND more than `floor_ms` slower in absolute terms —
/// the floor keeps micro-benchmark noise at tiny scale factors from
/// tripping the gate. Returns every violation (empty = pass).
///
/// Workload reports (`kind: "workload"`) dispatch to
/// [`compare_workload`]; comparing a workload report against a matrix
/// report (or vice versa) is a single "kind" violation.
pub fn compare(baseline: &Json, candidate: &Json, tolerance: f64, floor_ms: f64) -> Vec<String> {
    match (report_kind(baseline), report_kind(candidate)) {
        ("workload", "workload") => return compare_workload(baseline, candidate),
        ("workload", other) | (other, "workload") => {
            return vec![format!(
                "report kind mismatch: cannot compare a workload report against '{other}'"
            )];
        }
        _ => {}
    }
    let mut errs = Vec::new();

    // Table fingerprints: the generated data must be identical, otherwise
    // nothing else is comparable.
    let base_tables = baseline.get("tables").and_then(Json::as_arr);
    let cand_tables = candidate.get("tables").and_then(Json::as_arr);
    if let (Some(bt), Some(ct)) = (base_tables, cand_tables) {
        for b in bt {
            let name = b.get("name").and_then(Json::as_str).unwrap_or("?");
            let Some(c) = ct
                .iter()
                .find(|t| t.get("name").and_then(Json::as_str) == Some(name))
            else {
                errs.push(format!("table {name}: missing from candidate"));
                continue;
            };
            for key in ["rows", "checksum"] {
                if b.get(key).map(|v| v.to_string_compact())
                    != c.get(key).map(|v| v.to_string_compact())
                {
                    errs.push(format!("table {name}: {key} differs from baseline"));
                }
            }
        }
    } else {
        errs.push("tables array missing from baseline or candidate".into());
    }

    let empty = Vec::new();
    let base_queries = baseline
        .get("queries")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let cand_queries = candidate
        .get("queries")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for bq in base_queries {
        let qname = bq.get("query").and_then(Json::as_str).unwrap_or("?");
        let Some(cq) = cand_queries
            .iter()
            .find(|q| q.get("query").and_then(Json::as_str) == Some(qname))
        else {
            // Absence is fine: the candidate may have run a subset.
            continue;
        };
        for key in ["rows", "result_checksum"] {
            if bq.get(key).map(|v| v.to_string_compact())
                != cq.get(key).map(|v| v.to_string_compact())
            {
                errs.push(format!("{qname}: {key} differs from baseline"));
            }
        }
        let bcells = bq.get("cells").and_then(Json::as_arr).unwrap_or(&empty);
        let ccells = cq.get("cells").and_then(Json::as_arr).unwrap_or(&empty);
        for bc in bcells {
            let cell_key = |c: &Json| {
                (
                    c.get("dop").and_then(Json::as_u64),
                    c.get("workers").and_then(Json::as_u64),
                    c.get("mode").and_then(Json::as_str).map(str::to_string),
                )
            };
            let key = cell_key(bc);
            let Some(cc) = ccells.iter().find(|c| cell_key(c) == key) else {
                continue;
            };
            let at = format!(
                "{qname} dop={} workers={} mode={}",
                key.0.unwrap_or(0),
                key.1.unwrap_or(0),
                key.2.as_deref().unwrap_or("?")
            );
            if bc.get("scan_rows").and_then(Json::as_u64)
                != cc.get("scan_rows").and_then(Json::as_u64)
            {
                errs.push(format!("{at}: scan_rows differs from baseline"));
            }
            let (Some(bw), Some(cw)) = (
                bc.get("wall_ms_median").and_then(Json::as_f64),
                cc.get("wall_ms_median").and_then(Json::as_f64),
            ) else {
                errs.push(format!("{at}: wall_ms_median missing"));
                continue;
            };
            if cw > bw * (1.0 + tolerance) && cw - bw > floor_ms {
                errs.push(format!(
                    "{at}: wall-clock regression {bw:.2} ms -> {cw:.2} ms \
                     (> {:.0}% and > {floor_ms} ms)",
                    tolerance * 100.0
                ));
            }
        }
    }
    errs
}

/// One grouped-aggregation cell's scan-side throughput, extracted from a
/// bench report by [`kernel_throughputs`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCell {
    pub query: String,
    pub dop: u64,
    pub workers: u64,
    pub mode: String,
    /// Peak scan-stage throughput in rows/s.
    pub rows_per_sec: f64,
    /// Rows scanned by the cell (for converting a throughput drop into an
    /// implied absolute slowdown).
    pub scan_rows: u64,
}

/// Extracts the scan throughput of every cell whose stats contain a
/// `PartialAggregate` operator — the cells exercised by the vectorized
/// grouped-aggregation kernels. Throughput is the peak `rows_per_sec` of
/// the per-stage series; when the series has no samples (runs at tiny
/// scale factors finish inside the sampler's throttle window) it falls
/// back to the fastest `TableScan` operator's lifetime `rows_per_sec`.
pub fn kernel_throughputs(report: &Json) -> Vec<KernelCell> {
    fn arr(v: Option<&Json>) -> &[Json] {
        v.and_then(Json::as_arr).unwrap_or(&[])
    }
    let mut out = Vec::new();
    for q in arr(report.get("queries")) {
        let query = q
            .get("query")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        for cell in arr(q.get("cells")) {
            let Some(stats) = cell.get("stats") else {
                continue;
            };
            let ops = arr(stats.get("operators"));
            let grouped = ops
                .iter()
                .any(|o| o.get("operator").and_then(Json::as_str) == Some("PartialAggregate"));
            if !grouped {
                continue;
            }
            let mut peak = 0.0f64;
            for series in arr(stats.get("series")) {
                for point in arr(series.get("points")) {
                    if let Some(v) = point
                        .as_arr()
                        .and_then(|xy| xy.get(1))
                        .and_then(Json::as_f64)
                    {
                        peak = peak.max(v);
                    }
                }
            }
            if peak <= 0.0 {
                for o in ops {
                    if o.get("operator").and_then(Json::as_str) == Some("TableScan") {
                        if let Some(v) = o.get("rows_per_sec").and_then(Json::as_f64) {
                            peak = peak.max(v);
                        }
                    }
                }
            }
            if peak <= 0.0 {
                continue;
            }
            out.push(KernelCell {
                query: query.clone(),
                dop: cell.get("dop").and_then(Json::as_u64).unwrap_or(0),
                workers: cell.get("workers").and_then(Json::as_u64).unwrap_or(0),
                mode: cell
                    .get("mode")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                rows_per_sec: peak,
                scan_rows: cell.get("scan_rows").and_then(Json::as_u64).unwrap_or(0),
            });
        }
    }
    out
}

/// Gates grouped-aggregation kernel throughput against a baseline report.
///
/// For every `(query, dop, workers, mode)` cell present in both reports, a
/// regression is flagged only when the candidate's throughput is more than
/// `tolerance` (fractional) below baseline AND the implied extra scan time
/// (`scan_rows/candidate − scan_rows/baseline`) exceeds `floor_ms` — the
/// same two-sided rule as [`compare`], so micro-benchmark noise at tiny
/// scale factors cannot trip the gate. Returns the violations (empty =
/// pass) plus a comparison artifact with one row per compared cell, meant
/// to be uploaded by CI.
pub fn compare_kernels(
    baseline: &Json,
    candidate: &Json,
    tolerance: f64,
    floor_ms: f64,
) -> (Vec<String>, Json) {
    let base = kernel_throughputs(baseline);
    let cand = kernel_throughputs(candidate);
    let mut errs = Vec::new();
    let mut cells = Vec::new();
    for b in &base {
        let Some(c) = cand.iter().find(|c| {
            c.query == b.query && c.dop == b.dop && c.workers == b.workers && c.mode == b.mode
        }) else {
            continue;
        };
        let ratio = c.rows_per_sec / b.rows_per_sec;
        let extra_ms =
            (c.scan_rows as f64 / c.rows_per_sec - c.scan_rows as f64 / b.rows_per_sec) * 1000.0;
        let regressed = c.rows_per_sec < b.rows_per_sec * (1.0 - tolerance) && extra_ms > floor_ms;
        if regressed {
            errs.push(format!(
                "{} dop={} workers={} mode={}: grouped-agg scan throughput regression \
                 {:.0} rows/s -> {:.0} rows/s ({:.1}% of baseline, +{extra_ms:.1} ms implied)",
                b.query,
                b.dop,
                b.workers,
                b.mode,
                b.rows_per_sec,
                c.rows_per_sec,
                ratio * 100.0
            ));
        }
        cells.push(
            Json::obj()
                .with("query", Json::str(&b.query))
                .with("dop", Json::u64(b.dop))
                .with("workers", Json::u64(b.workers))
                .with("mode", Json::str(&b.mode))
                .with("baseline_rows_per_sec", Json::f64(b.rows_per_sec))
                .with("candidate_rows_per_sec", Json::f64(c.rows_per_sec))
                .with("ratio", Json::f64(ratio))
                .with("implied_extra_ms", Json::f64(extra_ms))
                .with("regressed", Json::Bool(regressed)),
        );
    }
    let artifact = Json::obj()
        .with("tolerance", Json::f64(tolerance))
        .with("floor_ms", Json::f64(floor_ms))
        .with("cells", Json::Arr(cells));
    (errs, artifact)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_opts() -> BenchOptions {
        BenchOptions {
            name: "test".into(),
            scale_factor: 0.001,
            seed: 42,
            page_rows: 64,
            warmup: 0,
            repeats: 1,
            dops: vec![1, 2],
            workers: vec![2],
            modes: vec!["off".into(), "forced-grow".into()],
            queries: vec!["q6".into(), "top_orders".into()],
        }
    }

    #[test]
    fn smoke_report_is_schema_valid() {
        let report = run(&smoke_opts()).unwrap();
        let errs = validate(&report);
        assert!(errs.is_empty(), "schema violations: {errs:?}");
        let queries = report.get("queries").unwrap().as_arr().unwrap();
        assert_eq!(queries.len(), 2);
        // 2 dops × 1 worker count × 2 modes.
        for q in queries {
            assert_eq!(q.get("cells").unwrap().as_arr().unwrap().len(), 4);
        }
    }

    #[test]
    fn deterministic_counters_are_stable_across_runs() {
        let a = run(&smoke_opts()).unwrap();
        let b = run(&smoke_opts()).unwrap();
        for (qa, qb) in a
            .get("queries")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .zip(b.get("queries").unwrap().as_arr().unwrap())
        {
            for key in ["query", "rows", "result_checksum"] {
                assert_eq!(
                    qa.get(key).unwrap().to_string_compact(),
                    qb.get(key).unwrap().to_string_compact(),
                );
            }
        }
        // Therefore self-comparison passes at zero tolerance.
        assert_eq!(compare(&a, &b, 0.0, f64::INFINITY), Vec::<String>::new());
    }

    #[test]
    fn unknown_query_is_an_error() {
        let mut opts = smoke_opts();
        opts.queries = vec!["q99".into()];
        assert!(run(&opts).is_err());
    }

    #[test]
    fn compare_flags_counter_mismatch_and_honours_floor() {
        let a = run(&smoke_opts()).unwrap();
        let text = a.to_string_pretty();

        // Corrupt the candidate's first query checksum.
        let mut b = Json::parse(&text).unwrap();
        if let Json::Obj(fields) = &mut b {
            let queries = fields.iter_mut().find(|(k, _)| k == "queries").unwrap();
            if let Json::Arr(qs) = &mut queries.1 {
                if let Json::Obj(q) = &mut qs[0] {
                    q.iter_mut()
                        .find(|(k, _)| k == "result_checksum")
                        .unwrap()
                        .1 = Json::str("0xdeadbeef");
                }
            }
        }
        let errs = compare(&a, &b, 0.2, 50.0);
        assert!(
            errs.iter().any(|e| e.contains("result_checksum")),
            "{errs:?}"
        );

        // Identical reports never regress, even at zero tolerance.
        let c = Json::parse(&text).unwrap();
        assert!(compare(&a, &c, 0.0, f64::INFINITY).is_empty());
    }

    #[test]
    fn validate_rejects_truncated_reports() {
        let report = Json::obj().with("schema_version", Json::u64(1));
        let errs = validate(&report);
        assert!(errs.iter().any(|e| e.contains("queries")));
        assert!(errs.iter().any(|e| e.contains("tables")));
    }

    /// A minimal report with one grouped-agg cell at the given throughput
    /// (delivered via the TableScan operator fallback — tiny runs have no
    /// series samples) and one non-agg query the gate must ignore.
    fn kernel_report(rows_per_sec: f64, with_series: Option<f64>) -> Json {
        let mut series = Vec::new();
        if let Some(v) = with_series {
            series.push(Json::obj().with("stage", Json::u64(0)).with(
                "points",
                Json::Arr(vec![Json::Arr(vec![Json::f64(5.0), Json::f64(v)])]),
            ));
        }
        let agg_stats = Json::obj()
            .with(
                "operators",
                Json::Arr(vec![
                    Json::obj()
                        .with("operator", Json::str("TableScan"))
                        .with("rows_per_sec", Json::f64(rows_per_sec)),
                    Json::obj().with("operator", Json::str("PartialAggregate")),
                ]),
            )
            .with("series", Json::Arr(series));
        let cell = |stats: Json| {
            Json::obj()
                .with("dop", Json::u64(4))
                .with("workers", Json::u64(4))
                .with("mode", Json::str("off"))
                .with("scan_rows", Json::u64(60_000))
                .with("stats", stats)
        };
        let scan_only_stats = Json::obj()
            .with(
                "operators",
                Json::Arr(vec![Json::obj()
                    .with("operator", Json::str("TableScan"))
                    .with("rows_per_sec", Json::f64(1.0))]),
            )
            .with("series", Json::Arr(vec![]));
        Json::obj().with(
            "queries",
            Json::Arr(vec![
                Json::obj()
                    .with("query", Json::str("q1"))
                    .with("cells", Json::Arr(vec![cell(agg_stats)])),
                Json::obj()
                    .with("query", Json::str("top_orders"))
                    .with("cells", Json::Arr(vec![cell(scan_only_stats)])),
            ]),
        )
    }

    #[test]
    fn kernel_throughputs_picks_agg_cells_with_series_peak_and_fallback() {
        // Series present: its peak wins over the operator counter.
        let cells = kernel_throughputs(&kernel_report(100.0, Some(250.0)));
        assert_eq!(cells.len(), 1, "non-agg query ignored");
        assert_eq!(cells[0].query, "q1");
        assert_eq!(cells[0].rows_per_sec, 250.0);
        // No series samples: falls back to the TableScan counter.
        let cells = kernel_throughputs(&kernel_report(100.0, None));
        assert_eq!(cells[0].rows_per_sec, 100.0);
        assert_eq!(cells[0].scan_rows, 60_000);
    }

    #[test]
    fn compare_kernels_gates_on_tolerance_and_floor() {
        let base = kernel_report(1_000_000.0, None);
        // 30% slower AND well past a 1 ms floor (60k rows: 60 ms -> 86 ms).
        let slow = kernel_report(700_000.0, None);
        let (errs, artifact) = compare_kernels(&base, &slow, 0.2, 1.0);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("q1"), "{errs:?}");
        let cells = artifact.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("regressed").unwrap().as_bool(), Some(true));

        // Same drop but under the absolute floor: not a regression.
        let (errs, _) = compare_kernels(&base, &slow, 0.2, 1_000.0);
        assert!(errs.is_empty(), "{errs:?}");
        // Within tolerance: not a regression even with a zero floor.
        let (errs, _) = compare_kernels(&base, &kernel_report(900_000.0, None), 0.2, 0.0);
        assert!(errs.is_empty(), "{errs:?}");
        // Faster candidate passes trivially.
        let (errs, artifact) = compare_kernels(&base, &kernel_report(2_000_000.0, None), 0.2, 0.0);
        assert!(errs.is_empty());
        let cells = artifact.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells[0].get("regressed").unwrap().as_bool(), Some(false));
    }
}
