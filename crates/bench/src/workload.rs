//! Multi-query workload driver: seeded open/closed-loop arrivals against
//! ONE shared [`QueryExecutor`], with per-query deadlines, admission
//! control, and the fleet retune log — `BENCH_workload_<name>.json`.
//!
//! The matrix harness (`lib.rs`) measures queries one at a time on fresh
//! executors; this driver is the other half of the evaluation: N queries
//! contending for one compute-slot pool, each carrying its own SLO. The
//! report records per-query SLO attainment and the fleet's cross-query
//! reallocation decisions:
//!
//! ```text
//! { "schema_version": 1, "kind": "workload", "name": ..., "config": {...},
//!   "tables":  [ {"name", "rows", "checksum"} ... ],
//!   "queries": [ { "id", "query", "planned_dop", "deadline_ms",
//!                  "submitted_ms", "wall_ms", "outcome",
//!                  "rows", "result_checksum", "retunes", "sla_met" } ... ],
//!   "summary": { "submitted", "completed", "rejected", "errored",
//!                "sla_attainment", "wall_ms_p50", "wall_ms_p95",
//!                "fleet_rounds", "cross_query_retunes" },
//!   "fleet":   { "rounds", "cross_query_rounds", "events": [...] },
//!   "admission": { "admitted", "rejected", "peak_running" } }
//! ```
//!
//! Rows and checksums stay deterministic per query name (exactly-once
//! scans under retuning — checked while running, not just recorded); wall
//! clocks, SLO attainment, and the retune log are machine-dependent.
//! [`crate::validate`]/[`crate::compare`] dispatch on `kind` and gate only
//! the deterministic fields.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use accordion_cluster::matrix::result_checksum;
use accordion_cluster::QueryExecutor;
use accordion_common::config::{AdmissionConfig, ElasticityConfig};
use accordion_common::{AccordionError, Json, Result};
use accordion_exec::ExecOptions;
use accordion_plan::fragment::StageTree;
use accordion_plan::optimizer::{Optimizer, OptimizerConfig};
use accordion_tpch::{all_queries, generate, TpchOptions};

/// Workload shape: who arrives, when, and with what SLO.
#[derive(Debug, Clone)]
pub struct WorkloadOptions {
    /// Report name: the output file is `BENCH_<name>.json`.
    pub name: String,
    pub scale_factor: f64,
    /// Seeds both the TPC-H generator and the arrival process.
    pub seed: u64,
    pub page_rows: usize,
    /// Compute slots of the one shared executor.
    pub workers: usize,
    /// `Some(n)`: closed loop, `n` clients running queries back to back.
    /// `None`: open loop, arrivals at `rate_qps`.
    pub clients: Option<usize>,
    /// Open-loop arrival rate, queries/second.
    pub rate_qps: f64,
    /// Queries to submit in total.
    pub total: usize,
    /// Deadlines sampled per arrival (uniform over the list, seeded).
    pub deadlines_ms: Vec<u64>,
    /// Planned Source-stage DOPs sampled per arrival.
    pub dops: Vec<u32>,
    /// Query names to draw from; empty means all.
    pub queries: Vec<String>,
    /// Admission config of the shared executor.
    pub admission: AdmissionConfig,
    /// Replace the arrival process with the contention preset: pairs of an
    /// ahead-of-SLO query (loose deadline, wide plan) and a behind-SLO
    /// query (tight deadline, narrow plan) arriving moments later — the
    /// shape that forces a cross-query reallocation.
    pub contention: bool,
}

impl Default for WorkloadOptions {
    fn default() -> Self {
        WorkloadOptions {
            name: "workload".to_string(),
            scale_factor: 0.01,
            seed: 42,
            page_rows: 64,
            workers: 4,
            clients: Some(2),
            rate_qps: 20.0,
            total: 8,
            deadlines_ms: vec![50, 5_000],
            dops: vec![1, 4],
            queries: vec!["q1".into(), "q6".into()],
            admission: AdmissionConfig::default(),
            contention: false,
        }
    }
}

/// xorshift64* — the deterministic arrival stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick<'a, T>(&mut self, list: &'a [T]) -> &'a T {
        &list[(self.next() % list.len() as u64) as usize]
    }
}

/// One planned submission.
#[derive(Debug, Clone)]
struct Arrival {
    id: usize,
    query: String,
    dop: u32,
    deadline_ms: u64,
    /// Open-loop submit time relative to workload start; `None` in closed
    /// loop (clients submit as soon as they free up).
    offset_ms: Option<u64>,
}

/// What one submission did.
#[derive(Debug, Clone)]
struct QueryRecord {
    arrival: Arrival,
    submitted_ms: f64,
    wall_ms: f64,
    outcome: &'static str,
    error: Option<String>,
    rows: u64,
    checksum: u64,
    retunes: u64,
    sla_met: bool,
}

fn plan_arrivals(opts: &WorkloadOptions, names: &[String]) -> Vec<Arrival> {
    let mut rng = Rng::new(opts.seed ^ 0x9E37_79B9);
    if opts.contention {
        // Pairs: the loose query arrives first and cruises far ahead of its
        // deadline; the tight one lands while it runs and must grow into
        // the slots the fleet claws back.
        let pairs = opts.total.div_ceil(2).max(1);
        let mut out = Vec::new();
        for p in 0..pairs {
            let base = (p as u64) * 400;
            out.push(Arrival {
                id: out.len(),
                query: names[0].clone(),
                dop: 4,
                deadline_ms: 10_000,
                offset_ms: Some(base),
            });
            out.push(Arrival {
                id: out.len(),
                query: names[0].clone(),
                dop: 1,
                deadline_ms: 10,
                offset_ms: Some(base + 25),
            });
        }
        return out;
    }
    let mut offset = 0u64;
    (0..opts.total)
        .map(|id| {
            let gap_ms = (1000.0 / opts.rate_qps.max(0.001)) as u64;
            // 50–150 % of the nominal gap, seeded.
            offset += gap_ms / 2 + rng.next() % gap_ms.max(1);
            Arrival {
                id,
                query: rng.pick(names).clone(),
                dop: *rng.pick(&opts.dops),
                deadline_ms: *rng.pick(&opts.deadlines_ms),
                offset_ms: opts.clients.is_none().then_some(offset),
            }
        })
        .collect()
}

/// Runs the workload and returns the report.
pub fn run_workload(opts: &WorkloadOptions) -> Result<Json> {
    if opts.total == 0 {
        return Err(AccordionError::Analysis(
            "workload: --total must be > 0".into(),
        ));
    }
    if opts.dops.is_empty() || opts.deadlines_ms.is_empty() {
        return Err(AccordionError::Analysis(
            "workload: --dops/--deadlines-ms must be non-empty".into(),
        ));
    }
    let data = generate(&TpchOptions {
        scale_factor: opts.scale_factor,
        seed: opts.seed,
        page_rows: opts.page_rows,
    });
    let all = all_queries(&data.catalog)?;
    let names: Vec<String> = if opts.queries.is_empty() {
        all.iter().map(|(n, _)| n.to_string()).collect()
    } else {
        for want in &opts.queries {
            if !all.iter().any(|(n, _)| n == want) {
                return Err(AccordionError::Analysis(format!(
                    "unknown query '{want}' (have: {})",
                    all.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
                )));
            }
        }
        opts.queries.clone()
    };
    let arrivals = plan_arrivals(opts, &names);

    // ONE executor: its worker pool, admission gate, node NIC, and fleet
    // controller are what every arrival contends for.
    let executor = QueryExecutor::new(
        ExecOptions::with_page_rows(opts.page_rows.max(1))
            .worker_threads(opts.workers.max(1))
            .admission(opts.admission),
    );

    let started = Instant::now();
    let records: Mutex<Vec<QueryRecord>> = Mutex::new(Vec::new());
    let submit = |arrival: &Arrival| {
        if let Some(offset) = arrival.offset_ms {
            let target = Duration::from_millis(offset);
            let elapsed = started.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        // Plan at the arrival's DOP; execute with its own deadline. The
        // elasticity mode is set per call, never inherited from the
        // environment, so the workload is self-describing.
        let run = || -> Result<_> {
            let (_, builder) = all
                .iter()
                .find(|(n, _)| *n == arrival.query)
                .expect("names validated above");
            let optimizer =
                Optimizer::new(OptimizerConfig::default().with_parallelism(arrival.dop.max(1)));
            let tree = StageTree::build(optimizer.optimize(&builder.clone().build())?)?;
            let call_opts = ExecOptions::with_page_rows(opts.page_rows.max(1))
                .elasticity(ElasticityConfig::auto(arrival.deadline_ms));
            executor.execute_tree_opts(&data.catalog, &tree, &call_opts)
        };
        let submitted_ms = started.elapsed().as_secs_f64() * 1000.0;
        let t0 = Instant::now();
        let outcome = run();
        let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let record = match outcome {
            Ok(result) => QueryRecord {
                arrival: arrival.clone(),
                submitted_ms,
                wall_ms,
                outcome: "ok",
                error: None,
                rows: result.row_count() as u64,
                checksum: result_checksum(&result),
                retunes: result.stats().retunes.len() as u64,
                sla_met: wall_ms <= arrival.deadline_ms as f64,
            },
            Err(e) => {
                let msg = e.to_string();
                let rejected =
                    msg.contains("admission rejected") || msg.contains("admission queue");
                QueryRecord {
                    arrival: arrival.clone(),
                    submitted_ms,
                    wall_ms,
                    outcome: if rejected { "rejected" } else { "error" },
                    error: Some(msg),
                    rows: 0,
                    checksum: 0,
                    retunes: 0,
                    sla_met: false,
                }
            }
        };
        records
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(record);
    };

    match opts.clients {
        // Closed loop: `n` clients drain the arrival list back to back.
        Some(n) if !opts.contention => {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..n.max(1) {
                    let (cursor, arrivals, submit) = (&cursor, &arrivals, &submit);
                    scope.spawn(move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(arrival) = arrivals.get(i) else {
                            break;
                        };
                        submit(arrival);
                    });
                }
            });
        }
        // Open loop (and the contention preset): one thread per arrival,
        // each sleeping until its scheduled offset.
        _ => {
            std::thread::scope(|scope| {
                for arrival in &arrivals {
                    let submit = &submit;
                    scope.spawn(move || submit(arrival));
                }
            });
        }
    }

    let mut records = records.into_inner().unwrap_or_else(|p| p.into_inner());
    records.sort_by_key(|r| r.arrival.id);

    // Exactly-once under contention: every successful run of one query
    // name must produce the identical row multiset.
    let mut fingerprints: Vec<(&str, (u64, u64))> = Vec::new();
    for r in records.iter().filter(|r| r.outcome == "ok") {
        let key = (r.rows, r.checksum);
        match fingerprints.iter().find(|(n, _)| *n == r.arrival.query) {
            None => fingerprints.push((&r.arrival.query, key)),
            Some((_, prev)) if *prev != key => {
                return Err(AccordionError::Internal(format!(
                    "{}: arrival #{} produced {} rows (checksum {:#x}), an earlier arrival \
                     produced {} (checksum {:#x})",
                    r.arrival.query, r.arrival.id, key.0, key.1, prev.0, prev.1
                )));
            }
            Some(_) => {}
        }
    }

    let fleet = executor.fleet().snapshot();
    let admission = executor.admission().stats();

    let completed = records.iter().filter(|r| r.outcome == "ok").count();
    let rejected = records.iter().filter(|r| r.outcome == "rejected").count();
    let errored = records.iter().filter(|r| r.outcome == "error").count();
    if errored > 0 {
        let first = records.iter().find(|r| r.outcome == "error").unwrap();
        return Err(AccordionError::Internal(format!(
            "workload query {} failed: {}",
            first.arrival.id,
            first.error.as_deref().unwrap_or("?")
        )));
    }
    let met = records.iter().filter(|r| r.sla_met).count();
    let mut walls: Vec<f64> = records
        .iter()
        .filter(|r| r.outcome == "ok")
        .map(|r| r.wall_ms)
        .collect();
    walls.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if walls.is_empty() {
            return 0.0;
        }
        walls[((walls.len() - 1) as f64 * p).round() as usize]
    };

    let hex = |v: u64| Json::str(format!("{v:#018x}"));
    let query_objs = records
        .iter()
        .map(|r| {
            Json::obj()
                .with("id", Json::u64(r.arrival.id as u64))
                .with("query", Json::str(&r.arrival.query))
                .with("planned_dop", Json::u64(r.arrival.dop as u64))
                .with("deadline_ms", Json::u64(r.arrival.deadline_ms))
                .with("submitted_ms", Json::f64(r.submitted_ms))
                .with("wall_ms", Json::f64(r.wall_ms))
                .with("outcome", Json::str(r.outcome))
                .with("rows", Json::u64(r.rows))
                .with("result_checksum", hex(r.checksum))
                .with("retunes", Json::u64(r.retunes))
                .with("sla_met", Json::Bool(r.sla_met))
        })
        .collect();

    let event_objs = fleet
        .events
        .iter()
        .map(|e| {
            Json::obj()
                .with("round", Json::u64(e.round))
                .with("query_id", Json::u64(e.query_id))
                .with("current_dop", Json::u64(e.current_dop as u64))
                .with("required_dop", Json::u64(e.required_dop as u64))
                .with("behind", Json::Bool(e.behind))
                .with(
                    "from_budget",
                    e.from_budget.map_or(Json::Null, |b| Json::u64(b as u64)),
                )
                .with("to_budget", Json::u64(e.to_budget as u64))
        })
        .collect();

    Ok(Json::obj()
        .with("schema_version", Json::u64(1))
        .with("kind", Json::str("workload"))
        .with("name", Json::str(&opts.name))
        .with(
            "config",
            Json::obj()
                .with("scale_factor", Json::f64(opts.scale_factor))
                .with("seed", Json::u64(opts.seed))
                .with("page_rows", Json::u64(opts.page_rows as u64))
                .with("workers", Json::u64(opts.workers as u64))
                .with(
                    "clients",
                    opts.clients.map_or(Json::Null, |c| Json::u64(c as u64)),
                )
                .with("rate_qps", Json::f64(opts.rate_qps))
                .with("total", Json::u64(opts.total as u64))
                .with("contention", Json::Bool(opts.contention))
                .with(
                    "max_concurrent_queries",
                    opts.admission
                        .max_concurrent_queries
                        .map_or(Json::Null, |m| Json::u64(m as u64)),
                )
                .with(
                    "admission_policy",
                    Json::str(opts.admission.policy.to_string()),
                ),
        )
        .with(
            "tables",
            Json::Arr(
                data.tables
                    .iter()
                    .map(|t| {
                        Json::obj()
                            .with("name", Json::str(t.name))
                            .with("rows", Json::u64(t.rows))
                            .with("checksum", hex(t.checksum))
                    })
                    .collect(),
            ),
        )
        .with("queries", Json::Arr(query_objs))
        .with(
            "summary",
            Json::obj()
                .with("submitted", Json::u64(records.len() as u64))
                .with("completed", Json::u64(completed as u64))
                .with("rejected", Json::u64(rejected as u64))
                .with("errored", Json::u64(errored as u64))
                .with(
                    "sla_attainment",
                    Json::f64(met as f64 / records.len().max(1) as f64),
                )
                .with("wall_ms_p50", Json::f64(pct(0.5)))
                .with("wall_ms_p95", Json::f64(pct(0.95)))
                .with("fleet_rounds", Json::u64(fleet.rounds))
                .with("cross_query_retunes", Json::u64(fleet.cross_query_rounds)),
        )
        .with(
            "fleet",
            Json::obj()
                .with("rounds", Json::u64(fleet.rounds))
                .with("cross_query_rounds", Json::u64(fleet.cross_query_rounds))
                .with("events", Json::Arr(event_objs)),
        )
        .with(
            "admission",
            Json::obj()
                .with("admitted", Json::u64(admission.admitted))
                .with("rejected", Json::u64(admission.rejected))
                .with("peak_running", Json::u64(admission.peak_running as u64)),
        ))
}

/// Schema check for `kind: "workload"` reports (empty = valid).
pub fn validate_workload(report: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let mut need = |path: String, ok: bool| {
        if !ok {
            errs.push(format!("missing or mistyped field: {path}"));
        }
    };
    need(
        "schema_version".into(),
        report.get("schema_version").and_then(Json::as_u64) == Some(1),
    );
    need(
        "kind".into(),
        report.get("kind").and_then(Json::as_str) == Some("workload"),
    );
    need(
        "name".into(),
        report.get("name").and_then(Json::as_str).is_some(),
    );
    need(
        "config".into(),
        report.get("config").map(|c| c.as_obj().is_some()) == Some(true),
    );
    match report.get("tables").and_then(Json::as_arr) {
        None => need("tables".into(), false),
        Some(tables) => {
            for (i, t) in tables.iter().enumerate() {
                need(
                    format!("tables[{i}].name"),
                    t.get("name").and_then(Json::as_str).is_some(),
                );
                need(
                    format!("tables[{i}].rows"),
                    t.get("rows").and_then(Json::as_u64).is_some(),
                );
                need(
                    format!("tables[{i}].checksum"),
                    t.get("checksum").and_then(Json::as_str).is_some(),
                );
            }
        }
    }
    match report.get("queries").and_then(Json::as_arr) {
        None => need("queries".into(), false),
        Some(queries) => {
            for (i, q) in queries.iter().enumerate() {
                let at = format!("queries[{i}]");
                for key in ["id", "planned_dop", "deadline_ms", "rows", "retunes"] {
                    need(
                        format!("{at}.{key}"),
                        q.get(key).and_then(Json::as_u64).is_some(),
                    );
                }
                for key in ["query", "outcome", "result_checksum"] {
                    need(
                        format!("{at}.{key}"),
                        q.get(key).and_then(Json::as_str).is_some(),
                    );
                }
                for key in ["submitted_ms", "wall_ms"] {
                    need(
                        format!("{at}.{key}"),
                        q.get(key).and_then(Json::as_f64).is_some(),
                    );
                }
                need(
                    format!("{at}.sla_met"),
                    q.get("sla_met").and_then(Json::as_bool).is_some(),
                );
            }
        }
    }
    match report.get("summary") {
        None => need("summary".into(), false),
        Some(s) => {
            for key in ["submitted", "completed", "rejected", "errored"] {
                need(
                    format!("summary.{key}"),
                    s.get(key).and_then(Json::as_u64).is_some(),
                );
            }
            for key in ["sla_attainment", "wall_ms_p50", "wall_ms_p95"] {
                need(
                    format!("summary.{key}"),
                    s.get(key).and_then(Json::as_f64).is_some(),
                );
            }
            for key in ["fleet_rounds", "cross_query_retunes"] {
                need(
                    format!("summary.{key}"),
                    s.get(key).and_then(Json::as_u64).is_some(),
                );
            }
        }
    }
    match report.get("fleet") {
        None => need("fleet".into(), false),
        Some(f) => {
            for key in ["rounds", "cross_query_rounds"] {
                need(
                    format!("fleet.{key}"),
                    f.get(key).and_then(Json::as_u64).is_some(),
                );
            }
            need(
                "fleet.events".into(),
                f.get("events").and_then(Json::as_arr).is_some(),
            );
        }
    }
    match report.get("admission") {
        None => need("admission".into(), false),
        Some(a) => {
            for key in ["admitted", "rejected", "peak_running"] {
                need(
                    format!("admission.{key}"),
                    a.get(key).and_then(Json::as_u64).is_some(),
                );
            }
        }
    }
    errs
}

/// Workload-report comparison: table fingerprints and per-query-name
/// result rows/checksums must match exactly; everything timing-shaped
/// (wall clocks, SLO attainment, the retune log) is machine-dependent and
/// not gated. Returns every violation (empty = pass).
pub fn compare_workload(baseline: &Json, candidate: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let empty = Vec::new();
    let tables = |r: &'_ Json| -> Vec<Json> {
        r.get("tables")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default()
    };
    let bt = tables(baseline);
    if bt.is_empty() {
        errs.push("tables array missing from baseline or candidate".into());
    }
    let ct = tables(candidate);
    for b in &bt {
        let name = b.get("name").and_then(Json::as_str).unwrap_or("?");
        let Some(c) = ct
            .iter()
            .find(|t| t.get("name").and_then(Json::as_str) == Some(name))
        else {
            errs.push(format!("table {name}: missing from candidate"));
            continue;
        };
        for key in ["rows", "checksum"] {
            if b.get(key).map(|v| v.to_string_compact())
                != c.get(key).map(|v| v.to_string_compact())
            {
                errs.push(format!("table {name}: {key} differs from baseline"));
            }
        }
    }

    // First successful record per query name → the deterministic result.
    let fingerprint = |r: &'_ Json| -> Vec<(String, String, String)> {
        let mut out: Vec<(String, String, String)> = Vec::new();
        for q in r.get("queries").and_then(Json::as_arr).unwrap_or(&empty) {
            if q.get("outcome").and_then(Json::as_str) != Some("ok") {
                continue;
            }
            let name = q
                .get("query")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            if out.iter().any(|(n, _, _)| *n == name) {
                continue;
            }
            let rows = q
                .get("rows")
                .map(|v| v.to_string_compact())
                .unwrap_or_default();
            let sum = q
                .get("result_checksum")
                .map(|v| v.to_string_compact())
                .unwrap_or_default();
            out.push((name, rows, sum));
        }
        out
    };
    let cand = fingerprint(candidate);
    for (name, rows, sum) in fingerprint(baseline) {
        let Some((_, crows, csum)) = cand.iter().find(|(n, _, _)| *n == name) else {
            // The candidate workload may simply not have drawn this query.
            continue;
        };
        if rows != *crows {
            errs.push(format!("{name}: rows differs from baseline"));
        }
        if sum != *csum {
            errs.push(format!("{name}: result_checksum differs from baseline"));
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WorkloadOptions {
        WorkloadOptions {
            scale_factor: 0.001,
            total: 4,
            workers: 2,
            clients: Some(2),
            queries: vec!["q6".into()],
            ..WorkloadOptions::default()
        }
    }

    #[test]
    fn closed_loop_report_is_schema_valid() {
        let report = run_workload(&tiny()).unwrap();
        let errs = validate_workload(&report);
        assert!(errs.is_empty(), "schema violations: {errs:?}");
        let summary = report.get("summary").unwrap();
        assert_eq!(summary.get("submitted").and_then(Json::as_u64), Some(4));
        assert_eq!(summary.get("completed").and_then(Json::as_u64), Some(4));
        // `validate` dispatches on `kind`.
        assert!(crate::validate(&report).is_empty());
    }

    #[test]
    fn open_loop_arrivals_are_seeded_and_results_deterministic() {
        let opts = WorkloadOptions {
            clients: None,
            rate_qps: 200.0,
            ..tiny()
        };
        let a = run_workload(&opts).unwrap();
        let b = run_workload(&opts).unwrap();
        // Same seed → same arrival plan and same per-query results.
        assert!(compare_workload(&a, &b).is_empty());
        assert!(compare_workload(&b, &a).is_empty());
        let queries = |r: &Json| -> Vec<String> {
            r.get("queries")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(|q| {
                    format!(
                        "{}:{}:{}",
                        q.get("query").and_then(Json::as_str).unwrap(),
                        q.get("planned_dop").and_then(Json::as_u64).unwrap(),
                        q.get("deadline_ms").and_then(Json::as_u64).unwrap(),
                    )
                })
                .collect()
        };
        assert_eq!(queries(&a), queries(&b));
    }

    #[test]
    fn rejections_are_recorded_not_fatal() {
        let opts = WorkloadOptions {
            admission: AdmissionConfig::rejecting(1),
            clients: Some(4),
            total: 8,
            ..tiny()
        };
        let report = run_workload(&opts).unwrap();
        let summary = report.get("summary").unwrap();
        let completed = summary.get("completed").and_then(Json::as_u64).unwrap();
        let rejected = summary.get("rejected").and_then(Json::as_u64).unwrap();
        assert_eq!(completed + rejected, 8);
        assert!(completed >= 1);
        assert!(validate_workload(&report).is_empty());
    }

    #[test]
    fn compare_workload_flags_checksum_drift() {
        let a = run_workload(&tiny()).unwrap();
        let text = a.to_string_pretty();
        let mut b = Json::parse(&text).unwrap();
        if let Json::Obj(fields) = &mut b {
            let queries = fields.iter_mut().find(|(k, _)| k == "queries").unwrap();
            if let Json::Arr(qs) = &mut queries.1 {
                if let Json::Obj(q) = &mut qs[0] {
                    q.iter_mut()
                        .find(|(k, _)| k == "result_checksum")
                        .unwrap()
                        .1 = Json::str("0xdeadbeef");
                }
            }
        }
        let errs = compare_workload(&a, &b);
        assert!(
            errs.iter().any(|e| e.contains("result_checksum")),
            "{errs:?}"
        );
        // And via the dispatching top-level compare.
        let errs = crate::compare(&a, &b, 0.2, 50.0);
        assert!(
            errs.iter().any(|e| e.contains("result_checksum")),
            "{errs:?}"
        );
    }

    #[test]
    fn mismatched_kinds_refuse_to_compare() {
        let a = run_workload(&tiny()).unwrap();
        let matrix_ish = Json::obj().with("schema_version", Json::u64(1));
        let errs = crate::compare(&a, &matrix_ish, 0.2, 50.0);
        assert!(errs.iter().any(|e| e.contains("kind")), "{errs:?}");
    }

    #[test]
    fn contention_preset_reallocates_across_queries() {
        let opts = WorkloadOptions {
            contention: true,
            total: 2,
            scale_factor: 0.01,
            workers: 4,
            ..WorkloadOptions::default()
        };
        let report = run_workload(&opts).unwrap();
        assert!(validate_workload(&report).is_empty());
        let summary = report.get("summary").unwrap();
        assert_eq!(summary.get("completed").and_then(Json::as_u64), Some(2));
        // Both queries ran concurrently on one pool; the fleet had live
        // members to arbitrate. (Cross-query rounds are timing-dependent,
        // so the hard `> 0` gate lives in the CI smoke run, which retries.)
        assert!(summary.get("fleet_rounds").and_then(Json::as_u64).unwrap() >= 1);
    }
}
