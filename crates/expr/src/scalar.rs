//! Scalar expression tree and vectorized evaluator.
//!
//! Expressions are evaluated page-at-a-time: `Expr::evaluate(&DataPage)`
//! returns a whole output [`Column`]. Hot numeric comparisons and arithmetic
//! use type-specialized loops; everything else goes through a scalar
//! fallback. SQL three-valued logic is honoured: any null operand makes an
//! arithmetic/comparison result null; AND/OR use Kleene semantics.

use std::fmt;
use std::sync::Arc;

use accordion_common::{AccordionError, Result};
use accordion_data::column::{Column, ColumnBuilder};
use accordion_data::page::DataPage;
use accordion_data::schema::Schema;
use accordion_data::types::{DataType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinaryOp {
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div
        )
    }

    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A scalar expression over the columns of a page.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by position.
    Column(usize),
    /// Constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        left: Arc<Expr>,
        op: BinaryOp,
        right: Arc<Expr>,
    },
    /// Boolean negation.
    Not(Arc<Expr>),
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        expr: Arc<Expr>,
        low: Arc<Expr>,
        high: Arc<Expr>,
    },
    /// `expr IN (v1, v2, ...)` against literal values.
    InList { expr: Arc<Expr>, list: Vec<Value> },
    /// SQL LIKE with `%` (any run) and `_` (any char) wildcards.
    Like { expr: Arc<Expr>, pattern: String },
    /// `CASE WHEN c1 THEN v1 ... ELSE e END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        otherwise: Option<Arc<Expr>>,
    },
    /// Extracts the year of a Date32 as Int64 (TPC-H `extract(year ...)`).
    ExtractYear(Arc<Expr>),
    /// IS NULL test (never null itself).
    IsNull(Arc<Expr>),
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn lit_i64(v: i64) -> Expr {
        Expr::Literal(Value::Int64(v))
    }

    pub fn lit_f64(v: f64) -> Expr {
        Expr::Literal(Value::Float64(v))
    }

    pub fn lit_str(v: &str) -> Expr {
        Expr::Literal(Value::Utf8(v.to_string()))
    }

    pub fn lit_date(days: i32) -> Expr {
        Expr::Literal(Value::Date32(days))
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Arc::new(left),
            op,
            right: Arc::new(right),
        }
    }

    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::binary(l, BinaryOp::Eq, r)
    }

    pub fn lt(l: Expr, r: Expr) -> Expr {
        Expr::binary(l, BinaryOp::Lt, r)
    }

    pub fn gt(l: Expr, r: Expr) -> Expr {
        Expr::binary(l, BinaryOp::Gt, r)
    }

    pub fn and(l: Expr, r: Expr) -> Expr {
        Expr::binary(l, BinaryOp::And, r)
    }

    // Static constructors, not `std::ops` impls — expressions are built,
    // not evaluated, by these.
    #[allow(clippy::should_implement_trait)]
    pub fn add(l: Expr, r: Expr) -> Expr {
        Expr::binary(l, BinaryOp::Add, r)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn sub(l: Expr, r: Expr) -> Expr {
        Expr::binary(l, BinaryOp::Sub, r)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn mul(l: Expr, r: Expr) -> Expr {
        Expr::binary(l, BinaryOp::Mul, r)
    }

    pub fn between(e: Expr, low: Expr, high: Expr) -> Expr {
        Expr::Between {
            expr: Arc::new(e),
            low: Arc::new(low),
            high: Arc::new(high),
        }
    }

    /// All column indices referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) | Expr::ExtractYear(e) | Expr::IsNull(e) => e.collect_columns(out),
            Expr::Between { expr, low, high } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::InList { expr, .. } => expr.collect_columns(out),
            Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (c, v) in branches {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = otherwise {
                    e.collect_columns(out);
                }
            }
        }
    }

    /// Rewrites column references through `mapping[old] = new`.
    pub fn remap_columns(&self, mapping: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(mapping(*i)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Arc::new(left.remap_columns(mapping)),
                op: *op,
                right: Arc::new(right.remap_columns(mapping)),
            },
            Expr::Not(e) => Expr::Not(Arc::new(e.remap_columns(mapping))),
            Expr::ExtractYear(e) => Expr::ExtractYear(Arc::new(e.remap_columns(mapping))),
            Expr::IsNull(e) => Expr::IsNull(Arc::new(e.remap_columns(mapping))),
            Expr::Between { expr, low, high } => Expr::Between {
                expr: Arc::new(expr.remap_columns(mapping)),
                low: Arc::new(low.remap_columns(mapping)),
                high: Arc::new(high.remap_columns(mapping)),
            },
            Expr::InList { expr, list } => Expr::InList {
                expr: Arc::new(expr.remap_columns(mapping)),
                list: list.clone(),
            },
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Arc::new(expr.remap_columns(mapping)),
                pattern: pattern.clone(),
            },
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.remap_columns(mapping), v.remap_columns(mapping)))
                    .collect(),
                otherwise: otherwise
                    .as_ref()
                    .map(|e| Arc::new(e.remap_columns(mapping))),
            },
        }
    }

    /// Operand type for compatibility checks: `None` for an untyped NULL
    /// literal (NULL compares with anything — the result is just NULL).
    fn operand_type(&self, input: &Schema) -> Result<Option<DataType>> {
        if matches!(self, Expr::Literal(Value::Null)) {
            return Ok(None);
        }
        self.data_type(input).map(Some)
    }

    /// Infers the output type against an input schema, rejecting operand
    /// type combinations that could never match at runtime (e.g.
    /// `int_col > 'string'` — comparisons across incompatible types would
    /// otherwise type-check as Bool and silently select nothing).
    pub fn data_type(&self, input: &Schema) -> Result<DataType> {
        match self {
            Expr::Column(i) => input
                .fields()
                .get(*i)
                .map(|f| f.data_type)
                .ok_or_else(|| AccordionError::Analysis(format!("column #{i} out of range"))),
            Expr::Literal(v) => v
                .data_type()
                .ok_or_else(|| AccordionError::Analysis("untyped NULL literal".into())),
            Expr::Binary { left, op, right } => {
                if op.is_comparison() {
                    check_comparable(left, right, input, *op)?;
                    return Ok(DataType::Bool);
                }
                if op.is_logical() {
                    for side in [left, right] {
                        if let Some(t) = side.operand_type(input)? {
                            if t != DataType::Bool {
                                return Err(AccordionError::Analysis(format!(
                                    "{op} requires boolean operands, got {t}"
                                )));
                            }
                        }
                    }
                    return Ok(DataType::Bool);
                }
                let lt = left.data_type(input)?;
                let rt = right.data_type(input)?;
                match (lt, rt) {
                    (DataType::Float64, _) | (_, DataType::Float64) => Ok(DataType::Float64),
                    (DataType::Int64, DataType::Int64) => {
                        if *op == BinaryOp::Div {
                            Ok(DataType::Float64)
                        } else {
                            Ok(DataType::Int64)
                        }
                    }
                    (DataType::Date32, DataType::Int64) => Ok(DataType::Date32),
                    other => Err(AccordionError::Analysis(format!(
                        "invalid operand types {other:?} for {op}"
                    ))),
                }
            }
            Expr::Between { expr, low, high } => {
                check_comparable(expr, low, input, BinaryOp::GtEq)?;
                check_comparable(expr, high, input, BinaryOp::LtEq)?;
                Ok(DataType::Bool)
            }
            Expr::InList { expr, list } => {
                if let Some(t) = expr.operand_type(input)? {
                    for v in list {
                        if let Some(vt) = v.data_type() {
                            if !comparable_types(t, vt) {
                                return Err(AccordionError::Analysis(format!(
                                    "IN list value of type {vt} is not comparable to {t}"
                                )));
                            }
                        }
                    }
                }
                Ok(DataType::Bool)
            }
            Expr::Like { expr, .. } => {
                if let Some(t) = expr.operand_type(input)? {
                    if t != DataType::Utf8 {
                        return Err(AccordionError::Analysis(format!(
                            "LIKE requires a string operand, got {t}"
                        )));
                    }
                }
                Ok(DataType::Bool)
            }
            Expr::Not(e) => {
                if let Some(t) = e.operand_type(input)? {
                    if t != DataType::Bool {
                        return Err(AccordionError::Analysis(format!(
                            "NOT requires a boolean operand, got {t}"
                        )));
                    }
                }
                Ok(DataType::Bool)
            }
            Expr::IsNull(_) => Ok(DataType::Bool),
            Expr::ExtractYear(e) => {
                if let Some(t) = e.operand_type(input)? {
                    if t != DataType::Date32 {
                        return Err(AccordionError::Analysis(format!(
                            "EXTRACT YEAR requires a date operand, got {t}"
                        )));
                    }
                }
                Ok(DataType::Int64)
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                if let Some((_, v)) = branches.first() {
                    v.data_type(input)
                } else if let Some(e) = otherwise {
                    e.data_type(input)
                } else {
                    Err(AccordionError::Analysis("empty CASE".into()))
                }
            }
        }
    }

    /// Evaluates the expression over every row of `page`.
    pub fn evaluate(&self, page: &DataPage) -> Result<Column> {
        let n = page.row_count();
        match self {
            Expr::Column(i) => {
                if *i >= page.num_columns() {
                    return Err(AccordionError::Execution(format!(
                        "column #{i} out of range ({} columns)",
                        page.num_columns()
                    )));
                }
                Ok(page.column(*i).clone())
            }
            Expr::Literal(v) => Ok(broadcast_literal(v, n)),
            Expr::Binary { left, op, right } => {
                let l = left.evaluate(page)?;
                let r = right.evaluate(page)?;
                eval_binary(&l, *op, &r)
            }
            Expr::Not(e) => {
                let c = e.evaluate(page)?;
                let mut b = ColumnBuilder::new(DataType::Bool, n);
                for i in 0..n {
                    match c.value(i) {
                        Value::Bool(v) => b.push(Value::Bool(!v)),
                        Value::Null => b.push(Value::Null),
                        other => {
                            return Err(AccordionError::Execution(format!(
                                "NOT over non-boolean {other:?}"
                            )))
                        }
                    }
                }
                Ok(b.finish())
            }
            Expr::Between { expr, low, high } => {
                // expr >= low AND expr <= high — desugared at eval time.
                let ge = Expr::Binary {
                    left: expr.clone(),
                    op: BinaryOp::GtEq,
                    right: low.clone(),
                };
                let le = Expr::Binary {
                    left: expr.clone(),
                    op: BinaryOp::LtEq,
                    right: high.clone(),
                };
                Expr::binary(ge, BinaryOp::And, le).evaluate(page)
            }
            Expr::InList { expr, list } => {
                let c = expr.evaluate(page)?;
                let mut b = ColumnBuilder::new(DataType::Bool, n);
                for i in 0..n {
                    let v = c.value(i);
                    if v.is_null() {
                        b.push(Value::Null);
                    } else {
                        b.push(Value::Bool(list.contains(&v)));
                    }
                }
                Ok(b.finish())
            }
            Expr::Like { expr, pattern } => {
                let c = expr.evaluate(page)?;
                let mut b = ColumnBuilder::new(DataType::Bool, n);
                for i in 0..n {
                    match c.value(i) {
                        Value::Utf8(s) => b.push(Value::Bool(like_match(pattern, &s))),
                        Value::Null => b.push(Value::Null),
                        other => {
                            return Err(AccordionError::Execution(format!(
                                "LIKE over non-string {other:?}"
                            )))
                        }
                    }
                }
                Ok(b.finish())
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                let conds: Vec<Column> = branches
                    .iter()
                    .map(|(c, _)| c.evaluate(page))
                    .collect::<Result<_>>()?;
                let vals: Vec<Column> = branches
                    .iter()
                    .map(|(_, v)| v.evaluate(page))
                    .collect::<Result<_>>()?;
                let default = otherwise.as_ref().map(|e| e.evaluate(page)).transpose()?;
                let out_type = vals
                    .first()
                    .map(|c| c.data_type())
                    .or(default.as_ref().map(|c| c.data_type()))
                    .ok_or_else(|| AccordionError::Execution("empty CASE".into()))?;
                let mut b = ColumnBuilder::new(out_type, n);
                'rows: for i in 0..n {
                    for (cond, val) in conds.iter().zip(&vals) {
                        if cond.value(i) == Value::Bool(true) {
                            b.push(val.value(i));
                            continue 'rows;
                        }
                    }
                    match &default {
                        Some(d) => b.push(d.value(i)),
                        None => b.push(Value::Null),
                    }
                }
                Ok(b.finish())
            }
            Expr::ExtractYear(e) => {
                let c = e.evaluate(page)?;
                let mut b = ColumnBuilder::new(DataType::Int64, n);
                for i in 0..n {
                    match c.value(i) {
                        Value::Date32(d) => {
                            let y = accordion_data::types::format_date32(d)[..4]
                                .parse::<i64>()
                                .expect("year digits");
                            b.push(Value::Int64(y));
                        }
                        Value::Null => b.push(Value::Null),
                        other => {
                            return Err(AccordionError::Execution(format!(
                                "EXTRACT YEAR over non-date {other:?}"
                            )))
                        }
                    }
                }
                Ok(b.finish())
            }
            Expr::IsNull(e) => {
                let c = e.evaluate(page)?;
                let mut b = ColumnBuilder::new(DataType::Bool, n);
                for i in 0..n {
                    b.push(Value::Bool(!c.is_valid(i)));
                }
                Ok(b.finish())
            }
        }
    }

    /// Evaluates a predicate and returns the selected row indices.
    pub fn filter_indices(&self, page: &DataPage) -> Result<Vec<u32>> {
        let mask = self.evaluate(page)?;
        let bools = mask.as_bool().ok_or_else(|| {
            AccordionError::Execution(format!(
                "filter predicate evaluated to {} not BOOL",
                mask.data_type()
            ))
        })?;
        let mut out = Vec::new();
        for (i, &keep) in bools.iter().enumerate() {
            if keep && mask.is_valid(i) {
                out.push(i as u32);
            }
        }
        Ok(out)
    }
}

/// True when values of the two types can be meaningfully ordered against
/// each other: identical types, or any numeric pair (Int64/Float64 promote).
fn comparable_types(a: DataType, b: DataType) -> bool {
    a == b || (a.is_numeric() && b.is_numeric())
}

/// Rejects comparisons whose operand types could never match at runtime.
fn check_comparable(left: &Expr, right: &Expr, input: &Schema, op: BinaryOp) -> Result<()> {
    let lt = left.operand_type(input)?;
    let rt = right.operand_type(input)?;
    if let (Some(a), Some(b)) = (lt, rt) {
        if !comparable_types(a, b) {
            return Err(AccordionError::Analysis(format!(
                "cannot compare {a} {op} {b}: incompatible types"
            )));
        }
    }
    Ok(())
}

fn broadcast_literal(v: &Value, n: usize) -> Column {
    match v {
        Value::Int64(x) => Column::from_i64(vec![*x; n]),
        Value::Float64(x) => Column::from_f64(vec![*x; n]),
        Value::Bool(x) => Column::from_bool(vec![*x; n]),
        Value::Date32(x) => Column::from_date32(vec![*x; n]),
        Value::Utf8(x) => {
            let vals: Vec<&str> = (0..n).map(|_| x.as_str()).collect();
            Column::from_strings(&vals)
        }
        Value::Null => {
            // Typeless null literal: represent as all-null Int64.
            let mut b = ColumnBuilder::new(DataType::Int64, n);
            for _ in 0..n {
                b.push(Value::Null);
            }
            b.finish()
        }
    }
}

/// Specialized vectorized kernels for the hot numeric paths, with a scalar
/// fallback for everything else.
fn eval_binary(l: &Column, op: BinaryOp, r: &Column) -> Result<Column> {
    use BinaryOp::*;
    let n = l.len();
    if n != r.len() {
        return Err(AccordionError::Execution(format!(
            "binary operand length mismatch: {} vs {}",
            n,
            r.len()
        )));
    }
    let no_nulls = l.null_count() == 0 && r.null_count() == 0;

    // Fast paths: non-null i64 and f64 vectors.
    if no_nulls {
        if let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) {
            return Ok(match op {
                // Wrapping arithmetic: i64 overflow must produce the same
                // result in debug and release builds and on every eval path
                // (this kernel, the scalar fallback, the SUM accumulator).
                Add => Column::from_i64(a.iter().zip(b).map(|(x, y)| x.wrapping_add(*y)).collect()),
                Sub => Column::from_i64(a.iter().zip(b).map(|(x, y)| x.wrapping_sub(*y)).collect()),
                Mul => Column::from_i64(a.iter().zip(b).map(|(x, y)| x.wrapping_mul(*y)).collect()),
                Div => Column::from_f64(
                    a.iter()
                        .zip(b)
                        .map(|(x, y)| *x as f64 / *y as f64)
                        .collect(),
                ),
                Eq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x == y).collect()),
                NotEq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x != y).collect()),
                Lt => Column::from_bool(a.iter().zip(b).map(|(x, y)| x < y).collect()),
                LtEq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x <= y).collect()),
                Gt => Column::from_bool(a.iter().zip(b).map(|(x, y)| x > y).collect()),
                GtEq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x >= y).collect()),
                And | Or => {
                    return Err(AccordionError::Execution(
                        "AND/OR over integer columns".into(),
                    ))
                }
            });
        }
        if let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) {
            return Ok(match op {
                Add => Column::from_f64(a.iter().zip(b).map(|(x, y)| x + y).collect()),
                Sub => Column::from_f64(a.iter().zip(b).map(|(x, y)| x - y).collect()),
                Mul => Column::from_f64(a.iter().zip(b).map(|(x, y)| x * y).collect()),
                Div => Column::from_f64(a.iter().zip(b).map(|(x, y)| x / y).collect()),
                Eq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x == y).collect()),
                NotEq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x != y).collect()),
                Lt => Column::from_bool(a.iter().zip(b).map(|(x, y)| x < y).collect()),
                LtEq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x <= y).collect()),
                Gt => Column::from_bool(a.iter().zip(b).map(|(x, y)| x > y).collect()),
                GtEq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x >= y).collect()),
                And | Or => {
                    return Err(AccordionError::Execution(
                        "AND/OR over float columns".into(),
                    ))
                }
            });
        }
        if let (Some(a), Some(b)) = (l.as_date32(), r.as_date32()) {
            if op.is_comparison() {
                return Ok(match op {
                    Eq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x == y).collect()),
                    NotEq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x != y).collect()),
                    Lt => Column::from_bool(a.iter().zip(b).map(|(x, y)| x < y).collect()),
                    LtEq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x <= y).collect()),
                    Gt => Column::from_bool(a.iter().zip(b).map(|(x, y)| x > y).collect()),
                    GtEq => Column::from_bool(a.iter().zip(b).map(|(x, y)| x >= y).collect()),
                    _ => unreachable!(),
                });
            }
        }
        // Date ± days arithmetic (e.g. `l_shipdate + 30`).
        if let (Some(a), Some(b)) = (l.as_date32(), r.as_i64()) {
            if matches!(op, Add | Sub) {
                return Ok(match op {
                    Add => Column::from_date32(
                        a.iter()
                            .zip(b)
                            .map(|(x, y)| x.wrapping_add(*y as i32))
                            .collect(),
                    ),
                    Sub => Column::from_date32(
                        a.iter()
                            .zip(b)
                            .map(|(x, y)| x.wrapping_sub(*y as i32))
                            .collect(),
                    ),
                    _ => unreachable!(),
                });
            }
        }
        if let (Some(a), Some(b)) = (l.as_bool(), r.as_bool()) {
            if op.is_logical() {
                return Ok(match op {
                    And => Column::from_bool(a.iter().zip(b).map(|(x, y)| *x && *y).collect()),
                    Or => Column::from_bool(a.iter().zip(b).map(|(x, y)| *x || *y).collect()),
                    _ => unreachable!(),
                });
            }
        }
    }

    // Generic scalar fallback with SQL null semantics.
    let out_type = match op {
        op if op.is_comparison() || op.is_logical() => DataType::Bool,
        _ => match (l.data_type(), r.data_type()) {
            (DataType::Float64, _) | (_, DataType::Float64) => DataType::Float64,
            (DataType::Int64, DataType::Int64) => {
                if op == Div {
                    DataType::Float64
                } else {
                    DataType::Int64
                }
            }
            (DataType::Date32, DataType::Int64) => DataType::Date32,
            (a, b) => {
                return Err(AccordionError::Execution(format!(
                    "unsupported operand types {a} {op} {b}"
                )))
            }
        },
    };
    let mut out = ColumnBuilder::new(out_type, n);
    for i in 0..n {
        let a = l.value(i);
        let b = r.value(i);
        out.push(eval_binary_scalar(&a, op, &b)?);
    }
    Ok(out.finish())
}

/// Scalar semantics, including Kleene AND/OR with nulls.
fn eval_binary_scalar(a: &Value, op: BinaryOp, b: &Value) -> Result<Value> {
    use BinaryOp::*;
    if op.is_logical() {
        let av = a.as_bool();
        let bv = b.as_bool();
        return Ok(match (op, av, bv) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
            (And, Some(true), Some(true)) => Value::Bool(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
            (Or, Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        });
    }
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = a.total_cmp(b);
        return Ok(Value::Bool(match op {
            Eq => ord == std::cmp::Ordering::Equal,
            NotEq => ord != std::cmp::Ordering::Equal,
            Lt => ord == std::cmp::Ordering::Less,
            LtEq => ord != std::cmp::Ordering::Greater,
            Gt => ord == std::cmp::Ordering::Greater,
            GtEq => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        }));
    }
    // Arithmetic.
    match (a, b) {
        // Wrapping, matching the vectorized fast paths exactly.
        (Value::Int64(x), Value::Int64(y)) => Ok(match op {
            Add => Value::Int64(x.wrapping_add(*y)),
            Sub => Value::Int64(x.wrapping_sub(*y)),
            Mul => Value::Int64(x.wrapping_mul(*y)),
            Div => Value::Float64(*x as f64 / *y as f64),
            _ => unreachable!(),
        }),
        (Value::Date32(x), Value::Int64(y)) => Ok(match op {
            Add => Value::Date32(x.wrapping_add(*y as i32)),
            Sub => Value::Date32(x.wrapping_sub(*y as i32)),
            _ => {
                return Err(AccordionError::Execution(
                    "only +/- defined on dates".into(),
                ))
            }
        }),
        _ => {
            let x = a.as_f64();
            let y = b.as_f64();
            match (x, y) {
                (Some(x), Some(y)) => Ok(match op {
                    Add => Value::Float64(x + y),
                    Sub => Value::Float64(x - y),
                    Mul => Value::Float64(x * y),
                    Div => Value::Float64(x / y),
                    _ => unreachable!(),
                }),
                _ => Err(AccordionError::Execution(format!(
                    "unsupported scalar operands {a:?} {op} {b:?}"
                ))),
            }
        }
    }
}

/// SQL LIKE matcher supporting `%` and `_`.
pub fn like_match(pattern: &str, s: &str) -> bool {
    fn rec(p: &[char], s: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => (0..=s.len()).any(|k| rec(rest, &s[k..])),
            Some(('_', rest)) => !s.is_empty() && rec(rest, &s[1..]),
            Some((c, rest)) => s.first() == Some(c) && rec(rest, &s[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let sc: Vec<char> = s.chars().collect();
    rec(&p, &sc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accordion_data::schema::Field;

    fn num_page() -> DataPage {
        DataPage::new(vec![
            Column::from_i64(vec![1, 2, 3, 4]),
            Column::from_f64(vec![10.0, 20.0, 30.0, 40.0]),
            Column::from_strings(&["apple", "banana", "avocado", "cherry"]),
            Column::from_date32(vec![100, 200, 300, 400]),
        ])
    }

    #[test]
    fn arithmetic_int() {
        let p = num_page();
        let e = Expr::add(Expr::col(0), Expr::lit_i64(10));
        let c = e.evaluate(&p).unwrap();
        assert_eq!(c.as_i64().unwrap(), &[11, 12, 13, 14]);
        let e = Expr::mul(Expr::col(0), Expr::col(0));
        assert_eq!(e.evaluate(&p).unwrap().as_i64().unwrap(), &[1, 4, 9, 16]);
    }

    #[test]
    fn int_division_produces_float() {
        let p = num_page();
        let e = Expr::binary(Expr::col(0), BinaryOp::Div, Expr::lit_i64(2));
        let c = e.evaluate(&p).unwrap();
        assert_eq!(c.as_f64().unwrap(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn mixed_numeric_promotes() {
        let p = num_page();
        let e = Expr::mul(Expr::col(0), Expr::col(1));
        let c = e.evaluate(&p).unwrap();
        assert_eq!(c.as_f64().unwrap(), &[10.0, 40.0, 90.0, 160.0]);
    }

    #[test]
    fn comparisons_and_filter() {
        let p = num_page();
        let e = Expr::gt(Expr::col(0), Expr::lit_i64(2));
        let idx = e.filter_indices(&p).unwrap();
        assert_eq!(idx, vec![2, 3]);
        let e = Expr::and(
            Expr::gt(Expr::col(0), Expr::lit_i64(1)),
            Expr::lt(Expr::col(1), Expr::lit_f64(40.0)),
        );
        assert_eq!(e.filter_indices(&p).unwrap(), vec![1, 2]);
    }

    #[test]
    fn date_comparison() {
        let p = num_page();
        let e = Expr::lt(Expr::col(3), Expr::lit_date(250));
        assert_eq!(e.filter_indices(&p).unwrap(), vec![0, 1]);
    }

    #[test]
    fn between_inclusive() {
        let p = num_page();
        let e = Expr::between(Expr::col(0), Expr::lit_i64(2), Expr::lit_i64(3));
        assert_eq!(e.filter_indices(&p).unwrap(), vec![1, 2]);
    }

    #[test]
    fn in_list() {
        let p = num_page();
        let e = Expr::InList {
            expr: Arc::new(Expr::col(2)),
            list: vec![Value::Utf8("apple".into()), Value::Utf8("cherry".into())],
        };
        assert_eq!(e.filter_indices(&p).unwrap(), vec![0, 3]);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("a%", "apple"));
        assert!(like_match("%an%", "banana"));
        assert!(like_match("_herry", "cherry"));
        assert!(!like_match("a%", "banana"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
        let p = num_page();
        let e = Expr::Like {
            expr: Arc::new(Expr::col(2)),
            pattern: "a%".into(),
        };
        assert_eq!(e.filter_indices(&p).unwrap(), vec![0, 2]);
    }

    #[test]
    fn case_expression() {
        let p = num_page();
        let e = Expr::Case {
            branches: vec![(Expr::gt(Expr::col(0), Expr::lit_i64(2)), Expr::lit_i64(1))],
            otherwise: Some(Arc::new(Expr::lit_i64(0))),
        };
        let c = e.evaluate(&p).unwrap();
        assert_eq!(c.as_i64().unwrap(), &[0, 0, 1, 1]);
    }

    #[test]
    fn case_without_else_yields_null() {
        let p = num_page();
        let e = Expr::Case {
            branches: vec![(Expr::gt(Expr::col(0), Expr::lit_i64(3)), Expr::lit_i64(1))],
            otherwise: None,
        };
        let c = e.evaluate(&p).unwrap();
        assert_eq!(c.null_count(), 3);
    }

    #[test]
    fn extract_year() {
        use accordion_data::types::parse_date32;
        let p = DataPage::new(vec![Column::from_date32(vec![
            parse_date32("1994-03-05").unwrap(),
            parse_date32("1998-12-01").unwrap(),
        ])]);
        let e = Expr::ExtractYear(Arc::new(Expr::col(0)));
        let c = e.evaluate(&p).unwrap();
        assert_eq!(c.as_i64().unwrap(), &[1994, 1998]);
    }

    #[test]
    fn null_propagation_and_kleene_logic() {
        let mut b = ColumnBuilder::new(DataType::Int64, 3);
        b.push(Value::Int64(1));
        b.push(Value::Null);
        b.push(Value::Int64(3));
        let p = DataPage::new(vec![b.finish()]);
        // Arithmetic null propagation.
        let c = Expr::add(Expr::col(0), Expr::lit_i64(1))
            .evaluate(&p)
            .unwrap();
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(0), Value::Int64(2));
        // Comparison null propagation: filter drops null rows.
        let idx = Expr::gt(Expr::col(0), Expr::lit_i64(0))
            .filter_indices(&p)
            .unwrap();
        assert_eq!(idx, vec![0, 2]);
        // Kleene: NULL OR TRUE = TRUE.
        let e = Expr::binary(
            Expr::IsNull(Arc::new(Expr::col(0))),
            BinaryOp::Or,
            Expr::gt(Expr::col(0), Expr::lit_i64(0)),
        );
        assert_eq!(e.filter_indices(&p).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn is_null_never_null() {
        let mut b = ColumnBuilder::new(DataType::Int64, 2);
        b.push(Value::Null);
        b.push(Value::Int64(5));
        let p = DataPage::new(vec![b.finish()]);
        let c = Expr::IsNull(Arc::new(Expr::col(0))).evaluate(&p).unwrap();
        assert_eq!(c.as_bool().unwrap(), &[true, false]);
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn referenced_columns_and_remap() {
        let e = Expr::and(
            Expr::gt(Expr::col(3), Expr::lit_i64(0)),
            Expr::eq(Expr::col(1), Expr::col(3)),
        );
        assert_eq!(e.referenced_columns(), vec![1, 3]);
        let remapped = e.remap_columns(&|i| i + 10);
        assert_eq!(remapped.referenced_columns(), vec![11, 13]);
    }

    #[test]
    fn type_inference() {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("f", DataType::Float64),
        ]);
        assert_eq!(
            Expr::add(Expr::col(0), Expr::col(1))
                .data_type(&schema)
                .unwrap(),
            DataType::Float64
        );
        assert_eq!(
            Expr::gt(Expr::col(0), Expr::lit_i64(1))
                .data_type(&schema)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::binary(Expr::col(0), BinaryOp::Div, Expr::col(0))
                .data_type(&schema)
                .unwrap(),
            DataType::Float64
        );
        assert!(Expr::col(9).data_type(&schema).is_err());
    }

    #[test]
    fn incompatible_comparisons_rejected_at_type_check() {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("s", DataType::Utf8),
            Field::new("d", DataType::Date32),
        ]);
        // int_col > 'string' — the ROADMAP gap — is now an analysis error.
        let e = Expr::gt(Expr::col(0), Expr::lit_str("banana"));
        assert!(matches!(
            e.data_type(&schema),
            Err(AccordionError::Analysis(_))
        ));
        // string vs date, date vs int: also rejected.
        assert!(Expr::eq(Expr::col(1), Expr::lit_date(7))
            .data_type(&schema)
            .is_err());
        assert!(Expr::lt(Expr::col(2), Expr::lit_i64(7))
            .data_type(&schema)
            .is_err());
        // BETWEEN / IN / LIKE get the same treatment.
        assert!(
            Expr::between(Expr::col(0), Expr::lit_str("a"), Expr::lit_str("b"))
                .data_type(&schema)
                .is_err()
        );
        let in_list = Expr::InList {
            expr: Arc::new(Expr::col(0)),
            list: vec![Value::Utf8("x".into())],
        };
        assert!(in_list.data_type(&schema).is_err());
        let like_int = Expr::Like {
            expr: Arc::new(Expr::col(0)),
            pattern: "a%".into(),
        };
        assert!(like_int.data_type(&schema).is_err());
        // AND over non-boolean operands is rejected too.
        assert!(Expr::and(Expr::col(0), Expr::col(1))
            .data_type(&schema)
            .is_err());
        // NOT over a non-boolean and EXTRACT YEAR over a non-date as well.
        assert!(Expr::Not(Arc::new(Expr::col(0)))
            .data_type(&schema)
            .is_err());
        assert!(Expr::ExtractYear(Arc::new(Expr::col(0)))
            .data_type(&schema)
            .is_err());
        // ...while their legal forms still type-check.
        assert_eq!(
            Expr::Not(Arc::new(Expr::gt(Expr::col(0), Expr::lit_i64(1))))
                .data_type(&schema)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::ExtractYear(Arc::new(Expr::col(2)))
                .data_type(&schema)
                .unwrap(),
            DataType::Int64
        );
    }

    #[test]
    fn compatible_comparisons_still_type_check() {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ]);
        // Numeric cross-type comparison promotes.
        assert_eq!(
            Expr::gt(Expr::col(0), Expr::col(1))
                .data_type(&schema)
                .unwrap(),
            DataType::Bool
        );
        // NULL literal compares with anything (result is NULL, not an error).
        assert_eq!(
            Expr::eq(Expr::col(2), Expr::lit(Value::Null))
                .data_type(&schema)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::eq(Expr::col(2), Expr::lit_str("x"))
                .data_type(&schema)
                .unwrap(),
            DataType::Bool
        );
    }

    #[test]
    fn filter_on_non_bool_errors() {
        let p = num_page();
        assert!(Expr::col(0).filter_indices(&p).is_err());
    }

    #[test]
    fn length_mismatch_errors() {
        let a = Column::from_i64(vec![1, 2]);
        let b = Column::from_i64(vec![1]);
        assert!(eval_binary(&a, BinaryOp::Add, &b).is_err());
    }

    #[test]
    fn int_overflow_wraps_on_every_path() {
        // The vectorized no-null fast path, the null-handling fallback, and
        // the scalar evaluator must all wrap identically at i64::MAX.
        let a = Column::from_i64(vec![i64::MAX, i64::MIN, i64::MAX]);
        let b = Column::from_i64(vec![1, -1, 2]);
        let fast = eval_binary(&a, BinaryOp::Add, &b).unwrap();
        assert_eq!(
            fast.as_i64().unwrap(),
            &[i64::MIN, i64::MAX, i64::MIN + 1],
            "no-null fast path wraps"
        );
        let mul = eval_binary(&a, BinaryOp::Mul, &b).unwrap();
        assert_eq!(mul.as_i64().unwrap()[2], i64::MAX.wrapping_mul(2));
        let sub = eval_binary(&b, BinaryOp::Sub, &a).unwrap();
        assert_eq!(sub.as_i64().unwrap()[0], 1i64.wrapping_sub(i64::MAX));

        // Same inputs with a null in the page take the scalar fallback; the
        // non-null rows must produce the identical wrapped values.
        let mut nb = ColumnBuilder::new(DataType::Int64, 3);
        nb.push(Value::Int64(1));
        nb.push(Value::Null);
        nb.push(Value::Int64(2));
        let b_null = nb.finish();
        let slow = eval_binary(&a, BinaryOp::Add, &b_null).unwrap();
        assert_eq!(slow.value(0), Value::Int64(i64::MIN));
        assert_eq!(slow.value(1), Value::Null);
        assert_eq!(slow.value(2), Value::Int64(i64::MIN + 1));
        assert_eq!(
            eval_binary_scalar(&Value::Int64(i64::MAX), BinaryOp::Add, &Value::Int64(1)).unwrap(),
            Value::Int64(i64::MIN)
        );
    }

    #[test]
    fn date_plus_int_fast_path() {
        let p = num_page();
        // dates [100, 200, 300, 400] ± constant days.
        let plus = Expr::add(Expr::col(3), Expr::lit_i64(30))
            .evaluate(&p)
            .unwrap();
        assert_eq!(plus.as_date32().unwrap(), &[130, 230, 330, 430]);
        let minus = Expr::binary(Expr::col(3), BinaryOp::Sub, Expr::lit_i64(50))
            .evaluate(&p)
            .unwrap();
        assert_eq!(minus.as_date32().unwrap(), &[50, 150, 250, 350]);
        // With a null present the fallback runs; results must agree.
        let mut nb = ColumnBuilder::new(DataType::Int64, 4);
        for v in [
            Value::Int64(30),
            Value::Null,
            Value::Int64(30),
            Value::Int64(30),
        ] {
            nb.push(v);
        }
        let slow = eval_binary(p.column(3), BinaryOp::Add, &nb.finish()).unwrap();
        assert_eq!(slow.value(0), Value::Date32(130));
        assert_eq!(slow.value(1), Value::Null);
        assert_eq!(slow.value(3), Value::Date32(430));
        // Comparisons on dates still route through the comparison kernels.
        let cmp = Expr::lt(Expr::col(3), Expr::lit_date(250));
        assert_eq!(cmp.filter_indices(&p).unwrap(), vec![0, 1]);
    }
}
