//! Aggregate functions in the two-phase model.
//!
//! The paper (§4.1) keeps aggregation elastic by splitting it: the
//! **partial** phase runs in the scan-side stage at any parallelism (its
//! per-task state is reconstructible, so tasks/drivers can come and go), and
//! the **final** phase merges all partial states at parallelism 1.
//!
//! An [`AggSpec`] describes one aggregate call; [`AggState`] is the
//! accumulator. Partial states serialize into ordinary page columns
//! ([`AggState::partial_values`] / [`AggSpec::partial_state_types`]), so the
//! exchange between partial and final stages is plain page flow.

use std::fmt;

use accordion_common::{AccordionError, Result};
use accordion_data::types::{DataType, Value};

use crate::scalar::Expr;

/// Which aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// COUNT(expr) / COUNT(*) when `input` is `None`.
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Avg => "avg",
            AggKind::Min => "min",
            AggKind::Max => "max",
        };
        f.write_str(s)
    }
}

/// One aggregate call in a plan: `kind(input)` named `name`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub kind: AggKind,
    /// Argument expression; `None` only for COUNT(*).
    pub input: Option<Expr>,
    /// Output column name.
    pub name: String,
    /// Input value type (set by the analyzer/planner; used to pick the
    /// accumulator representation).
    pub input_type: DataType,
}

impl AggSpec {
    pub fn count_star(name: impl Into<String>) -> Self {
        AggSpec {
            kind: AggKind::Count,
            input: None,
            name: name.into(),
            input_type: DataType::Int64,
        }
    }

    pub fn new(kind: AggKind, input: Expr, input_type: DataType, name: impl Into<String>) -> Self {
        AggSpec {
            kind,
            input: Some(input),
            name: name.into(),
            input_type,
        }
    }

    /// Output type of the *final* result.
    pub fn output_type(&self) -> DataType {
        match self.kind {
            AggKind::Count => DataType::Int64,
            AggKind::Avg => DataType::Float64,
            AggKind::Sum => match self.input_type {
                DataType::Int64 => DataType::Int64,
                _ => DataType::Float64,
            },
            AggKind::Min | AggKind::Max => self.input_type,
        }
    }

    /// Column types of the serialized partial state (what flows between the
    /// partial-agg stage and the final-agg stage).
    pub fn partial_state_types(&self) -> Vec<DataType> {
        match self.kind {
            AggKind::Count => vec![DataType::Int64],
            AggKind::Sum => vec![self.output_type()],
            AggKind::Avg => vec![DataType::Float64, DataType::Int64],
            AggKind::Min | AggKind::Max => vec![self.input_type],
        }
    }

    pub fn new_state(&self) -> AggState {
        match self.kind {
            AggKind::Count => AggState::Count(0),
            AggKind::Sum => match self.input_type {
                DataType::Int64 => AggState::SumInt(0, false),
                _ => AggState::SumFloat(0.0, false),
            },
            AggKind::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggKind::Min => AggState::Min(None),
            AggKind::Max => AggState::Max(None),
        }
    }
}

/// Accumulator for one aggregate over one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Count(i64),
    /// (sum, saw_any) — SQL SUM over zero rows is NULL.
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Avg {
        sum: f64,
        count: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    /// Feeds one raw input value (partial phase). NULL inputs are ignored
    /// per SQL semantics, except COUNT(*) which is fed `Value::Int64(1)` by
    /// the operator.
    pub fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::SumInt(s, any) => {
                if let Some(x) = v.as_i64() {
                    *s += x;
                    *any = true;
                }
            }
            AggState::SumFloat(s, any) => {
                if let Some(x) = v.as_f64() {
                    *s += x;
                    *any = true;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::Min(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => v.total_cmp(c) == std::cmp::Ordering::Less,
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => v.total_cmp(c) == std::cmp::Ordering::Greater,
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    /// Serializes this state into partial columns (see
    /// [`AggSpec::partial_state_types`]).
    pub fn partial_values(&self) -> Vec<Value> {
        match self {
            AggState::Count(c) => vec![Value::Int64(*c)],
            AggState::SumInt(s, any) => vec![if *any { Value::Int64(*s) } else { Value::Null }],
            AggState::SumFloat(s, any) => {
                vec![if *any {
                    Value::Float64(*s)
                } else {
                    Value::Null
                }]
            }
            AggState::Avg { sum, count } => vec![Value::Float64(*sum), Value::Int64(*count)],
            AggState::Min(v) | AggState::Max(v) => {
                vec![v.clone().unwrap_or(Value::Null)]
            }
        }
    }

    /// Merges a serialized partial state (final phase).
    pub fn merge_partial(&mut self, partial: &[Value]) -> Result<()> {
        match self {
            AggState::Count(c) => {
                let v = partial_scalar(partial, 0)?;
                if let Some(x) = v.as_i64() {
                    *c += x;
                }
            }
            AggState::SumInt(s, any) => {
                let v = partial_scalar(partial, 0)?;
                if let Some(x) = v.as_i64() {
                    *s += x;
                    *any = true;
                }
            }
            AggState::SumFloat(s, any) => {
                let v = partial_scalar(partial, 0)?;
                if let Some(x) = v.as_f64() {
                    *s += x;
                    *any = true;
                }
            }
            AggState::Avg { sum, count } => {
                let sv = partial_scalar(partial, 0)?;
                let cv = partial_scalar(partial, 1)?;
                if let (Some(s2), Some(c2)) = (sv.as_f64(), cv.as_i64()) {
                    *sum += s2;
                    *count += c2;
                }
            }
            AggState::Min(cur) => {
                let v = partial_scalar(partial, 0)?;
                if !v.is_null() {
                    let replace = match cur {
                        None => true,
                        Some(c) => v.total_cmp(c) == std::cmp::Ordering::Less,
                    };
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                let v = partial_scalar(partial, 0)?;
                if !v.is_null() {
                    let replace = match cur {
                        None => true,
                        Some(c) => v.total_cmp(c) == std::cmp::Ordering::Greater,
                    };
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Produces the final output value.
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int64(*c),
            AggState::SumInt(s, any) => {
                if *any {
                    Value::Int64(*s)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat(s, any) => {
                if *any {
                    Value::Float64(*s)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(*sum / *count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

fn partial_scalar(partial: &[Value], i: usize) -> Result<&Value> {
    partial.get(i).ok_or_else(|| {
        AccordionError::Internal(format!(
            "partial state arity mismatch: wanted index {i}, got {} values",
            partial.len()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(spec: &AggSpec, values: &[Value]) -> AggState {
        let mut s = spec.new_state();
        for v in values {
            s.update(v);
        }
        s
    }

    #[test]
    fn count_ignores_nulls() {
        let spec = AggSpec::new(AggKind::Count, Expr::col(0), DataType::Int64, "c");
        let s = feed(&spec, &[Value::Int64(1), Value::Null, Value::Int64(3)]);
        assert_eq!(s.finish(), Value::Int64(2));
    }

    #[test]
    fn sum_int_and_float() {
        let spec = AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Int64, "s");
        let s = feed(&spec, &[Value::Int64(1), Value::Int64(2)]);
        assert_eq!(s.finish(), Value::Int64(3));
        let fspec = AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Float64, "s");
        let s = feed(&fspec, &[Value::Float64(0.5), Value::Float64(1.5)]);
        assert_eq!(s.finish(), Value::Float64(2.0));
    }

    #[test]
    fn sum_of_no_rows_is_null() {
        let spec = AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Int64, "s");
        assert_eq!(spec.new_state().finish(), Value::Null);
        let s = feed(&spec, &[Value::Null]);
        assert_eq!(s.finish(), Value::Null);
    }

    #[test]
    fn avg_merges_correctly() {
        let spec = AggSpec::new(AggKind::Avg, Expr::col(0), DataType::Float64, "a");
        let s1 = feed(&spec, &[Value::Float64(1.0), Value::Float64(2.0)]);
        let s2 = feed(&spec, &[Value::Float64(6.0)]);
        let mut merged = spec.new_state();
        merged.merge_partial(&s1.partial_values()).unwrap();
        merged.merge_partial(&s2.partial_values()).unwrap();
        assert_eq!(merged.finish(), Value::Float64(3.0));
    }

    #[test]
    fn min_max_over_strings_and_dates() {
        let spec = AggSpec::new(AggKind::Min, Expr::col(0), DataType::Utf8, "m");
        let s = feed(&spec, &[Value::Utf8("b".into()), Value::Utf8("a".into())]);
        assert_eq!(s.finish(), Value::Utf8("a".into()));
        let spec = AggSpec::new(AggKind::Max, Expr::col(0), DataType::Date32, "m");
        let s = feed(&spec, &[Value::Date32(5), Value::Date32(9)]);
        assert_eq!(s.finish(), Value::Date32(9));
    }

    #[test]
    fn partial_final_equals_direct_for_all_kinds() {
        // The elasticity-critical invariant: splitting the input stream in
        // any way and merging partials gives the same answer as one pass.
        let data: Vec<Value> = (1..=10).map(Value::Int64).collect();
        for kind in [
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
        ] {
            let spec = AggSpec::new(kind, Expr::col(0), DataType::Int64, "x");
            let direct = feed(&spec, &data);
            // Split into 3 uneven chunks.
            let mut merged = spec.new_state();
            for chunk in [&data[0..2], &data[2..7], &data[7..10]] {
                let mut partial = spec.new_state();
                for v in chunk {
                    partial.update(v);
                }
                merged.merge_partial(&partial.partial_values()).unwrap();
            }
            assert_eq!(merged.finish(), direct.finish(), "kind {kind}");
        }
    }

    #[test]
    fn count_star_spec() {
        let spec = AggSpec::count_star("cnt");
        assert_eq!(spec.output_type(), DataType::Int64);
        assert!(spec.input.is_none());
        let mut s = spec.new_state();
        s.update(&Value::Int64(1));
        s.update(&Value::Int64(1));
        assert_eq!(s.finish(), Value::Int64(2));
    }

    #[test]
    fn output_and_partial_types() {
        let avg = AggSpec::new(AggKind::Avg, Expr::col(0), DataType::Int64, "a");
        assert_eq!(avg.output_type(), DataType::Float64);
        assert_eq!(
            avg.partial_state_types(),
            vec![DataType::Float64, DataType::Int64]
        );
        let sum_f = AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Float64, "s");
        assert_eq!(sum_f.output_type(), DataType::Float64);
        let min_s = AggSpec::new(AggKind::Min, Expr::col(0), DataType::Utf8, "m");
        assert_eq!(min_s.output_type(), DataType::Utf8);
        assert_eq!(min_s.partial_state_types(), vec![DataType::Utf8]);
    }

    #[test]
    fn merge_arity_mismatch_errors() {
        let spec = AggSpec::new(AggKind::Avg, Expr::col(0), DataType::Float64, "a");
        let mut s = spec.new_state();
        assert!(s.merge_partial(&[Value::Float64(1.0)]).is_err());
    }
}
