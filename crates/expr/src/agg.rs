//! Aggregate functions in the two-phase model.
//!
//! The paper (§4.1) keeps aggregation elastic by splitting it: the
//! **partial** phase runs in the scan-side stage at any parallelism (its
//! per-task state is reconstructible, so tasks/drivers can come and go), and
//! the **final** phase merges all partial states at parallelism 1.
//!
//! An [`AggSpec`] describes one aggregate call; [`AggState`] is the
//! accumulator. Partial states serialize into ordinary page columns
//! ([`AggState::partial_values`] / [`AggSpec::partial_state_types`]), so the
//! exchange between partial and final stages is plain page flow.

use std::fmt;

use accordion_common::{AccordionError, Result};
use accordion_data::column::{Column, ColumnBuilder};
use accordion_data::types::{DataType, Value};

use crate::scalar::Expr;

/// Which aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// COUNT(expr) / COUNT(*) when `input` is `None`.
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Avg => "avg",
            AggKind::Min => "min",
            AggKind::Max => "max",
        };
        f.write_str(s)
    }
}

/// One aggregate call in a plan: `kind(input)` named `name`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub kind: AggKind,
    /// Argument expression; `None` only for COUNT(*).
    pub input: Option<Expr>,
    /// Output column name.
    pub name: String,
    /// Input value type (set by the analyzer/planner; used to pick the
    /// accumulator representation).
    pub input_type: DataType,
}

impl AggSpec {
    pub fn count_star(name: impl Into<String>) -> Self {
        AggSpec {
            kind: AggKind::Count,
            input: None,
            name: name.into(),
            input_type: DataType::Int64,
        }
    }

    pub fn new(kind: AggKind, input: Expr, input_type: DataType, name: impl Into<String>) -> Self {
        AggSpec {
            kind,
            input: Some(input),
            name: name.into(),
            input_type,
        }
    }

    /// Output type of the *final* result.
    pub fn output_type(&self) -> DataType {
        match self.kind {
            AggKind::Count => DataType::Int64,
            AggKind::Avg => DataType::Float64,
            AggKind::Sum => match self.input_type {
                DataType::Int64 => DataType::Int64,
                _ => DataType::Float64,
            },
            AggKind::Min | AggKind::Max => self.input_type,
        }
    }

    /// Column types of the serialized partial state (what flows between the
    /// partial-agg stage and the final-agg stage).
    pub fn partial_state_types(&self) -> Vec<DataType> {
        match self.kind {
            AggKind::Count => vec![DataType::Int64],
            AggKind::Sum => vec![self.output_type()],
            AggKind::Avg => vec![DataType::Float64, DataType::Int64],
            AggKind::Min | AggKind::Max => vec![self.input_type],
        }
    }

    pub fn new_state(&self) -> AggState {
        match self.kind {
            AggKind::Count => AggState::Count(0),
            AggKind::Sum => match self.input_type {
                DataType::Int64 => AggState::SumInt(0, false),
                _ => AggState::SumFloat(0.0, false),
            },
            AggKind::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggKind::Min => AggState::Min(None),
            AggKind::Max => AggState::Max(None),
        }
    }
}

/// Accumulator for one aggregate over one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    Count(i64),
    /// (sum, saw_any) — SQL SUM over zero rows is NULL.
    SumInt(i64, bool),
    SumFloat(f64, bool),
    Avg {
        sum: f64,
        count: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    /// Feeds one raw input value (partial phase). NULL inputs are ignored
    /// per SQL semantics, except COUNT(*) which is fed `Value::Int64(1)` by
    /// the operator.
    pub fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::SumInt(s, any) => {
                if let Some(x) = v.as_i64() {
                    // Wrapping, matching the vectorized kernel and the
                    // eval_binary i64 fast path: overflow must not change
                    // behavior between debug and release profiles.
                    *s = s.wrapping_add(x);
                    *any = true;
                }
            }
            AggState::SumFloat(s, any) => {
                if let Some(x) = v.as_f64() {
                    *s += x;
                    *any = true;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::Min(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => v.total_cmp(c) == std::cmp::Ordering::Less,
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => v.total_cmp(c) == std::cmp::Ordering::Greater,
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    /// Serializes this state into partial columns (see
    /// [`AggSpec::partial_state_types`]).
    pub fn partial_values(&self) -> Vec<Value> {
        match self {
            AggState::Count(c) => vec![Value::Int64(*c)],
            AggState::SumInt(s, any) => vec![if *any { Value::Int64(*s) } else { Value::Null }],
            AggState::SumFloat(s, any) => {
                vec![if *any {
                    Value::Float64(*s)
                } else {
                    Value::Null
                }]
            }
            AggState::Avg { sum, count } => vec![Value::Float64(*sum), Value::Int64(*count)],
            AggState::Min(v) | AggState::Max(v) => {
                vec![v.clone().unwrap_or(Value::Null)]
            }
        }
    }

    /// Merges a serialized partial state (final phase).
    pub fn merge_partial(&mut self, partial: &[Value]) -> Result<()> {
        match self {
            AggState::Count(c) => {
                let v = partial_scalar(partial, 0)?;
                if let Some(x) = v.as_i64() {
                    *c += x;
                }
            }
            AggState::SumInt(s, any) => {
                let v = partial_scalar(partial, 0)?;
                if let Some(x) = v.as_i64() {
                    *s = s.wrapping_add(x);
                    *any = true;
                }
            }
            AggState::SumFloat(s, any) => {
                let v = partial_scalar(partial, 0)?;
                if let Some(x) = v.as_f64() {
                    *s += x;
                    *any = true;
                }
            }
            AggState::Avg { sum, count } => {
                let sv = partial_scalar(partial, 0)?;
                let cv = partial_scalar(partial, 1)?;
                if let (Some(s2), Some(c2)) = (sv.as_f64(), cv.as_i64()) {
                    *sum += s2;
                    *count += c2;
                }
            }
            AggState::Min(cur) => {
                let v = partial_scalar(partial, 0)?;
                if !v.is_null() {
                    let replace = match cur {
                        None => true,
                        Some(c) => v.total_cmp(c) == std::cmp::Ordering::Less,
                    };
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                let v = partial_scalar(partial, 0)?;
                if !v.is_null() {
                    let replace = match cur {
                        None => true,
                        Some(c) => v.total_cmp(c) == std::cmp::Ordering::Greater,
                    };
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Produces the final output value.
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int64(*c),
            AggState::SumInt(s, any) => {
                if *any {
                    Value::Int64(*s)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat(s, any) => {
                if *any {
                    Value::Float64(*s)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(*sum / *count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

// ---------------------------------------------------------------------------
// Columnar accumulators
// ---------------------------------------------------------------------------

/// Columnar accumulator: one typed vector (or pair) indexed by dense group
/// id, updated with per-column kernels instead of one
/// [`AggState::update`] call per row.
///
/// This is the aggregation half of the vectorized hash engine: the group
/// table assigns every input row a `group_id`, then each aggregate walks
/// the argument column once in a branch-light loop. i64/f64/date inputs
/// never materialize a [`Value`]; types without a kernel (Utf8/Bool
/// min-max) fall back to a vector of the scalar [`AggState`]s, which also
/// remains the reference implementation the property suite checks against.
#[derive(Debug)]
pub enum AggAccumulator {
    /// COUNT(*) and COUNT(expr).
    Count {
        counts: Vec<i64>,
    },
    /// SUM over Int64, wrapping on overflow (see [`AggState::SumInt`]).
    SumInt {
        sums: Vec<i64>,
        seen: Vec<bool>,
    },
    /// SUM over Float64 (and Int64-coerced) inputs.
    SumFloat {
        sums: Vec<f64>,
        seen: Vec<bool>,
    },
    Avg {
        sums: Vec<f64>,
        counts: Vec<i64>,
    },
    MinMaxI64 {
        vals: Vec<i64>,
        seen: Vec<bool>,
        is_min: bool,
    },
    MinMaxF64 {
        vals: Vec<f64>,
        seen: Vec<bool>,
        is_min: bool,
    },
    MinMaxDate {
        vals: Vec<i32>,
        seen: Vec<bool>,
        is_min: bool,
    },
    /// Scalar fallback for kernel-less types; `template` seeds new groups.
    Scalar {
        template: AggState,
        states: Vec<AggState>,
    },
}

impl AggAccumulator {
    /// Picks the accumulator representation for a spec.
    pub fn for_spec(spec: &AggSpec) -> AggAccumulator {
        match (spec.kind, spec.input_type) {
            (AggKind::Count, _) => AggAccumulator::Count { counts: Vec::new() },
            (AggKind::Sum, DataType::Int64) => AggAccumulator::SumInt {
                sums: Vec::new(),
                seen: Vec::new(),
            },
            (AggKind::Sum, _) => AggAccumulator::SumFloat {
                sums: Vec::new(),
                seen: Vec::new(),
            },
            (AggKind::Avg, _) => AggAccumulator::Avg {
                sums: Vec::new(),
                counts: Vec::new(),
            },
            (kind @ (AggKind::Min | AggKind::Max), dt) => {
                let is_min = kind == AggKind::Min;
                match dt {
                    DataType::Int64 => AggAccumulator::MinMaxI64 {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        is_min,
                    },
                    DataType::Float64 => AggAccumulator::MinMaxF64 {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        is_min,
                    },
                    DataType::Date32 => AggAccumulator::MinMaxDate {
                        vals: Vec::new(),
                        seen: Vec::new(),
                        is_min,
                    },
                    _ => AggAccumulator::Scalar {
                        template: spec.new_state(),
                        states: Vec::new(),
                    },
                }
            }
        }
    }

    /// Number of groups currently accumulated.
    pub fn len(&self) -> usize {
        match self {
            AggAccumulator::Count { counts } => counts.len(),
            AggAccumulator::SumInt { sums, .. } => sums.len(),
            AggAccumulator::SumFloat { sums, .. } => sums.len(),
            AggAccumulator::Avg { sums, .. } => sums.len(),
            AggAccumulator::MinMaxI64 { vals, .. } => vals.len(),
            AggAccumulator::MinMaxF64 { vals, .. } => vals.len(),
            AggAccumulator::MinMaxDate { vals, .. } => vals.len(),
            AggAccumulator::Scalar { states, .. } => states.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grows to `n` groups, initializing the new tail.
    pub fn resize(&mut self, n: usize) {
        match self {
            AggAccumulator::Count { counts } => counts.resize(n, 0),
            AggAccumulator::SumInt { sums, seen } => {
                sums.resize(n, 0);
                seen.resize(n, false);
            }
            AggAccumulator::SumFloat { sums, seen } => {
                sums.resize(n, 0.0);
                seen.resize(n, false);
            }
            AggAccumulator::Avg { sums, counts } => {
                sums.resize(n, 0.0);
                counts.resize(n, 0);
            }
            AggAccumulator::MinMaxI64 { vals, seen, .. } => {
                vals.resize(n, 0);
                seen.resize(n, false);
            }
            AggAccumulator::MinMaxF64 { vals, seen, .. } => {
                vals.resize(n, 0.0);
                seen.resize(n, false);
            }
            AggAccumulator::MinMaxDate { vals, seen, .. } => {
                vals.resize(n, 0);
                seen.resize(n, false);
            }
            AggAccumulator::Scalar { template, states } => {
                states.resize(n, template.clone());
            }
        }
    }

    /// Partial-phase update: folds `col[i]` into group `group_ids[i]` for
    /// every row. `col = None` is COUNT(*) (every row counts).
    pub fn update(&mut self, col: Option<&Column>, group_ids: &[u32]) -> Result<()> {
        let Some(col) = col else {
            // COUNT(*): no argument, count every row.
            let AggAccumulator::Count { counts } = self else {
                return Err(AccordionError::Internal(
                    "argument-less aggregate that is not COUNT(*)".into(),
                ));
            };
            for &g in group_ids {
                counts[g as usize] += 1;
            }
            return Ok(());
        };
        match self {
            AggAccumulator::Count { counts } => match col.validity() {
                None => {
                    for &g in group_ids {
                        counts[g as usize] += 1;
                    }
                }
                Some(v) => {
                    for (i, &g) in group_ids.iter().enumerate() {
                        counts[g as usize] += v.is_valid(i) as i64;
                    }
                }
            },
            AggAccumulator::SumInt { sums, seen } => {
                let Some(data) = col.as_i64() else {
                    return update_via_values(
                        &mut AggStatesView::SumInt(sums, seen),
                        col,
                        group_ids,
                    );
                };
                match col.validity() {
                    None => {
                        for (i, &g) in group_ids.iter().enumerate() {
                            let g = g as usize;
                            sums[g] = sums[g].wrapping_add(data[i]);
                            seen[g] = true;
                        }
                    }
                    Some(v) => {
                        for (i, &g) in group_ids.iter().enumerate() {
                            let g = g as usize;
                            let valid = v.is_valid(i);
                            sums[g] = sums[g].wrapping_add(if valid { data[i] } else { 0 });
                            seen[g] |= valid;
                        }
                    }
                }
            }
            AggAccumulator::SumFloat { sums, seen } => {
                sum_f64_kernel(sums, seen, col, group_ids)?;
            }
            AggAccumulator::Avg { sums, counts } => {
                avg_f64_kernel(sums, counts, col, group_ids)?;
            }
            AggAccumulator::MinMaxI64 { vals, seen, is_min } => {
                let Some(data) = col.as_i64() else {
                    return Err(kernel_type_error("min/max<i64>", col));
                };
                let is_min = *is_min;
                for_each_valid(col, group_ids, |i, g| {
                    if !seen[g] || (data[i] < vals[g]) == is_min {
                        vals[g] = data[i];
                    }
                    seen[g] = true;
                });
            }
            AggAccumulator::MinMaxF64 { vals, seen, is_min } => {
                let Some(data) = col.as_f64() else {
                    return Err(kernel_type_error("min/max<f64>", col));
                };
                let is_min = *is_min;
                for_each_valid(col, group_ids, |i, g| {
                    use std::cmp::Ordering;
                    let want = if is_min {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    };
                    if !seen[g] || data[i].total_cmp(&vals[g]) == want {
                        vals[g] = data[i];
                    }
                    seen[g] = true;
                });
            }
            AggAccumulator::MinMaxDate { vals, seen, is_min } => {
                let Some(data) = col.as_date32() else {
                    return Err(kernel_type_error("min/max<date32>", col));
                };
                let is_min = *is_min;
                for_each_valid(col, group_ids, |i, g| {
                    if !seen[g] || (data[i] < vals[g]) == is_min {
                        vals[g] = data[i];
                    }
                    seen[g] = true;
                });
            }
            AggAccumulator::Scalar { states, .. } => {
                for (i, &g) in group_ids.iter().enumerate() {
                    states[g as usize].update(&col.value(i));
                }
            }
        }
        Ok(())
    }

    /// Final-phase merge: folds serialized partial-state columns (layout per
    /// [`AggSpec::partial_state_types`]) into the accumulators.
    pub fn merge(&mut self, cols: &[&Column], group_ids: &[u32]) -> Result<()> {
        let state_col = |i: usize| -> Result<&Column> {
            cols.get(i).copied().ok_or_else(|| {
                AccordionError::Internal(format!(
                    "partial state arity mismatch: wanted column {i}, got {}",
                    cols.len()
                ))
            })
        };
        match self {
            AggAccumulator::Count { counts } => {
                let col = state_col(0)?;
                let Some(data) = col.as_i64() else {
                    return Err(kernel_type_error("count-merge", col));
                };
                for_each_valid(col, group_ids, |i, g| counts[g] += data[i]);
            }
            AggAccumulator::SumInt { sums, seen } => {
                let col = state_col(0)?;
                let Some(data) = col.as_i64() else {
                    return Err(kernel_type_error("sum<i64>-merge", col));
                };
                for_each_valid(col, group_ids, |i, g| {
                    sums[g] = sums[g].wrapping_add(data[i]);
                    seen[g] = true;
                });
            }
            AggAccumulator::SumFloat { sums, seen } => {
                sum_f64_kernel(sums, seen, state_col(0)?, group_ids)?;
            }
            AggAccumulator::Avg { sums, counts } => {
                let scol = state_col(0)?;
                let ccol = state_col(1)?;
                let (Some(s), Some(c)) = (scol.as_f64(), ccol.as_i64()) else {
                    return Err(kernel_type_error("avg-merge", scol));
                };
                for (i, &g) in group_ids.iter().enumerate() {
                    let g = g as usize;
                    if scol.is_valid(i) && ccol.is_valid(i) {
                        sums[g] += s[i];
                        counts[g] += c[i];
                    }
                }
            }
            // Min/max partial state is one column of the input type; merging
            // it is the same kernel as the partial update.
            AggAccumulator::MinMaxI64 { .. }
            | AggAccumulator::MinMaxF64 { .. }
            | AggAccumulator::MinMaxDate { .. } => {
                return self.update(Some(state_col(0)?), group_ids);
            }
            AggAccumulator::Scalar { states, .. } => {
                for (i, &g) in group_ids.iter().enumerate() {
                    let partial: Vec<Value> = cols.iter().map(|c| c.value(i)).collect();
                    states[g as usize].merge_partial(&partial)?;
                }
            }
        }
        Ok(())
    }

    /// Serializes the partial state as columns in `order` (layout per
    /// [`AggSpec::partial_state_types`]), built straight from the
    /// accumulator vectors.
    pub fn partial_columns(&self, order: &[u32], spec: &AggSpec) -> Vec<Column> {
        match self {
            AggAccumulator::Count { counts } => {
                vec![Column::from_i64(
                    order.iter().map(|&g| counts[g as usize]).collect(),
                )]
            }
            AggAccumulator::SumInt { sums, seen } => {
                vec![gather_i64_nullable(sums, seen, order)]
            }
            AggAccumulator::SumFloat { sums, seen } => {
                vec![gather_f64_nullable(sums, seen, order)]
            }
            AggAccumulator::Avg { sums, counts } => vec![
                Column::from_f64(order.iter().map(|&g| sums[g as usize]).collect()),
                Column::from_i64(order.iter().map(|&g| counts[g as usize]).collect()),
            ],
            AggAccumulator::MinMaxI64 { vals, seen, .. } => {
                vec![gather_i64_nullable(vals, seen, order)]
            }
            AggAccumulator::MinMaxF64 { vals, seen, .. } => {
                vec![gather_f64_nullable(vals, seen, order)]
            }
            AggAccumulator::MinMaxDate { vals, seen, .. } => {
                let nulls: Vec<bool> = order.iter().map(|&g| !seen[g as usize]).collect();
                vec![Column::from_date32_nullable(
                    order.iter().map(|&g| vals[g as usize]).collect(),
                    &nulls,
                )]
            }
            AggAccumulator::Scalar { states, .. } => {
                let types = spec.partial_state_types();
                let mut builders: Vec<ColumnBuilder> = types
                    .iter()
                    .map(|&dt| ColumnBuilder::new(dt, order.len()))
                    .collect();
                for &g in order {
                    for (b, v) in builders.iter_mut().zip(states[g as usize].partial_values()) {
                        b.push(v);
                    }
                }
                builders.into_iter().map(ColumnBuilder::finish).collect()
            }
        }
    }

    /// Produces the final output column in `order`.
    pub fn finish_column(&self, order: &[u32], spec: &AggSpec) -> Column {
        match self {
            AggAccumulator::Count { counts } => {
                Column::from_i64(order.iter().map(|&g| counts[g as usize]).collect())
            }
            AggAccumulator::SumInt { sums, seen } => gather_i64_nullable(sums, seen, order),
            AggAccumulator::SumFloat { sums, seen } => gather_f64_nullable(sums, seen, order),
            AggAccumulator::Avg { sums, counts } => {
                let mut out = Vec::with_capacity(order.len());
                let mut nulls = Vec::with_capacity(order.len());
                for &g in order {
                    let g = g as usize;
                    let empty = counts[g] == 0;
                    out.push(if empty {
                        0.0
                    } else {
                        sums[g] / counts[g] as f64
                    });
                    nulls.push(empty);
                }
                Column::from_f64_nullable(out, &nulls)
            }
            AggAccumulator::MinMaxI64 { vals, seen, .. } => gather_i64_nullable(vals, seen, order),
            AggAccumulator::MinMaxF64 { vals, seen, .. } => gather_f64_nullable(vals, seen, order),
            AggAccumulator::MinMaxDate { vals, seen, .. } => {
                let nulls: Vec<bool> = order.iter().map(|&g| !seen[g as usize]).collect();
                Column::from_date32_nullable(
                    order.iter().map(|&g| vals[g as usize]).collect(),
                    &nulls,
                )
            }
            AggAccumulator::Scalar { states, .. } => {
                let mut b = ColumnBuilder::new(spec.output_type(), order.len());
                for &g in order {
                    b.push(states[g as usize].finish());
                }
                b.finish()
            }
        }
    }
}

/// Shared inner loop: calls `f(row, group)` for every row whose cell is
/// valid, with a no-bitmap fast path.
#[inline]
fn for_each_valid(col: &Column, group_ids: &[u32], mut f: impl FnMut(usize, usize)) {
    match col.validity() {
        None => {
            for (i, &g) in group_ids.iter().enumerate() {
                f(i, g as usize);
            }
        }
        Some(v) => {
            for (i, &g) in group_ids.iter().enumerate() {
                if v.is_valid(i) {
                    f(i, g as usize);
                }
            }
        }
    }
}

/// f64 sum kernel accepting Float64 or (analyzer-coerced) Int64 input.
fn sum_f64_kernel(
    sums: &mut [f64],
    seen: &mut [bool],
    col: &Column,
    group_ids: &[u32],
) -> Result<()> {
    if let Some(data) = col.as_f64() {
        match col.validity() {
            None => {
                for (i, &g) in group_ids.iter().enumerate() {
                    let g = g as usize;
                    sums[g] += data[i];
                    seen[g] = true;
                }
            }
            Some(v) => {
                for (i, &g) in group_ids.iter().enumerate() {
                    let g = g as usize;
                    let valid = v.is_valid(i);
                    sums[g] += if valid { data[i] } else { 0.0 };
                    seen[g] |= valid;
                }
            }
        }
        return Ok(());
    }
    if let Some(data) = col.as_i64() {
        for_each_valid(col, group_ids, |i, g| {
            sums[g] += data[i] as f64;
            seen[g] = true;
        });
        return Ok(());
    }
    Err(kernel_type_error("sum<f64>", col))
}

/// Avg partial kernel over Float64 or Int64 input.
fn avg_f64_kernel(
    sums: &mut [f64],
    counts: &mut [i64],
    col: &Column,
    group_ids: &[u32],
) -> Result<()> {
    if let Some(data) = col.as_f64() {
        for_each_valid(col, group_ids, |i, g| {
            sums[g] += data[i];
            counts[g] += 1;
        });
        return Ok(());
    }
    if let Some(data) = col.as_i64() {
        for_each_valid(col, group_ids, |i, g| {
            sums[g] += data[i] as f64;
            counts[g] += 1;
        });
        return Ok(());
    }
    Err(kernel_type_error("avg", col))
}

fn gather_i64_nullable(vals: &[i64], seen: &[bool], order: &[u32]) -> Column {
    let nulls: Vec<bool> = order.iter().map(|&g| !seen[g as usize]).collect();
    Column::from_i64_nullable(order.iter().map(|&g| vals[g as usize]).collect(), &nulls)
}

fn gather_f64_nullable(vals: &[f64], seen: &[bool], order: &[u32]) -> Column {
    let nulls: Vec<bool> = order.iter().map(|&g| !seen[g as usize]).collect();
    Column::from_f64_nullable(order.iter().map(|&g| vals[g as usize]).collect(), &nulls)
}

fn kernel_type_error(kernel: &str, col: &Column) -> AccordionError {
    AccordionError::Internal(format!("{kernel} kernel fed a {} column", col.data_type()))
}

/// Last-resort scalar path when a typed kernel receives a mismatched column
/// (unreachable through the planner, kept for defense in depth).
enum AggStatesView<'a> {
    SumInt(&'a mut [i64], &'a mut [bool]),
}

fn update_via_values(view: &mut AggStatesView<'_>, col: &Column, group_ids: &[u32]) -> Result<()> {
    match view {
        AggStatesView::SumInt(sums, seen) => {
            for (i, &g) in group_ids.iter().enumerate() {
                if let Some(x) = col.value(i).as_i64() {
                    let g = g as usize;
                    sums[g] = sums[g].wrapping_add(x);
                    seen[g] = true;
                }
            }
        }
    }
    Ok(())
}

fn partial_scalar(partial: &[Value], i: usize) -> Result<&Value> {
    partial.get(i).ok_or_else(|| {
        AccordionError::Internal(format!(
            "partial state arity mismatch: wanted index {i}, got {} values",
            partial.len()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(spec: &AggSpec, values: &[Value]) -> AggState {
        let mut s = spec.new_state();
        for v in values {
            s.update(v);
        }
        s
    }

    #[test]
    fn count_ignores_nulls() {
        let spec = AggSpec::new(AggKind::Count, Expr::col(0), DataType::Int64, "c");
        let s = feed(&spec, &[Value::Int64(1), Value::Null, Value::Int64(3)]);
        assert_eq!(s.finish(), Value::Int64(2));
    }

    #[test]
    fn sum_int_and_float() {
        let spec = AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Int64, "s");
        let s = feed(&spec, &[Value::Int64(1), Value::Int64(2)]);
        assert_eq!(s.finish(), Value::Int64(3));
        let fspec = AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Float64, "s");
        let s = feed(&fspec, &[Value::Float64(0.5), Value::Float64(1.5)]);
        assert_eq!(s.finish(), Value::Float64(2.0));
    }

    #[test]
    fn sum_of_no_rows_is_null() {
        let spec = AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Int64, "s");
        assert_eq!(spec.new_state().finish(), Value::Null);
        let s = feed(&spec, &[Value::Null]);
        assert_eq!(s.finish(), Value::Null);
    }

    #[test]
    fn avg_merges_correctly() {
        let spec = AggSpec::new(AggKind::Avg, Expr::col(0), DataType::Float64, "a");
        let s1 = feed(&spec, &[Value::Float64(1.0), Value::Float64(2.0)]);
        let s2 = feed(&spec, &[Value::Float64(6.0)]);
        let mut merged = spec.new_state();
        merged.merge_partial(&s1.partial_values()).unwrap();
        merged.merge_partial(&s2.partial_values()).unwrap();
        assert_eq!(merged.finish(), Value::Float64(3.0));
    }

    #[test]
    fn min_max_over_strings_and_dates() {
        let spec = AggSpec::new(AggKind::Min, Expr::col(0), DataType::Utf8, "m");
        let s = feed(&spec, &[Value::Utf8("b".into()), Value::Utf8("a".into())]);
        assert_eq!(s.finish(), Value::Utf8("a".into()));
        let spec = AggSpec::new(AggKind::Max, Expr::col(0), DataType::Date32, "m");
        let s = feed(&spec, &[Value::Date32(5), Value::Date32(9)]);
        assert_eq!(s.finish(), Value::Date32(9));
    }

    #[test]
    fn partial_final_equals_direct_for_all_kinds() {
        // The elasticity-critical invariant: splitting the input stream in
        // any way and merging partials gives the same answer as one pass.
        let data: Vec<Value> = (1..=10).map(Value::Int64).collect();
        for kind in [
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
        ] {
            let spec = AggSpec::new(kind, Expr::col(0), DataType::Int64, "x");
            let direct = feed(&spec, &data);
            // Split into 3 uneven chunks.
            let mut merged = spec.new_state();
            for chunk in [&data[0..2], &data[2..7], &data[7..10]] {
                let mut partial = spec.new_state();
                for v in chunk {
                    partial.update(v);
                }
                merged.merge_partial(&partial.partial_values()).unwrap();
            }
            assert_eq!(merged.finish(), direct.finish(), "kind {kind}");
        }
    }

    #[test]
    fn count_star_spec() {
        let spec = AggSpec::count_star("cnt");
        assert_eq!(spec.output_type(), DataType::Int64);
        assert!(spec.input.is_none());
        let mut s = spec.new_state();
        s.update(&Value::Int64(1));
        s.update(&Value::Int64(1));
        assert_eq!(s.finish(), Value::Int64(2));
    }

    #[test]
    fn output_and_partial_types() {
        let avg = AggSpec::new(AggKind::Avg, Expr::col(0), DataType::Int64, "a");
        assert_eq!(avg.output_type(), DataType::Float64);
        assert_eq!(
            avg.partial_state_types(),
            vec![DataType::Float64, DataType::Int64]
        );
        let sum_f = AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Float64, "s");
        assert_eq!(sum_f.output_type(), DataType::Float64);
        let min_s = AggSpec::new(AggKind::Min, Expr::col(0), DataType::Utf8, "m");
        assert_eq!(min_s.output_type(), DataType::Utf8);
        assert_eq!(min_s.partial_state_types(), vec![DataType::Utf8]);
    }

    #[test]
    fn merge_arity_mismatch_errors() {
        let spec = AggSpec::new(AggKind::Avg, Expr::col(0), DataType::Float64, "a");
        let mut s = spec.new_state();
        assert!(s.merge_partial(&[Value::Float64(1.0)]).is_err());
    }

    /// Runs one spec through both paths over the same column/group layout
    /// and asserts identical final values per group.
    fn check_accumulator_matches_scalar(spec: &AggSpec, col: &Column, gids: &[u32], groups: usize) {
        // Scalar reference.
        let mut states: Vec<AggState> = (0..groups).map(|_| spec.new_state()).collect();
        for (i, &g) in gids.iter().enumerate() {
            states[g as usize].update(&col.value(i));
        }
        // Vectorized.
        let mut acc = AggAccumulator::for_spec(spec);
        acc.resize(groups);
        acc.update(Some(col), gids).unwrap();
        let order: Vec<u32> = (0..groups as u32).collect();
        let out = acc.finish_column(&order, spec);
        for (g, state) in states.iter().enumerate() {
            assert_eq!(
                out.value(g),
                state.finish(),
                "{} group {g} diverged",
                spec.kind
            );
        }
        // And through serialize → merge (the partial/final split).
        let partial_cols = acc.partial_columns(&order, spec);
        let refs: Vec<&Column> = partial_cols.iter().collect();
        let ids: Vec<u32> = (0..groups as u32).collect();
        let mut merged = AggAccumulator::for_spec(spec);
        merged.resize(groups);
        merged.merge(&refs, &ids).unwrap();
        let merged_out = merged.finish_column(&order, spec);
        for (g, state) in states.iter().enumerate() {
            assert_eq!(
                merged_out.value(g),
                state.finish(),
                "{} group {g} diverged after merge",
                spec.kind
            );
        }
    }

    #[test]
    fn accumulator_matches_scalar_states_i64() {
        let mut b = ColumnBuilder::new(DataType::Int64, 8);
        for v in [
            Value::Int64(3),
            Value::Null,
            Value::Int64(-7),
            Value::Int64(i64::MAX),
            Value::Int64(1),
            Value::Int64(0),
            Value::Null,
            Value::Int64(42),
        ] {
            b.push(v);
        }
        let col = b.finish();
        let gids = [0u32, 1, 0, 2, 1, 2, 2, 0];
        for kind in [
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
        ] {
            let spec = AggSpec::new(kind, Expr::col(0), DataType::Int64, "x");
            check_accumulator_matches_scalar(&spec, &col, &gids, 3);
        }
    }

    #[test]
    fn accumulator_matches_scalar_states_f64() {
        let mut b = ColumnBuilder::new(DataType::Float64, 8);
        for v in [
            Value::Float64(0.5),
            Value::Float64(-0.0),
            Value::Null,
            Value::Float64(f64::NAN),
            Value::Float64(1e300),
            Value::Float64(-3.25),
            Value::Float64(0.0),
            Value::Null,
        ] {
            b.push(v);
        }
        let col = b.finish();
        let gids = [0u32, 0, 1, 1, 2, 2, 0, 1];
        for kind in [AggKind::Count, AggKind::Sum, AggKind::Avg] {
            let spec = AggSpec::new(kind, Expr::col(0), DataType::Float64, "x");
            check_accumulator_matches_scalar(&spec, &col, &gids, 3);
        }
        // Min/max use f64::total_cmp — NaN ordering must match Value::total_cmp.
        for kind in [AggKind::Min, AggKind::Max] {
            let spec = AggSpec::new(kind, Expr::col(0), DataType::Float64, "x");
            check_accumulator_matches_scalar(&spec, &col, &gids, 3);
        }
    }

    #[test]
    fn accumulator_scalar_fallback_for_utf8_minmax() {
        let mut b = ColumnBuilder::new(DataType::Utf8, 4);
        for v in [
            Value::Utf8("pear".into()),
            Value::Null,
            Value::Utf8("apple".into()),
            Value::Utf8("zed".into()),
        ] {
            b.push(v);
        }
        let col = b.finish();
        let gids = [0u32, 0, 0, 1];
        for kind in [AggKind::Min, AggKind::Max] {
            let spec = AggSpec::new(kind, Expr::col(0), DataType::Utf8, "x");
            let acc = AggAccumulator::for_spec(&spec);
            assert!(matches!(acc, AggAccumulator::Scalar { .. }));
            check_accumulator_matches_scalar(&spec, &col, &gids, 2);
        }
    }

    #[test]
    fn accumulator_count_star_counts_every_row() {
        let spec = AggSpec::count_star("cnt");
        let mut acc = AggAccumulator::for_spec(&spec);
        acc.resize(2);
        acc.update(None, &[0, 1, 1, 1]).unwrap();
        let out = acc.finish_column(&[0, 1], &spec);
        assert_eq!(out.value(0), Value::Int64(1));
        assert_eq!(out.value(1), Value::Int64(3));
    }

    #[test]
    fn accumulator_sum_int_wraps_like_scalar() {
        let col = Column::from_i64(vec![i64::MAX, 1]);
        let gids = [0u32, 0];
        let spec = AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Int64, "s");
        check_accumulator_matches_scalar(&spec, &col, &gids, 1);
        let mut acc = AggAccumulator::for_spec(&spec);
        acc.resize(1);
        acc.update(Some(&col), &gids).unwrap();
        assert_eq!(
            acc.finish_column(&[0], &spec).value(0),
            Value::Int64(i64::MIN)
        );
    }

    #[test]
    fn accumulator_empty_groups_finish_null_sum() {
        let spec = AggSpec::new(AggKind::Sum, Expr::col(0), DataType::Int64, "s");
        let mut acc = AggAccumulator::for_spec(&spec);
        acc.resize(1);
        // No rows fed: SUM over the empty group is NULL.
        assert_eq!(acc.finish_column(&[0], &spec).value(0), Value::Null);
    }
}
