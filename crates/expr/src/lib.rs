//! Vectorized expression evaluation and aggregate functions.
//!
//! * [`scalar`] — the scalar expression tree ([`scalar::Expr`]) and its
//!   vectorized evaluator: column references, literals, arithmetic,
//!   comparisons, boolean logic, `BETWEEN`, `LIKE`-lite, `CASE`, `EXTRACT
//!   YEAR`-style date helpers.
//! * [`agg`] — aggregate functions (COUNT/SUM/AVG/MIN/MAX) factored into
//!   the **two-phase** model the paper requires for elasticity (§4.1): the
//!   partial phase is stateless-per-page-stream (its state can be destroyed
//!   and rebuilt, so partial-agg stages can be freely re-parallelized) and
//!   the final phase merges partial states at fixed parallelism 1.

pub mod agg;
pub mod scalar;

pub use agg::{AggKind, AggSpec, AggState};
pub use scalar::{BinaryOp, Expr};
