//! Evaluation query definitions (the bench harness workload).
//!
//! Four query shapes mirroring the paper's evaluation mix, expressed
//! directly as [`LogicalPlanBuilder`] plans over the generated catalog:
//!
//! * [`q1`] — TPC-H Q1-shaped pricing summary: a full lineitem scan with a
//!   date filter into a grouped multi-aggregate. Scan-heavy; the elastic
//!   Source stage dominates.
//! * [`q3`] — TPC-H Q3-shaped shipping priority: three-table join
//!   (customer ⋈ orders ⋈ lineitem) with selective filters on each input,
//!   a grouped revenue aggregate and a Top-N.
//! * [`q6`] — TPC-H Q6-shaped forecast revenue: a highly selective
//!   filter into a single global aggregate. Tiny output, scan-bound.
//! * [`top_orders`] — a Top-N over orders by total price: the ORDER
//!   BY + LIMIT shape.

use accordion_common::Result;
use accordion_data::types::parse_date32;
use accordion_expr::agg::{AggKind, AggSpec};
use accordion_expr::scalar::{BinaryOp, Expr};
use accordion_plan::catalog::Catalog;
use accordion_plan::LogicalPlanBuilder;

fn date(s: &str) -> Expr {
    Expr::lit_date(parse_date32(s).expect("valid literal date"))
}

fn le(l: Expr, r: Expr) -> Expr {
    Expr::binary(l, BinaryOp::LtEq, r)
}

fn ge(l: Expr, r: Expr) -> Expr {
    Expr::binary(l, BinaryOp::GtEq, r)
}

/// `l_extendedprice * (1 - l_discount)` — Q1/Q3's discounted price.
fn disc_price(b: &LogicalPlanBuilder) -> Result<Expr> {
    Ok(Expr::mul(
        b.col("l_extendedprice")?,
        Expr::sub(Expr::lit_f64(1.0), b.col("l_discount")?),
    ))
}

/// Q1-shaped pricing summary report:
/// `SELECT l_returnflag, l_linestatus, sum(qty), sum(price),
///  sum(price·(1-disc)), avg(disc), count(*) FROM lineitem
///  WHERE l_shipdate <= DATE '1998-09-02' GROUP BY 1, 2`.
pub fn q1(catalog: &dyn Catalog) -> Result<LogicalPlanBuilder> {
    let b = LogicalPlanBuilder::scan(catalog, "lineitem")?;
    let b = b
        .clone()
        .filter(le(b.col("l_shipdate")?, date("1998-09-02")))?;
    let aggs = vec![
        b.agg(AggKind::Sum, "l_quantity", "sum_qty")?,
        b.agg(AggKind::Sum, "l_extendedprice", "sum_base_price")?,
        b.agg_expr(
            AggKind::Sum,
            disc_price(&b)?,
            accordion_data::types::DataType::Float64,
            "sum_disc_price",
        ),
        b.agg(AggKind::Avg, "l_discount", "avg_disc")?,
        AggSpec::count_star("count_order"),
    ];
    b.aggregate(&["l_returnflag", "l_linestatus"], aggs)
}

/// Q3-shaped shipping priority: revenue of not-yet-shipped lineitems of
/// BUILDING-segment customers' pre-cutoff orders, top 10 orders by revenue.
pub fn q3(catalog: &dyn Catalog) -> Result<LogicalPlanBuilder> {
    let cutoff = "1995-03-15";
    let customer = {
        let b = LogicalPlanBuilder::scan(catalog, "customer")?;
        b.clone()
            .filter(Expr::eq(b.col("c_mktsegment")?, Expr::lit_str("BUILDING")))?
    };
    let orders = {
        let b = LogicalPlanBuilder::scan(catalog, "orders")?;
        b.clone()
            .filter(Expr::lt(b.col("o_orderdate")?, date(cutoff)))?
    };
    let lineitem = {
        let b = LogicalPlanBuilder::scan(catalog, "lineitem")?;
        b.clone()
            .filter(Expr::gt(b.col("l_shipdate")?, date(cutoff)))?
    };
    // Build sides stay small: filtered orders ⋈ filtered customers first,
    // then probe with the big lineitem input.
    let order_customer = orders.join(customer, &[("o_custkey", "c_custkey")])?;
    let b = lineitem.join(order_customer, &[("l_orderkey", "o_orderkey")])?;
    let revenue = b.agg_expr(
        AggKind::Sum,
        disc_price(&b)?,
        accordion_data::types::DataType::Float64,
        "revenue",
    );
    b.aggregate(&["l_orderkey", "o_orderdate"], vec![revenue])?
        .top_n(&[("revenue", true), ("l_orderkey", false)], 10)
}

/// Q6-shaped forecast revenue change: one global sum under a selective
/// quantity/discount/date band filter.
pub fn q6(catalog: &dyn Catalog) -> Result<LogicalPlanBuilder> {
    let b = LogicalPlanBuilder::scan(catalog, "lineitem")?;
    let pred = Expr::and(
        Expr::and(
            ge(b.col("l_shipdate")?, date("1994-01-01")),
            Expr::lt(b.col("l_shipdate")?, date("1995-01-01")),
        ),
        Expr::and(
            Expr::between(
                b.col("l_discount")?,
                Expr::lit_f64(0.05),
                Expr::lit_f64(0.07),
            ),
            Expr::lt(b.col("l_quantity")?, Expr::lit_f64(24.0)),
        ),
    );
    let b = b.clone().filter(pred)?;
    let revenue = b.agg_expr(
        AggKind::Sum,
        Expr::mul(b.col("l_extendedprice")?, b.col("l_discount")?),
        accordion_data::types::DataType::Float64,
        "revenue",
    );
    b.aggregate(&[], vec![revenue])
}

/// Top 100 orders by total price — the ORDER BY + LIMIT shape.
pub fn top_orders(catalog: &dyn Catalog) -> Result<LogicalPlanBuilder> {
    LogicalPlanBuilder::scan(catalog, "orders")?
        .top_n(&[("o_totalprice", true), ("o_orderkey", false)], 100)
}

/// All evaluation queries, in bench order.
pub fn all_queries(catalog: &dyn Catalog) -> Result<Vec<(&'static str, LogicalPlanBuilder)>> {
    Ok(vec![
        ("q1", q1(catalog)?),
        ("q3", q3(catalog)?),
        ("q6", q6(catalog)?),
        ("top_orders", top_orders(catalog)?),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchOptions};

    #[test]
    fn all_queries_build_and_validate() {
        let d = generate(&TpchOptions {
            scale_factor: 0.001,
            seed: 42,
            page_rows: 64,
        });
        let queries = all_queries(&d.catalog).unwrap();
        assert_eq!(queries.len(), 4);
        for (name, b) in queries {
            let plan = b.build();
            plan.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn q1_schema_shape() {
        let d = generate(&TpchOptions {
            scale_factor: 0.001,
            seed: 42,
            page_rows: 64,
        });
        let s = q1(&d.catalog).unwrap().schema();
        let names: Vec<&str> = s.fields().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "l_returnflag",
                "l_linestatus",
                "sum_qty",
                "sum_base_price",
                "sum_disc_price",
                "avg_disc",
                "count_order"
            ]
        );
    }

    #[test]
    fn q3_top_n_limit() {
        let d = generate(&TpchOptions {
            scale_factor: 0.001,
            seed: 42,
            page_rows: 64,
        });
        let s = q3(&d.catalog).unwrap().schema();
        assert_eq!(s.index_of("revenue"), Some(2));
    }
}
