//! The paper's Table 1 schemas, defined once.
//!
//! Both the data generator ([`crate::gen`]) and the schema-only
//! [`TpchSchemas`] catalog build from these definitions, so the SQL
//! analyzer, the planner and the generated tables can never drift apart.
//! [`TpchSchemas`] implements [`accordion_plan::catalog::Catalog`], which
//! makes it enough to parse, analyze and plan any TPC-H query without
//! generating a single row.

use accordion_common::Result;
use accordion_data::schema::{Field, Schema, SchemaRef};
use accordion_data::types::DataType;
use accordion_plan::catalog::{unknown_table, Catalog, TableRef};

use DataType::{Date32, Float64, Int64, Utf8};

fn field(name: &str, dt: DataType) -> Field {
    Field::new(name, dt)
}

/// `region(r_regionkey, r_name)`.
pub fn region() -> Vec<Field> {
    vec![field("r_regionkey", Int64), field("r_name", Utf8)]
}

/// `nation(n_nationkey, n_name, n_regionkey)`.
pub fn nation() -> Vec<Field> {
    vec![
        field("n_nationkey", Int64),
        field("n_name", Utf8),
        field("n_regionkey", Int64),
    ]
}

/// `supplier(s_suppkey, s_name, s_nationkey, s_acctbal)`.
pub fn supplier() -> Vec<Field> {
    vec![
        field("s_suppkey", Int64),
        field("s_name", Utf8),
        field("s_nationkey", Int64),
        field("s_acctbal", Float64),
    ]
}

/// `part(p_partkey, p_name, p_brand, p_size, p_retailprice)`.
pub fn part() -> Vec<Field> {
    vec![
        field("p_partkey", Int64),
        field("p_name", Utf8),
        field("p_brand", Utf8),
        field("p_size", Int64),
        field("p_retailprice", Float64),
    ]
}

/// `customer(c_custkey, c_name, c_nationkey, c_mktsegment, c_acctbal)`.
pub fn customer() -> Vec<Field> {
    vec![
        field("c_custkey", Int64),
        field("c_name", Utf8),
        field("c_nationkey", Int64),
        field("c_mktsegment", Utf8),
        field("c_acctbal", Float64),
    ]
}

/// `orders(o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate)`.
pub fn orders() -> Vec<Field> {
    vec![
        field("o_orderkey", Int64),
        field("o_custkey", Int64),
        field("o_orderstatus", Utf8),
        field("o_totalprice", Float64),
        field("o_orderdate", Date32),
    ]
}

/// `lineitem(...)` — the 11-column fact table.
pub fn lineitem() -> Vec<Field> {
    vec![
        field("l_orderkey", Int64),
        field("l_linenumber", Int64),
        field("l_partkey", Int64),
        field("l_suppkey", Int64),
        field("l_quantity", Float64),
        field("l_extendedprice", Float64),
        field("l_discount", Float64),
        field("l_tax", Float64),
        field("l_returnflag", Utf8),
        field("l_linestatus", Utf8),
        field("l_shipdate", Date32),
    ]
}

/// `(name, schema)` for every TPC-H table, in generation order.
pub fn all_tables() -> Vec<(&'static str, Vec<Field>)> {
    vec![
        ("region", region()),
        ("nation", nation()),
        ("supplier", supplier()),
        ("part", part()),
        ("customer", customer()),
        ("orders", orders()),
        ("lineitem", lineitem()),
    ]
}

/// Schema-only TPC-H catalog: resolves the seven table names to their
/// schemas without holding any data.
#[derive(Debug, Clone)]
pub struct TpchSchemas {
    tables: Vec<(&'static str, SchemaRef)>,
}

impl Default for TpchSchemas {
    fn default() -> Self {
        TpchSchemas {
            tables: all_tables()
                .into_iter()
                .map(|(name, fields)| (name, Schema::shared(fields)))
                .collect(),
        }
    }
}

impl TpchSchemas {
    pub fn new() -> Self {
        TpchSchemas::default()
    }
}

impl Catalog for TpchSchemas {
    fn table(&self, name: &str) -> Result<TableRef> {
        let lower = name.to_ascii_lowercase();
        self.tables
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(n, schema)| TableRef {
                name: (*n).to_string(),
                schema: schema.clone(),
            })
            .ok_or_else(|| unknown_table(name))
    }

    fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.iter().map(|(n, _)| (*n).to_string()).collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_all_seven_tables() {
        let c = TpchSchemas::new();
        assert_eq!(c.table_names().len(), 7);
        let t = c.table("LINEITEM").unwrap();
        assert_eq!(t.name, "lineitem");
        assert_eq!(t.schema.len(), 11);
        assert!(c.table("parts").is_err());
    }

    #[test]
    fn lineitem_types_match_expr_surface() {
        let c = TpchSchemas::new();
        let t = c.table("lineitem").unwrap();
        assert_eq!(t.schema.field(10).data_type, Date32, "l_shipdate is a date");
        assert_eq!(t.schema.index_of("l_discount"), Some(6));
    }
}
