//! TPC-H data generation and evaluation query definitions.
//!
//! The paper's experiments (§7) run TPC-H-shaped analytical queries over
//! tables laid out across storage nodes per its Table 1. This crate
//! reproduces that setup in-process and without external dependencies:
//!
//! * [`gen`] — a deterministic, seeded generator for the seven-table TPC-H
//!   schema at a selectable scale factor. The same `(scale_factor, seed)`
//!   pair always produces byte-identical tables (pinned by per-table row
//!   counts and content checksums), so benchmark runs are reproducible
//!   across machines and sessions.
//! * [`queries`] — [`LogicalPlanBuilder`] definitions of the evaluation
//!   queries: the Q1-shaped scan→filter→aggregate, the Q3-shaped
//!   three-table join, the Q6-shaped selective filter→aggregate, and a
//!   Top-N over orders. These are the workloads the bench harness
//!   (`accordion-bench`) runs through the engine.
//!
//! [`LogicalPlanBuilder`]: accordion_plan::LogicalPlanBuilder

pub mod gen;
pub mod queries;
pub mod schemas;

pub use gen::{generate, TableSummary, TpchData, TpchOptions};
pub use queries::{all_queries, q1, q3, q6, top_orders};
pub use schemas::TpchSchemas;
